//! # towerlens
//!
//! Understanding mobile traffic patterns of large-scale cellular
//! towers in urban environments — a from-scratch Rust reproduction of
//! Wang, Xu, Li, Zhang & Jin, **IMC 2015** (arXiv:1510.04026).
//!
//! This facade crate re-exports the whole workspace so downstream
//! users depend on one crate:
//!
//! * [`core`] — the paper's model: pattern identification (clustering
//!   with Davies–Bouldin tuning), geographic labelling, time-domain
//!   characterisation, frequency-domain representation, and the
//!   convex-combination decomposition. Start with [`core::Study`].
//! * [`city`] — the synthetic urban environment (zones, POIs, towers)
//!   standing in for the paper's proprietary Shanghai ground truth.
//! * [`mobility`] — the human-activity traffic model (fast synthesis
//!   and an agent-based connection-log generator).
//! * [`trace`] — log schema, cleaning, geocoding, 10-minute binning.
//! * [`pipeline`] — the parallel traffic vectorizer (the paper's
//!   Hadoop element).
//! * [`dsp`] — mixed-radix FFT, spectra, normalisation, statistics.
//! * [`cluster`] — agglomerative clustering, validity indices,
//!   k-means baseline.
//! * [`opt`] — simplex-constrained least squares and TF-IDF.
//!
//! ## Quickstart
//!
//! ```
//! use towerlens::core::{Study, StudyConfig};
//!
//! let report = Study::new(StudyConfig::tiny(42)).run().expect("study");
//! println!("found {} traffic patterns", report.patterns.k);
//! for (c, kind) in report.geo.labels.iter().enumerate() {
//!     println!("cluster {c}: {kind}");
//! }
//! ```
//!
//! The runnable examples under `examples/` cover the full surface:
//! `quickstart`, `land_use_inference`, `traffic_decomposition`,
//! `log_pipeline`, and `load_forecast`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use towerlens_city as city;
pub use towerlens_cluster as cluster;
pub use towerlens_core as core;
pub use towerlens_dsp as dsp;
pub use towerlens_mobility as mobility;
pub use towerlens_opt as opt;
pub use towerlens_pipeline as pipeline;
pub use towerlens_trace as trace;
