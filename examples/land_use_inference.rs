//! Land-use inference: the paper's pitch to government managers —
//! "infer the land usage and human economy activities by looking at
//! the patterns of cellular traffic".
//!
//! ```text
//! cargo run --release --example land_use_inference
//! ```
//!
//! We run the pattern pipeline, assign each tower the urban function
//! of its traffic cluster, and score the inference against the city's
//! ground-truth zoning with a confusion matrix — i.e. "how well does
//! traffic alone recover a zoning map?".

use towerlens::city::zone::RegionKind;
use towerlens::core::{Study, StudyConfig};

fn main() {
    let report = match Study::new(StudyConfig::small(7)).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };

    // Confusion matrix: rows = ground truth, cols = inferred.
    let mut confusion = [[0usize; 5]; 5];
    for (i, &cluster) in report.patterns.clustering.labels.iter().enumerate() {
        let truth = report.city.towers()[report.kept_ids[i]].kind_truth;
        let inferred = report.geo.labels[cluster];
        confusion[truth.index()][inferred.index()] += 1;
    }

    println!("land-use inference from traffic patterns alone\n");
    print!("{:<15}", "truth \\ inferred");
    for kind in RegionKind::ALL {
        print!("{:>9}", &kind.label()[..kind.label().len().min(8)]);
    }
    println!("{:>9}", "recall");
    let mut correct = 0usize;
    let mut total = 0usize;
    for truth in RegionKind::ALL {
        let row = confusion[truth.index()];
        let row_total: usize = row.iter().sum();
        print!("{:<15}", truth.label());
        for v in row {
            print!("{v:>9}");
        }
        let recall = row[truth.index()] as f64 / row_total.max(1) as f64;
        println!("{:>8.1}%", recall * 100.0);
        correct += row[truth.index()];
        total += row_total;
    }
    println!(
        "\noverall accuracy: {:.1}% over {} towers",
        100.0 * correct as f64 / total.max(1) as f64,
        total
    );

    // Where do we go wrong? Towers in mixed areas, as §5.2 predicts:
    // compare the average "purity" of the ground-truth function mix
    // for correctly vs incorrectly labelled towers.
    let mut pure_ok = Vec::new();
    let mut pure_err = Vec::new();
    for (i, &cluster) in report.patterns.clustering.labels.iter().enumerate() {
        let tower_id = report.kept_ids[i];
        let truth = report.city.towers()[tower_id].kind_truth;
        let mix = report
            .city
            .tower_function_mix(tower_id)
            .unwrap_or([0.25; 4]);
        let purity = mix.iter().cloned().fold(0.0f64, f64::max);
        if report.geo.labels[cluster] == truth {
            pure_ok.push(purity);
        } else {
            pure_err.push(purity);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean neighbourhood purity: correctly labelled {:.2}, mislabelled {:.2} \
         (mixed areas are where traffic-only inference struggles — §5.2)",
        mean(&pure_ok),
        mean(&pure_err)
    );
}
