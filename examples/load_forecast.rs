//! Load forecasting: the ISP application the paper motivates — "mobile
//! users can choose towers with predicted lower traffic", ISPs can
//! customise per-tower strategies.
//!
//! ```text
//! cargo run --release --example load_forecast
//! ```
//!
//! The frequency-domain model says a tower's traffic is DC + three
//! spectral lines. That makes a forecaster: fit the sparse spectral
//! model on weeks 1–3, predict week 4, and compare against two
//! baselines (previous-week copy, and a flat mean). Errors are
//! normalised RMSE per tower.

use towerlens::core::{Study, StudyConfig};
use towerlens::dsp::spectrum::Spectrum;
use towerlens::trace::time::BINS_PER_DAY;

/// Sparse spectral forecast: DFT the training series, keep DC and the
/// per-week harmonics of the day/half-day/week lines, extrapolate one
/// period.
fn spectral_forecast(train: &[f64], horizon: usize) -> Vec<f64> {
    let weeks = train.len() / (7 * BINS_PER_DAY);
    let spectrum = Spectrum::of(train).expect("finite traffic");
    let keep = [0, weeks, 7 * weeks, 14 * weeks];
    let fitted = spectrum
        .reconstruct_from_bins(&keep)
        .expect("bins in range");
    // The reconstruction is periodic with the training length; the
    // forecast continues it (indices wrap).
    (0..horizon)
        .map(|i| fitted[i % fitted.len()].max(0.0))
        .collect()
}

fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    let n = pred.len().min(truth.len());
    (pred[..n]
        .iter()
        .zip(&truth[..n])
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n as f64)
        .sqrt()
}

fn main() {
    // 4 weeks of traffic: train on 3, test on week 4.
    let report = match Study::new(StudyConfig::small(5)).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    let week = 7 * BINS_PER_DAY;
    let train_len = report.window.n_bins - week;
    if train_len < week {
        eprintln!("window too short for a train/test split");
        std::process::exit(1);
    }

    let mut wins_spectral = 0usize;
    let mut total = 0usize;
    let mut sum_spectral = 0.0;
    let mut sum_lastweek = 0.0;
    let mut sum_flat = 0.0;
    for row in &report.raw {
        let (train, test) = row.split_at(train_len);
        let mean_level = train.iter().sum::<f64>() / train.len() as f64;
        if mean_level <= 0.0 {
            continue;
        }
        let spectral = spectral_forecast(train, week);
        let lastweek = &train[train_len - week..];
        let flat = vec![mean_level; week];

        // Normalise by the tower's mean so errors are comparable.
        let e_spec = rmse(&spectral, test) / mean_level;
        let e_last = rmse(lastweek, test) / mean_level;
        let e_flat = rmse(&flat, test) / mean_level;
        sum_spectral += e_spec;
        sum_lastweek += e_last;
        sum_flat += e_flat;
        if e_spec < e_last {
            wins_spectral += 1;
        }
        total += 1;
    }

    println!("week-4 forecast over {total} towers (normalised RMSE, lower is better):");
    println!(
        "  sparse spectral model (DC + week/day/half-day lines): {:.4}",
        sum_spectral / total as f64
    );
    println!(
        "  previous-week copy:                                   {:.4}",
        sum_lastweek / total as f64
    );
    println!(
        "  flat mean:                                            {:.4}",
        sum_flat / total as f64
    );
    println!(
        "  spectral model beats previous-week copy on {:.1}% of towers",
        100.0 * wins_spectral as f64 / total as f64
    );
    println!(
        "\nreading: on this strongly periodic synthetic workload the previous-week \
         copy is near-optimal, so the interesting comparison is state: the spectral \
         model gets within {:.1}× of it using 7 numbers per tower instead of {} \
         ({:.0}× less state), and beats the flat-mean strawman by {:.1}×.",
        (sum_spectral / total as f64) / (sum_lastweek / total as f64),
        week,
        week as f64 / 7.0,
        (sum_flat / total as f64) / (sum_spectral / total as f64)
    );
}
