//! Anomaly screening: detect special events from the spectral model.
//!
//! ```text
//! cargo run --release --example anomaly_screening
//! ```
//!
//! The paper's model says normal traffic is DC + three spectral lines.
//! Whatever doesn't fit that model is *news*: a concert, an outage, a
//! flash crowd. We synthesise a city, inject two events (a stadium
//! night at an entertainment tower and an outage at an office tower),
//! and let `core::predict::screen_towers` find them — trained on weeks
//! 1–2, screening week 3.

use towerlens::city::zone::RegionKind;
use towerlens::city::{config::CityConfig, generate::generate};
use towerlens::core::predict::screen_towers;
use towerlens::mobility::config::SynthConfig;
use towerlens::mobility::synth::synthesize_city;
use towerlens::trace::time::{TraceWindow, BINS_PER_DAY};

fn main() {
    let city = generate(&CityConfig::small(13)).expect("city generation");
    let window = TraceWindow::days(21);
    let mut raw = synthesize_city(&city, &window, &SynthConfig::default());

    // Event 1: a stadium night — 6× traffic at an entertainment tower,
    // 19:00–23:00 on week-3 Wednesday (day 16).
    let concert_tower = city.towers_of_kind(RegionKind::Entertainment)[0];
    let concert_day = 16;
    for bin in 0..BINS_PER_DAY {
        let (h, _) = window.time_of_day(concert_day * BINS_PER_DAY + bin);
        if (19..23).contains(&h) {
            raw[concert_tower][concert_day * BINS_PER_DAY + bin] *= 6.0;
        }
    }
    // Event 2: an outage — an office tower drops to 2% for week-3
    // Friday working hours (day 18).
    let outage_tower = city.towers_of_kind(RegionKind::Office)[3];
    let outage_day = 18;
    for bin in 0..BINS_PER_DAY {
        let (h, _) = window.time_of_day(outage_day * BINS_PER_DAY + bin);
        if (9..17).contains(&h) {
            raw[outage_tower][outage_day * BINS_PER_DAY + bin] *= 0.02;
        }
    }

    println!(
        "injected: concert at tower {concert_tower} (day {concert_day}), \
         outage at tower {outage_tower} (day {outage_day})\n"
    );

    // Screen: fit the spectral model per tower on days 0–13, score
    // days 14–20.
    let flagged = match screen_towers(&raw, &window, 14, 3.0) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("screening failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "screened {} towers, flagged {} above 3× their own noise level:",
        raw.len(),
        flagged.len()
    );
    for a in flagged.iter().take(10) {
        let kind = city.towers()[a.tower].kind_truth;
        let injected = if a.tower == concert_tower {
            " <- injected concert"
        } else if a.tower == outage_tower {
            " <- injected outage"
        } else {
            ""
        };
        println!(
            "  tower {:5} ({:<13}) eval day {} score {:6.1}{}",
            a.tower,
            kind.label(),
            a.day,
            a.score,
            injected
        );
    }

    let found_concert = flagged.iter().any(|a| a.tower == concert_tower);
    let found_outage = flagged.iter().any(|a| a.tower == outage_tower);
    println!(
        "\nconcert detected: {found_concert}; outage detected: {found_outage}; \
         false positives: {}",
        flagged
            .iter()
            .filter(|a| a.tower != concert_tower && a.tower != outage_tower)
            .count()
    );
}
