//! The full ingest path, log by log: the §2.2/§3.2 system end-to-end.
//!
//! ```text
//! cargo run --release --example log_pipeline
//! ```
//!
//! Instead of the fast per-tower synthesis, this example drives an
//! *agent population* that emits individual connection records
//! (including injected duplicate and conflicting logs), then runs the
//! real preprocessing: serialise → parse → clean → geocode →
//! parallel vectorize → cluster, printing the audit trail of every
//! stage — the part of the paper that is usually invisible behind
//! "we preprocessed the data".

use towerlens::city::{config::CityConfig, generate::generate};
use towerlens::core::identifier::{IdentifierConfig, PatternIdentifier};
use towerlens::mobility::agents::{AgentConfig, AgentPopulation};
use towerlens::pipeline::vectorizer::Vectorizer;
use towerlens::trace::clean::clean_records;
use towerlens::trace::geocode::Geocoder;
use towerlens::trace::record::{parse_lines, to_lines};
use towerlens::trace::time::TraceWindow;

fn main() {
    // 1. Ground truth and subscribers.
    let city = generate(&CityConfig::tiny(3)).expect("city generation");
    let population = AgentPopulation::generate(
        &city,
        AgentConfig {
            n_agents: 1_600,
            sessions_per_hour: 2.4,
            duplicate_rate: 0.02,
            conflict_rate: 0.01,
            ..AgentConfig::default()
        },
    );
    let window = TraceWindow::days(14);
    println!(
        "city: {} towers, {} zones, {} POIs; population: {} subscribers",
        city.towers().len(),
        city.zones().len(),
        city.pois().len(),
        population.len()
    );

    // 2. Raw logs — serialised and re-parsed, as an operator dump
    //    would be.
    let records = population.emit_logs(&city, &window);
    let dump = to_lines(&records);
    println!(
        "emitted {} connection records ({:.1} MB serialised)",
        records.len(),
        dump.len() as f64 / 1e6
    );
    let (parsed, parse_errors) = parse_lines(&dump);
    println!(
        "parsed back {} records ({} malformed lines)",
        parsed.len(),
        parse_errors.len()
    );

    // 3. Cleaning (redundant/conflict elimination).
    let (clean, report) = clean_records(&parsed);
    println!(
        "cleaning: {} in → {} kept ({} duplicates removed, {} conflicts resolved)",
        report.total, report.kept, report.duplicates_removed, report.conflicts_resolved
    );

    // 4. Geocoding the base-station addresses.
    let mut geocoder = Geocoder::new();
    let mut resolved = 0usize;
    for tower in city.towers() {
        if geocoder.resolve(&tower.address).is_some() {
            resolved += 1;
        }
    }
    let geo_report = geocoder.report();
    println!(
        "geocoding: {}/{} towers resolved ({} lookups, {} cache hits)",
        resolved,
        city.towers().len(),
        geo_report.lookups,
        geo_report.cache_hits
    );

    // 5. Parallel vectorization (aggregation + z-score).
    let vectorizer = Vectorizer::new(window, 0);
    let output = match vectorizer.run(&clean, city.towers().len()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("vectorizer failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "vectorizer: {} active towers, {} dead towers dropped, {} vectors of {} bins",
        output.report.active_towers,
        output.report.dead_towers,
        output.normalized.len(),
        window.n_bins
    );

    // 6. Pattern identification on the log-derived vectors.
    let identifier = PatternIdentifier::new(IdentifierConfig::default());
    match identifier.identify(&output.normalized.vectors) {
        Ok(found) => {
            println!(
                "patterns from logs: k = {} (threshold {:.2}), shares {:?}",
                found.k,
                found.threshold,
                found
                    .clustering
                    .shares()
                    .iter()
                    .map(|s| format!("{:.0}%", s * 100.0))
                    .collect::<Vec<_>>()
            );
        }
        Err(e) => eprintln!("identification failed: {e}"),
    }
}
