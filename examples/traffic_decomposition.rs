//! Traffic decomposition: §5.3 as an application.
//!
//! ```text
//! cargo run --release --example traffic_decomposition
//! ```
//!
//! Pick towers in comprehensive areas, decompose their frequency
//! features into a convex combination of the four primary components,
//! and read off "how much of this tower's traffic is residential vs
//! office vs transport vs entertainment" — the per-tower land-use
//! mixture the paper validates against POI data.

use towerlens::city::zone::RegionKind;
use towerlens::core::decompose::time_domain_combination;
use towerlens::core::timedomain::profile_correlation;
use towerlens::core::{Study, StudyConfig};

fn main() {
    let report = match Study::new(StudyConfig::small(21)).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    let Some(reps) = report.representatives else {
        eprintln!("not all four pure patterns were found; try another seed");
        std::process::exit(1);
    };

    println!("four primary components (vector idx → tower id):");
    for (i, kind) in RegionKind::PURE.iter().enumerate() {
        println!(
            "  {:<13} tower {:5}  features (A_day, P_day, A_half) = {:?}",
            kind.label(),
            report.kept_ids[reps[i]],
            report.features[reps[i]]
                .f3()
                .map(|v| (v * 1000.0).round() / 1000.0)
        );
    }

    println!("\ndecomposed comprehensive towers (coefficients sum to 1):");
    println!(
        "{:>8}  {:>9} {:>9} {:>9} {:>9}  {:>9}  {:>6}",
        "tower", "resident", "transport", "office", "entertain", "residual", "corr"
    );
    for row in report.decompositions.iter().skip(4).take(10) {
        // Fig 19 check: rebuild the tower's (z-scored) traffic from the
        // four representative vectors and correlate with reality.
        let rep_vectors = [
            report.vectors[reps[0]].as_slice(),
            report.vectors[reps[1]].as_slice(),
            report.vectors[reps[2]].as_slice(),
            report.vectors[reps[3]].as_slice(),
        ];
        let combo = time_domain_combination(&row.coefficients, &rep_vectors);
        let corr =
            profile_correlation(&combo, &report.vectors[row.vector_index]).unwrap_or(f64::NAN);
        println!(
            "{:>8}  {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {:>9.4}  {:>6.3}",
            report.kept_ids[row.vector_index],
            row.coefficients[0],
            row.coefficients[1],
            row.coefficients[2],
            row.coefficients[3],
            row.residual_sqr.sqrt(),
            corr
        );
    }

    // Aggregate validation: coefficients vs the city's ground-truth
    // function mixture at each tower.
    let mut corr_sum = 0.0;
    let mut n = 0usize;
    for row in report.decompositions.iter().skip(4) {
        let truth = report
            .city
            .tower_function_mix(report.kept_ids[row.vector_index])
            .unwrap_or([0.25; 4]);
        if let Some(r) = profile_correlation(&row.coefficients, &truth) {
            corr_sum += r;
            n += 1;
        }
    }
    println!(
        "\nmean corr(convex coefficients, ground-truth function mix) over {} towers: {:.3}",
        n,
        corr_sum / n.max(1) as f64
    );
}
