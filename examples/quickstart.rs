//! Quickstart: run the whole paper once, at small scale.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic city, synthesises four weeks of tower
//! traffic, identifies the traffic patterns, labels them with urban
//! functional regions, and prints the headline numbers the paper
//! reports.

use towerlens::core::{Study, StudyConfig};

fn main() {
    let config = StudyConfig::small(5);
    println!(
        "generating a {}-tower city and {} days of traffic…",
        config.city.n_towers,
        config.window.n_bins / 144
    );
    let started = std::time::Instant::now();
    let report = match Study::new(config).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    println!("done in {:.1}s\n", started.elapsed().as_secs_f64());

    println!(
        "identified {} traffic patterns (stop threshold {:.2}):",
        report.patterns.k, report.patterns.threshold
    );
    let shares = report.patterns.clustering.shares();
    for (c, kind) in report.geo.labels.iter().enumerate() {
        println!(
            "  cluster {c}: {kind:<13}  {:5.2}% of towers, weekday/weekend ratio {:.2}",
            shares[c] * 100.0,
            report.time_stats[c].weekday_weekend_ratio
        );
    }
    println!(
        "\nlabel agreement with ground truth: {:.1}%",
        report.geo.ground_truth_agreement * 100.0
    );

    // The frequency-domain headline: the aggregate traffic is three
    // spectral lines plus DC.
    let total = report.total_series();
    match towerlens::core::freq::reconstruct_principal(&total, &report.window) {
        Ok(summary) => println!(
            "aggregate traffic reconstructed from bins {:?}: {:.2}% energy lost (paper: <6%)",
            summary.bins,
            summary.lost_energy * 100.0
        ),
        Err(e) => eprintln!("reconstruction failed: {e}"),
    }

    if let Some(reps) = report.representatives {
        println!(
            "four primary components (representative towers): {:?}",
            reps.map(|r| report.kept_ids[r])
        );
    }
}
