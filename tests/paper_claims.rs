//! The paper's headline claims, asserted as integration tests at
//! small scale (600 towers, 2 weeks). These are the "shape" criteria
//! DESIGN.md commits to: orderings and factors, not absolute numbers.

use std::sync::OnceLock;

use towerlens::city::zone::RegionKind;
use towerlens::core::freq::{principal_bins, reconstruct_principal};
use towerlens::core::timedomain::{double_peaks, lag_hours};
use towerlens::core::{Study, StudyConfig, StudyReport};

/// One shared small-scale study (seed chosen so the DBI tuner lands on
/// five clusters, as it does for most seeds).
fn report() -> &'static StudyReport {
    static REPORT: OnceLock<StudyReport> = OnceLock::new();
    REPORT.get_or_init(|| Study::new(StudyConfig::small(5)).run().expect("study"))
}

fn cluster(kind: RegionKind) -> usize {
    report()
        .cluster_of(kind)
        .unwrap_or_else(|| panic!("no {kind:?} cluster"))
}

#[test]
fn five_patterns_with_all_five_labels() {
    let r = report();
    assert_eq!(r.patterns.k, 5, "dbi curve: {:?}", r.patterns.dbi_curve);
    for kind in RegionKind::ALL {
        assert!(
            r.geo.labels.contains(&kind),
            "missing {kind:?} in {:?}",
            r.geo.labels
        );
    }
}

#[test]
fn cluster_shares_order_matches_table1() {
    // Paper Table 1 ordering: office > comprehensive > resident >
    // entertainment > transport.
    let shares = report().patterns.clustering.shares();
    let s = |k: RegionKind| shares[cluster(k)];
    assert!(s(RegionKind::Office) > s(RegionKind::Comprehensive));
    assert!(s(RegionKind::Comprehensive) > s(RegionKind::Resident));
    assert!(s(RegionKind::Resident) > s(RegionKind::Entertainment));
    assert!(s(RegionKind::Entertainment) > s(RegionKind::Transport));
}

#[test]
fn weekday_weekend_ratios_match_fig10() {
    let r = report();
    let ratio = |k: RegionKind| r.time_stats[cluster(k)].weekday_weekend_ratio;
    // Office & transport clearly above 1; the rest near 1.
    assert!(
        ratio(RegionKind::Office) > 1.4,
        "{}",
        ratio(RegionKind::Office)
    );
    assert!(
        ratio(RegionKind::Transport) > 1.2,
        "{}",
        ratio(RegionKind::Transport)
    );
    for kind in [
        RegionKind::Resident,
        RegionKind::Entertainment,
        RegionKind::Comprehensive,
    ] {
        let v = ratio(kind);
        assert!((0.8..=1.2).contains(&v), "{kind:?}: {v}");
    }
    // And office > transport, as in the paper (1.79 vs 1.49).
    assert!(ratio(RegionKind::Office) > ratio(RegionKind::Transport));
}

#[test]
fn transport_has_extreme_peak_valley_ratio() {
    let r = report();
    let pv = |k: RegionKind| r.time_stats[cluster(k)].weekday.peak_valley_ratio;
    let transport = pv(RegionKind::Transport);
    for kind in [
        RegionKind::Resident,
        RegionKind::Office,
        RegionKind::Entertainment,
        RegionKind::Comprehensive,
    ] {
        assert!(
            transport > 2.0 * pv(kind),
            "transport {} vs {kind:?} {}",
            transport,
            pv(kind)
        );
    }
    // Resident and comprehensive are the flattest (paper: ≈9-10).
    assert!(pv(RegionKind::Resident) < pv(RegionKind::Office));
    assert!(pv(RegionKind::Comprehensive) < pv(RegionKind::Office));
}

#[test]
fn peak_and_valley_times_match_table5() {
    let r = report();
    let stats = |k: RegionKind| &r.time_stats[cluster(k)];
    // Valleys in the small hours everywhere.
    for kind in RegionKind::ALL {
        let (h, _) = stats(kind).weekday.valley_time;
        assert!((2..=6).contains(&h), "{kind:?} valley {h}");
    }
    // Resident evening peak.
    let (h, m) = stats(RegionKind::Resident).weekday.peak_time;
    let hours = h as f64 + m as f64 / 60.0;
    assert!((20.5..=22.5).contains(&hours), "resident peak {hours}");
    // Office late-morning weekday, midday weekend.
    let (h, _) = stats(RegionKind::Office).weekday.peak_time;
    assert!((9..=12).contains(&h), "office wd peak {h}");
    let (h, _) = stats(RegionKind::Office).weekend.peak_time;
    assert!((11..=13).contains(&h), "office we peak {h}");
    // Entertainment: evening weekday, midday weekend.
    let (h, _) = stats(RegionKind::Entertainment).weekday.peak_time;
    assert!((17..=20).contains(&h), "entertainment wd peak {h}");
    let (h, _) = stats(RegionKind::Entertainment).weekend.peak_time;
    assert!((11..=14).contains(&h), "entertainment we peak {h}");
}

#[test]
fn commute_choreography_matches_fig11() {
    let r = report();
    let transport_wd = &r.time_stats[cluster(RegionKind::Transport)].weekday_profile;
    let (morning, evening) = double_peaks(transport_wd, &r.window).expect("double peaks");
    // Morning rush 7–9, evening rush 17–19.
    assert!((7..=9).contains(&morning.0), "morning {morning:?}");
    assert!((17..=19).contains(&evening.0), "evening {evening:?}");
    // Resident peak a few hours after the evening rush.
    let res_peak = r.time_stats[cluster(RegionKind::Resident)]
        .weekday
        .peak_time;
    let lag = lag_hours(evening, res_peak);
    assert!((1.0..=6.0).contains(&lag), "lag {lag}");
    // Office peak between the rushes.
    let off_peak = r.time_stats[cluster(RegionKind::Office)].weekday.peak_time;
    assert!(lag_hours(morning, off_peak) > 0.0);
    assert!(lag_hours(off_peak, evening) > 0.0);
}

#[test]
fn aggregate_spectrum_is_three_lines_plus_dc() {
    let r = report();
    let total = r.total_series();
    let summary = reconstruct_principal(&total, &r.window).expect("reconstruction");
    let bins = principal_bins(&r.window).expect("bins");
    assert_eq!(summary.dominant, bins.to_vec(), "dominant bins");
    assert!(
        summary.lost_energy < 0.06,
        "lost {:.3}% ≥ paper's 6%",
        summary.lost_energy * 100.0
    );
}

#[test]
fn office_strongest_weekly_transport_strongest_halfday() {
    // Fig 16(a)/(c) cluster-mean orderings.
    let r = report();
    let amp = |k: RegionKind, comp: usize| r.feature_stats[cluster(k)][comp].amp_mean;
    // Weekly: office above resident and comprehensive.
    assert!(amp(RegionKind::Office, 0) > amp(RegionKind::Resident, 0));
    assert!(amp(RegionKind::Office, 0) > amp(RegionKind::Comprehensive, 0));
    // Half-day: transport above everyone.
    for kind in [
        RegionKind::Resident,
        RegionKind::Office,
        RegionKind::Entertainment,
        RegionKind::Comprehensive,
    ] {
        assert!(
            amp(RegionKind::Transport, 2) > amp(kind, 2),
            "transport {} vs {kind:?} {}",
            amp(RegionKind::Transport, 2),
            amp(kind, 2)
        );
    }
}

#[test]
fn daily_phase_transition_res_transport_office() {
    // Fig 16(b): daily phases increase along resident → transport →
    // office (the commute flow).
    let r = report();
    let phase = |k: RegionKind| {
        r.feature_stats[cluster(k)][1]
            .phase_mean
            .expect("phase mean")
    };
    let wrap = towerlens::dsp::circular::wrap_angle;
    assert!(
        wrap(phase(RegionKind::Transport) - phase(RegionKind::Resident)) > 0.0,
        "transport not after resident"
    );
    assert!(
        wrap(phase(RegionKind::Office) - phase(RegionKind::Transport)) > 0.0,
        "office not after transport"
    );
}

#[test]
fn poi_validation_diagonal_dominates() {
    // Table 3: each pure cluster's averaged normalised POI profile is
    // maximal at its own type.
    let r = report();
    for kind in RegionKind::PURE {
        let c = cluster(kind);
        let profile = r.geo.poi_profiles[c];
        let own = kind.native_poi().expect("pure").index();
        let max = profile.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(profile[own], max, "{kind:?}: {profile:?}");
    }
}

#[test]
fn decomposition_validates_against_ntf_idf() {
    let r = report();
    assert!(r.decompositions.len() > 4, "no comprehensive rows");
    let consistency = towerlens::core::decompose::min_rank_consistency(&r.decompositions[4..]);
    assert!(consistency > 0.6, "consistency {consistency}");
}
