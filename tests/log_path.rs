//! Integration of the log path: agents → records → serialisation →
//! cleaning → geocoding → parallel vectorizer, cross-checked against
//! the single-threaded reference aggregation.

use towerlens::city::{config::CityConfig, generate::generate};
use towerlens::mobility::agents::{AgentConfig, AgentPopulation};
use towerlens::pipeline::vectorizer::Vectorizer;
use towerlens::trace::binning::aggregate;
use towerlens::trace::clean::clean_records;
use towerlens::trace::geocode::Geocoder;
use towerlens::trace::record::{parse_lines, to_lines};
use towerlens::trace::time::TraceWindow;

fn setup() -> (
    towerlens::city::City,
    Vec<towerlens::trace::LogRecord>,
    TraceWindow,
) {
    let city = generate(&CityConfig::tiny(11)).expect("city");
    let population = AgentPopulation::generate(
        &city,
        AgentConfig {
            n_agents: 150,
            duplicate_rate: 0.05,
            conflict_rate: 0.02,
            ..AgentConfig::default()
        },
    );
    let window = TraceWindow::days(3);
    let records = population.emit_logs(&city, &window);
    (city, records, window)
}

#[test]
fn serialisation_roundtrip_preserves_all_records() {
    let (_, records, _) = setup();
    let dump = to_lines(&records);
    let (parsed, errors) = parse_lines(&dump);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(parsed, records);
}

#[test]
fn cleaning_is_idempotent() {
    let (_, records, _) = setup();
    let (once, first) = clean_records(&records);
    assert!(first.duplicates_removed > 0, "{first:?}");
    assert!(first.conflicts_resolved > 0, "{first:?}");
    let (twice, second) = clean_records(&once);
    assert_eq!(once, twice);
    assert_eq!(second.duplicates_removed, 0);
    assert_eq!(second.conflicts_resolved, 0);
}

#[test]
fn parallel_vectorizer_matches_reference_on_agent_logs() {
    let (city, records, window) = setup();
    let (clean, _) = clean_records(&records);
    let n = city.towers().len();
    let reference = aggregate(&clean, n, &window).expect("reference");
    for threads in [1, 3, 8] {
        let out = Vectorizer::new(window, threads)
            .aggregate(&clean, n)
            .expect("parallel");
        assert_eq!(out.len(), reference.len());
        for (tower, (a, b)) in out.iter().zip(&reference).enumerate() {
            for (bin, (x, y)) in a.iter().zip(b).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "threads={threads} tower={tower} bin={bin}"
                );
            }
        }
    }
}

#[test]
fn cleaning_never_loses_bytes_beyond_removed_records() {
    let (_, records, _) = setup();
    let (clean, report) = clean_records(&records);
    // Conflicts keep the max-bytes copy, so total kept bytes can only
    // shrink by exactly the dropped records' bytes or less.
    let before: u64 = records.iter().map(|r| r.bytes).sum();
    let after: u64 = clean.iter().map(|r| r.bytes).sum();
    assert!(after <= before);
    assert_eq!(clean.len(), report.kept);
}

#[test]
fn all_tower_addresses_geocode_within_a_block() {
    let (city, _, _) = setup();
    let mut geocoder = Geocoder::new();
    for tower in city.towers() {
        let p = geocoder
            .resolve(&tower.address)
            .unwrap_or_else(|| panic!("unresolvable address {:?}", tower.address));
        assert!(
            tower.position.distance_m(&p) < 160.0,
            "geocoding error too large for {:?}",
            tower.address
        );
    }
    assert_eq!(geocoder.report().unresolved, 0);
}

#[test]
fn vectorized_log_traffic_lands_in_working_hours() {
    // Sanity on the agent model through the whole pipeline: office
    // towers accumulate traffic mostly inside 08:00–18:00.
    let (city, records, window) = setup();
    let (clean, _) = clean_records(&records);
    let out = Vectorizer::new(window, 0)
        .run(&clean, city.towers().len())
        .expect("vectorizer");
    let office_ids = city.towers_of_kind(towerlens::city::zone::RegionKind::Office);
    let mut inside = 0.0;
    let mut total = 0.0;
    for &id in &office_ids {
        for (bin, &v) in out.raw[id].iter().enumerate() {
            let (h, _) = window.time_of_day(bin);
            if !window.is_weekend_bin(bin) && (8..18).contains(&h) {
                inside += v;
            }
            total += v;
        }
    }
    assert!(
        inside / total.max(1.0) > 0.7,
        "only {:.1}% of office traffic in working hours",
        100.0 * inside / total.max(1.0)
    );
}
