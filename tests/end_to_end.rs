//! End-to-end integration: the full study pipeline across all crates.

use towerlens::city::zone::RegionKind;
use towerlens::core::{Study, StudyConfig, StudyReport};

fn tiny_report(seed: u64) -> StudyReport {
    Study::new(StudyConfig::tiny(seed)).run().expect("study")
}

#[test]
fn tiny_study_produces_consistent_artifacts() {
    let report = tiny_report(7);
    // Every analysed vector maps to a tower and a cluster.
    assert_eq!(report.kept_ids.len(), report.vectors.len());
    assert_eq!(
        report.patterns.clustering.labels.len(),
        report.vectors.len()
    );
    assert_eq!(report.geo.labels.len(), report.patterns.k);
    assert_eq!(report.time_stats.len(), report.patterns.k);
    assert_eq!(report.feature_stats.len(), report.patterns.k);
    assert_eq!(report.features.len(), report.vectors.len());
    // Cluster series sum to the kept towers' raw totals.
    let series_total: f64 = report
        .cluster_series
        .iter()
        .map(|s| s.iter().sum::<f64>())
        .sum();
    let raw_total: f64 = report
        .kept_ids
        .iter()
        .map(|&id| report.raw[id].iter().sum::<f64>())
        .sum();
    assert!((series_total - raw_total).abs() < 1e-6 * raw_total);
}

#[test]
fn study_finds_plausible_pattern_count_and_labels() {
    let report = tiny_report(7);
    assert!(
        (3..=8).contains(&report.patterns.k),
        "k = {}",
        report.patterns.k
    );
    // Office and resident are the two dominant urban functions; any
    // sane run labels a cluster with each.
    assert!(report.geo.labels.contains(&RegionKind::Office));
    assert!(report.geo.labels.contains(&RegionKind::Resident));
    // Ground-truth agreement must beat a majority-class guesser.
    assert!(
        report.geo.ground_truth_agreement > 0.6,
        "agreement {}",
        report.geo.ground_truth_agreement
    );
}

#[test]
fn studies_are_reproducible_and_seed_sensitive() {
    let a = tiny_report(3);
    let b = tiny_report(3);
    assert_eq!(a.patterns.clustering.labels, b.patterns.clustering.labels);
    assert_eq!(a.geo.labels, b.geo.labels);
    assert_eq!(a.kept_ids, b.kept_ids);
    let c = tiny_report(4);
    // A different seed gives a different city, hence different raw
    // traffic (labels may coincide).
    assert_ne!(
        a.raw[0], c.raw[0],
        "different seeds must give different traffic"
    );
}

#[test]
fn representative_towers_come_from_their_clusters() {
    let report = tiny_report(7);
    let Some(reps) = report.representatives else {
        // Not all pure patterns found at this scale/seed; nothing to
        // verify.
        return;
    };
    for (i, kind) in RegionKind::PURE.iter().enumerate() {
        let cluster = report.patterns.clustering.labels[reps[i]];
        assert_eq!(
            report.geo.labels[cluster], *kind,
            "representative {i} not in the {kind:?} cluster"
        );
    }
    // The F1..F4 decompositions (first four rows) put ≥ 0.95 weight on
    // themselves by construction.
    for (i, row) in report.decompositions.iter().take(4).enumerate() {
        assert!(
            row.coefficients[i] > 0.95,
            "F{} self-coefficient {:?}",
            i + 1,
            row.coefficients
        );
        assert!(row.residual_sqr < 1e-9);
    }
}

#[test]
fn decomposition_coefficients_are_convex() {
    let report = tiny_report(7);
    for row in &report.decompositions {
        let sum: f64 = row.coefficients.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{:?}", row.coefficients);
        assert!(row.coefficients.iter().all(|&c| c >= -1e-9));
    }
}

#[test]
fn total_series_is_sum_of_rows() {
    let report = tiny_report(3);
    let total = report.total_series();
    let bin0: f64 = report.raw.iter().map(|r| r[0]).sum();
    assert!((total[0] - bin0).abs() < 1e-9 * bin0.max(1.0));
}
