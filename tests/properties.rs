//! Cross-crate property-based tests (proptest): randomised checks of
//! the invariants the analyses rely on.

use proptest::prelude::*;

use towerlens::cluster::agglomerative::{agglomerative_points, Engine, Linkage};
use towerlens::dsp::fft::{fft, fft_real, ifft};
use towerlens::dsp::normalize::{by_max, minmax, zscore};
use towerlens::dsp::spectrum::Spectrum;
use towerlens::opt::simplex::{project_to_simplex, simplex_least_squares, SimplexLsOptions};
use towerlens::trace::record::LogRecord;
use towerlens::trace::time::TraceWindow;

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_roundtrip(signal in finite_signal(200)) {
        let spec = fft_real(&signal);
        let back = ifft(&spec);
        let scale = signal.iter().fold(1.0f64, |a, v| a.max(v.abs()));
        for (a, b) in back.iter().zip(&signal) {
            prop_assert!((a.re - b).abs() < 1e-8 * scale + 1e-9);
            prop_assert!(a.im.abs() < 1e-8 * scale + 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conserved(signal in finite_signal(150)) {
        let spec = fft_real(&signal);
        let time: f64 = signal.iter().map(|x| x * x).sum();
        let freq: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / signal.len() as f64;
        prop_assert!((time - freq).abs() <= 1e-8 * time.max(1.0));
    }

    #[test]
    fn real_spectrum_conjugate_symmetry(signal in finite_signal(100)) {
        let spec = fft_real(&signal);
        let n = spec.len();
        let scale = signal.iter().fold(1.0f64, |a, v| a.max(v.abs())) * n as f64;
        for k in 1..n {
            let d = spec[k] - spec[n - k].conj();
            prop_assert!(d.abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn fft_linearity(a in finite_signal(64), scale in -100.0f64..100.0) {
        let scaled: Vec<f64> = a.iter().map(|v| v * scale).collect();
        let fa = fft_real(&a);
        let fs = fft_real(&scaled);
        let bound = a.iter().fold(1.0f64, |m, v| m.max(v.abs())) * scale.abs().max(1.0)
            * a.len() as f64;
        for (x, y) in fa.iter().zip(&fs) {
            let d = x.scale(scale) - *y;
            prop_assert!(d.abs() < 1e-9 * bound + 1e-9);
        }
    }

    #[test]
    fn reconstruction_never_gains_energy(signal in finite_signal(96)) {
        let spec = match Spectrum::of(&signal) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let keep: Vec<usize> = (0..signal.len().min(4)).collect();
        let lost = spec.lost_energy_fraction(&keep).unwrap();
        prop_assert!(lost >= -1e-9, "reconstruction gained energy: {lost}");
        prop_assert!(lost <= 1.0 + 1e-9);
    }

    #[test]
    fn zscore_properties(signal in finite_signal(128)) {
        match zscore(&signal) {
            Ok(z) => {
                let n = z.len() as f64;
                let mean = z.iter().sum::<f64>() / n;
                let var = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                prop_assert!(mean.abs() < 1e-8);
                prop_assert!((var - 1.0).abs() < 1e-6);
            }
            Err(_) => {
                // Only legal failure on finite input: zero variance.
                let first = signal[0];
                prop_assert!(signal.iter().all(|&v| v == first));
            }
        }
    }

    #[test]
    fn minmax_bounds(signal in finite_signal(128)) {
        let m = minmax(&signal).unwrap();
        prop_assert!(m.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn by_max_peak_is_one(signal in prop::collection::vec(0.0f64..1e6, 1..128)) {
        let m = by_max(&signal).unwrap();
        let top = m.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(top == 0.0 || (top - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simplex_projection_feasible(v in prop::collection::vec(-1e3f64..1e3, 1..24)) {
        let p = project_to_simplex(&v).unwrap();
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn simplex_projection_is_idempotent(v in prop::collection::vec(-10.0f64..10.0, 1..16)) {
        let p1 = project_to_simplex(&v).unwrap();
        let p2 = project_to_simplex(&p1).unwrap();
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn simplex_ls_solution_is_feasible_and_no_worse_than_vertices(
        target in prop::collection::vec(-5.0f64..5.0, 3),
        seed in 0u64..1000,
    ) {
        // A fixed, well-spread vertex set plus a random target.
        let verts = vec![
            vec![0.0, 0.0, 0.0],
            vec![2.0 + (seed % 7) as f64 * 0.1, 0.0, 0.3],
            vec![0.0, 2.0, 0.1],
            vec![0.4, 0.3, 2.0],
        ];
        let sol = simplex_least_squares(&verts, &target, SimplexLsOptions::default()).unwrap();
        let sum: f64 = sol.coefficients.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(sol.coefficients.iter().all(|&c| c >= -1e-9));
        // Optimality sanity: no single vertex is closer than the
        // projection.
        for v in &verts {
            let d: f64 = v.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum();
            prop_assert!(sol.residual_sqr <= d + 1e-6);
        }
    }

    #[test]
    fn dendrogram_cut_counts_are_monotone(
        points in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2),
            2..40
        )
    ) {
        let d = agglomerative_points(&points, Linkage::Average, Engine::NnChain, 1).unwrap();
        // Higher thresholds never increase the cluster count.
        let mut prev = usize::MAX;
        for t in [0.0, 1.0, 10.0, 50.0, 1e3, 1e9] {
            let k = d.cut_at(t).k;
            prop_assert!(k <= prev);
            prev = k;
        }
        // cut_k is exact for every feasible k.
        for k in 1..=points.len() {
            prop_assert_eq!(d.cut_k(k).unwrap().k, k);
        }
    }

    #[test]
    fn engines_agree_on_random_point_sets(
        points in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 3),
            3..24
        )
    ) {
        let a = agglomerative_points(&points, Linkage::Average, Engine::Naive, 1).unwrap();
        let b = agglomerative_points(&points, Linkage::Average, Engine::NnChain, 1).unwrap();
        for (x, y) in a.merges().iter().zip(b.merges()) {
            prop_assert!((x.distance - y.distance).abs() < 1e-6,
                "heights diverge: {} vs {}", x.distance, y.distance);
        }
    }

    #[test]
    fn log_record_line_roundtrip(
        user_id in 0u64..1e15 as u64,
        start in 0u64..3_000_000,
        len in 0u64..100_000,
        cell in 0u32..100_000,
        bytes in 0u64..1e12 as u64,
        addr in "[A-Za-z0-9 .-]{0,40}",
    ) {
        let r = LogRecord {
            user_id,
            start_s: start,
            end_s: start + len,
            cell_id: cell,
            address: addr,
            bytes,
        };
        let parsed = LogRecord::parse_line(&r.to_line(), 1).unwrap();
        prop_assert_eq!(parsed, r);
    }

    #[test]
    fn overlap_fractions_partition_in_window_intervals(
        start_off in 0u64..86_400,
        len in 1u64..30_000,
    ) {
        let w = TraceWindow::days(3);
        let start = w.start_s + start_off;
        let end = (start + len).min(w.end_s());
        let mut total = 0.0;
        w.for_each_overlap(start, end, |_, frac| total += frac);
        // Interval fully inside the window ⇒ fractions sum to 1.
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }
}

#[test]
fn fft_handles_awkward_lengths() {
    // Deterministic sweep over prime/semiprime lengths the generator
    // above rarely hits.
    for n in [97usize, 101, 121, 127, 169] {
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        let spec = fft_real(&signal);
        let back = ifft(&spec);
        for (a, b) in back.iter().zip(&signal) {
            assert!((a.re - b).abs() < 1e-7, "n={n}");
        }
    }
    let empty: Vec<towerlens::dsp::Complex> = Vec::new();
    assert!(fft(&empty).is_empty());
}
