//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this shim keeps
//! the workspace's benchmark suite compiling and *runnable* with the
//! API subset it uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and
//! [`Bencher::iter`].
//!
//! Measurement is deliberately simple — warm up, then time a fixed
//! iteration budget and print the mean — with none of upstream's
//! statistics. Numbers are comparable within a run, not across
//! machines or against real criterion output.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean: Duration,
}

impl Bencher {
    /// Runs `body` repeatedly and records the mean wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up iteration.
        black_box(body());
        let started = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.mean = started.elapsed() / self.iters as u32;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; the shim ignores
    /// it (the iteration budget is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Upstream tunes the measurement window; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op beyond matching upstream's API).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    iters: Option<u64>,
}

impl Criterion {
    /// Iterations per benchmark (default 10; override with
    /// `TOWERLENS_BENCH_ITERS`).
    fn iters(&self) -> u64 {
        self.iters
            .or_else(|| {
                std::env::var("TOWERLENS_BENCH_ITERS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(10)
            .max(1)
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            iters: self.iters(),
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "{id:<56} {:>12.3} ms/iter ({} iters)",
            bencher.mean.as_secs_f64() * 1e3,
            bencher.iters
        );
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_bodies() {
        let mut c = Criterion { iters: Some(3) };
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(10);
            group.bench_function(BenchmarkId::new("count", 1), |b| {
                b.iter(|| runs += 1);
            });
            group.finish();
        }
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { iters: Some(2) };
        let data = vec![1.0f64; 8];
        let mut seen = 0usize;
        c.benchmark_group("shim").bench_with_input(
            BenchmarkId::from_parameter(8),
            &data,
            |b, d| {
                b.iter(|| seen = d.len());
            },
        );
        assert_eq!(seen, 8);
    }
}
