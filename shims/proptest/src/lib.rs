//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! provides the subset of the proptest API the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(...)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`0u64..1000`, `-1e6f64..1e6`, …),
//! * [`collection::vec`] with an exact or ranged size,
//! * string strategies from a small regex subset
//!   (`"[A-Za-z0-9 .-]{0,40}"` style: character classes with a
//!   repetition count),
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: failing cases are **not shrunk** (the
//! failing draw is reported as-is), and generation is deterministic
//! per test name, so failures always reproduce.

#![forbid(unsafe_code)]

/// Deterministic SplitMix64 generator driving all draws.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (FNV-1a), typically the
    /// test name, so every test gets its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % n;
            }
        }
    }
}

/// A value generator. Unlike upstream there is no shrinking: a
/// strategy is just a function from an RNG to a value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------
// String strategies from a regex subset.
// ---------------------------------------------------------------

/// One element of a parsed pattern: a set of candidate chars plus a
/// repetition range.
#[derive(Debug, Clone)]
struct PatternPiece {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the regex subset: a sequence of literal characters or
/// character classes (`[A-Za-z0-9 .-]`), each optionally followed by
/// `{n}` or `{m,n}`. Panics on anything richer — extend the parser
/// rather than silently mis-generating.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = chars.next() else {
                        panic!("unterminated character class in `{pattern}`");
                    };
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            for v in lo as u32..=hi as u32 {
                                set.extend(char::from_u32(v));
                            }
                        }
                        '\\' => {
                            let escaped = chars.next().expect("escaped char");
                            set.push(escaped);
                            prev = Some(escaped);
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                set
            }
            '\\' => vec![chars.next().expect("escaped char")],
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported regex construct `{c}` in `{pattern}` (shim proptest)")
            }
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("repetition min"),
                    b.trim().parse().expect("repetition max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in `{pattern}`");
        assert!(!set.is_empty(), "empty character class in `{pattern}`");
        pieces.push(PatternPiece {
            chars: set,
            min,
            max,
        });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(piece.chars[rng.below(piece.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------

/// Size argument of [`collection::vec`]: exact or a range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty size range");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (returned by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with the formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Draws each `name in strategy` binding in order (internal).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_draw {
    ($rng:expr;) => {};
    ($rng:expr; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:expr; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_draw!($rng; $($rest)*);
    };
}

/// Expands the test functions one at a time (internal).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $crate::__proptest_draw!(&mut rng; $($args)*);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

/// The proptest entry macro: wraps `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The `prop` namespace (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_and_vec_sizes_respected() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let xs = Strategy::generate(&prop::collection::vec(0.0f64..1.0, 2..9), &mut rng);
            assert!((2..9).contains(&xs.len()));
        }
    }

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..500 {
            let s = Strategy::generate(&"[A-Za-z0-9 .-]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " .-".contains(c)));
        }
        let exact = Strategy::generate(&"[ab]{3}x", &mut rng);
        assert_eq!(exact.len(), 4);
        assert!(exact.ends_with('x'));
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("same");
        let mut b = TestRng::from_name("same");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_and_asserts(x in 0u32..100, xs in prop::collection::vec(-1.0f64..1.0, 1..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(xs.len(), xs.len());
            if xs.is_empty() {
                return Ok(());
            }
        }

        #[test]
        #[should_panic(expected = "proptest case")]
        fn macro_reports_failures(x in 0u32..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }
}
