//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, and the workspace
//! uses serde only as derive annotations on data types — no format
//! crate (`serde_json`, `bincode`, …) is ever linked, so nothing
//! actually calls into the traits. The stand-in therefore reduces the
//! traits to markers with blanket implementations and re-exports no-op
//! derives, keeping every `#[derive(Serialize, Deserialize)]` and
//! `T: Serialize` bound in the workspace compiling unchanged.
//!
//! The engine's checkpointing layer (`towerlens-core::engine`) does
//! its own explicit text serialisation precisely because no serde
//! format is available.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// The `serde::de` module surface some code paths name.
pub mod de {
    pub use crate::DeserializeOwned;
    pub use serde_derive::Deserialize;
}

/// The `serde::ser` module surface some code paths name.
pub mod ser {
    pub use serde_derive::Serialize;
}
