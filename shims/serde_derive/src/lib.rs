//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on data types but
//! never links a serialisation format (there is no `serde_json` etc.),
//! so the derives only need to *exist*. The shim `serde` crate
//! blanket-implements both traits, and these derives expand to
//! nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the shim trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
