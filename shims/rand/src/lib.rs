//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen`], and [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] here is xoshiro256\*\* seeded through SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), but with the
//! same contract the workspace relies on: deterministic for a given
//! seed, uniform, and fast. Every consumer seeds explicitly via
//! `seed_from_u64`, so cross-crate reproducibility is preserved.

#![forbid(unsafe_code)]

/// A value that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[low, high)` from `rng`.
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Rejection sampling over the top 64 bits keeps the
                // draw unbiased for every span that fits in u64.
                let span64 = span as u64;
                let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
                loop {
                    let x = rng.next_u64();
                    if x <= zone {
                        return low.wrapping_add((x % span64) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + (high - low) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + (high - low) * rng.next_f64() as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (low, high) = self.into_inner();
                if low == high {
                    return low;
                }
                if high < <$t>::MAX {
                    <$t>::sample_half_open(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_half_open(rng, low - 1, high).wrapping_add(1)
                } else {
                    // Full domain: every u64 draw maps onto it.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A value [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Uniform draw from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Uniform draw over the value's full/unit domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T;

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic xoshiro256\*\* generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Expands a 64-bit seed into the full state with SplitMix64,
        /// the initialisation recommended by the xoshiro authors.
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 bits.
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub(crate) fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn float_draws_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
