#!/usr/bin/env bash
# The full quality gate: run before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== fault injection (pinned seeds) =="
# The robustness contract, end to end: seeded fault classes through
# the full pipeline, plus panic containment in its own process.
cargo test -q -p towerlens-cli --test fault_injection --test panic_isolation

echo "== chaos: crash/resume, transient I/O, watchdog =="
# The supervision contract: kill the process at every checkpoint
# save and resume bit-identically, ride out injected checkpoint I/O
# faults under the --retries budget, and degrade (not hang) on a
# stage that blows its --stage-timeout-ms deadline.
cargo test -q -p towerlens-cli --test chaos

echo "== bench smoke + schema validation + baseline comparison =="
# One tiny workload through the real bench harness, the schema gate
# over both the smoke output and the committed baseline, then the
# regression gate: the smoke run must introduce no stage the
# committed baseline has never seen (medians compare only at
# matching sizes, so the 20-tower smoke checks the stage set).
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
cargo run --release -q -p towerlens-bench --bin bench -- \
    --sizes 20 --repeats 1 --seed 42 --out "$bench_tmp/BENCH_smoke.json"
cargo run --release -q -p towerlens-bench --bin bench -- \
    --validate "$bench_tmp/BENCH_smoke.json" --baseline BENCH_pipeline.json
cargo run --release -q -p towerlens-bench --bin bench -- --validate BENCH_pipeline.json

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "All checks passed."
