#!/usr/bin/env bash
# The full quality gate: run before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "All checks passed."
