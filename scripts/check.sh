#!/usr/bin/env bash
# The full quality gate: run before merging.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== fault injection (pinned seeds) =="
# The robustness contract, end to end: seeded fault classes through
# the full pipeline, plus panic containment in its own process.
cargo test -q -p towerlens-cli --test fault_injection --test panic_isolation

echo "== chaos: crash/resume, transient I/O, watchdog =="
# The supervision contract: kill the process at every checkpoint
# save and resume bit-identically, ride out injected checkpoint I/O
# faults under the --retries budget, and degrade (not hang) on a
# stage that blows its --stage-timeout-ms deadline.
cargo test -q -p towerlens-cli --test chaos

echo "== thread-count determinism: --threads 1 vs --threads 4 =="
# The parallel-layer contract at the outermost boundary: the same
# seeded study must print byte-identical stdout no matter how many
# workers split the stages.
thr_tmp="$(mktemp -d)"
trap 'rm -rf "$thr_tmp"' EXIT
./target/release/towerlens-cli study --scale tiny --seed 42 --threads 1 \
    > "$thr_tmp/study-t1.out"
./target/release/towerlens-cli study --scale tiny --seed 42 --threads 4 \
    > "$thr_tmp/study-t4.out"
cmp "$thr_tmp/study-t1.out" "$thr_tmp/study-t4.out" \
    || { echo "study output differs between --threads 1 and --threads 4"; exit 1; }
echo "bit-identical study output at --threads 1 and --threads 4"

echo "== paper-scale smoke: 9,600 towers in the spectral feature space =="
# The scale contract: the full Shanghai-size study must complete within
# a bounded wall-clock when clustering in the 6-dim spectral space
# (measured ~26s on a dev box; the bound mostly exists to catch a
# regression back onto the O(n²·4032) materialised raw path).
timeout 180 ./target/release/towerlens-cli study \
    --scale paper --seed 42 --feature-space spectral \
    > "$thr_tmp/study-paper.out" \
    || { echo "paper-scale spectral study failed or blew the 180s bound"; exit 1; }
grep -q "9600 towers" "$thr_tmp/study-paper.out" \
    || { echo "paper-scale study output missing its tower count"; exit 1; }
echo "paper-scale spectral study completed within bound"

echo "== cluster-index smoke: the spatial index is byte-invisible =="
# The exactness contract: the spatial index behind the spectral
# cluster stage is a pure accelerator, so the same tiny study with
# TOWERLENS_CLUSTER_INDEX=off (the unindexed on-demand fallback) must
# print byte-identical stdout.
./target/release/towerlens-cli study --scale tiny --seed 42 \
    --feature-space spectral --threads 4 > "$thr_tmp/study-idx-on.out"
TOWERLENS_CLUSTER_INDEX=off ./target/release/towerlens-cli study --scale tiny --seed 42 \
    --feature-space spectral --threads 4 > "$thr_tmp/study-idx-off.out"
cmp "$thr_tmp/study-idx-on.out" "$thr_tmp/study-idx-off.out" \
    || { echo "spectral study output changes when the cluster index is disabled"; exit 1; }
echo "index on/off study output byte-identical"

echo "== serve smoke: streaming replay vs batch, kill-and-restart chaos =="
# The streaming contract, end to end through the real binary: a
# recorded stream drained by `serve` must render stdout byte-identical
# to a rerun over the same durable state (WAL + snapshots), and a
# daemon killed at every WAL segment boundary must converge to the
# same bytes with zero record loss. The serve test suite additionally
# asserts serve == batch_reference at the library level.
serve_tmp="$(mktemp -d)"
trap 'rm -rf "$serve_tmp" "$thr_tmp"' EXIT
./target/release/towerlens-cli gen --out "$serve_tmp/ds" \
    --seed 7 --towers 20 --agents 60 --days 7 > /dev/null
head -2500 "$serve_tmp/ds/logs.tsv" > "$serve_tmp/stream.tsv"
serve_flags=(--source "$serve_tmp/stream.tsv" --days 7 --segment-records 500 --shards 3)
./target/release/towerlens-cli serve "${serve_flags[@]}" \
    --data "$serve_tmp/clean" > "$serve_tmp/serve-clean.out" 2> /dev/null
# Kill at every segment boundary (abort before each snapshot), then
# restart, until a run reaches the drain.
for attempt in $(seq 1 12); do
    if TOWERLENS_SERVE_KILL=pre:1 ./target/release/towerlens-cli serve \
        "${serve_flags[@]}" --data "$serve_tmp/chaos" \
        > "$serve_tmp/serve-chaos.out" 2> /dev/null; then
        break
    fi
    [ "$attempt" -lt 12 ] || { echo "serve chaos loop never drained"; exit 1; }
done
cmp "$serve_tmp/serve-clean.out" "$serve_tmp/serve-chaos.out" \
    || { echo "serve kill-and-resume stdout differs from uninterrupted run"; exit 1; }
./target/release/towerlens-cli doctor --dir "$serve_tmp/chaos" > /dev/null \
    || { echo "doctor found damage in the chaos data dir"; exit 1; }
echo "serve chaos replay bit-identical; WAL and snapshots fsck clean"

echo "== query smoke: artifact snapshot, t1-vs-t4 batch, corruption fsck =="
# The query contract, end to end through the real binary: a seeded
# study writes the versioned artifact, a 500-request mixed batch
# (including deliberately bad lines) renders byte-identical stdout at
# --threads 1 and 4, and after one byte of the artifact is flipped
# the doctor must notice and exit nonzero.
query_tmp="$(mktemp -d)"
trap 'rm -rf "$query_tmp" "$serve_tmp" "$thr_tmp"' EXIT
./target/release/towerlens-cli study --scale tiny --seed 42 \
    --snapshot "$query_tmp/study.artifact" > /dev/null
awk 'BEGIN {
    for (i = 0; i < 500; i++) {
        id = i % 120; m = i % 5;
        if (m <= 1)      print "pattern", id;
        else if (m == 2) print "topk", id, 5;
        else if (m == 3) print "decompose", id;
        else             print "pattern", 99999;
    }
}' > "$query_tmp/requests.txt"
for threads in 1 4; do
    ./target/release/towerlens-cli query --snapshot "$query_tmp/study.artifact" \
        --stdin --threads "$threads" \
        < "$query_tmp/requests.txt" > "$query_tmp/answers-t$threads.out"
done
cmp "$query_tmp/answers-t1.out" "$query_tmp/answers-t4.out" \
    || { echo "query batch differs between --threads 1 and --threads 4"; exit 1; }
[ "$(wc -l < "$query_tmp/answers-t1.out")" -eq 500 ] \
    || { echo "query batch did not answer all 500 requests"; exit 1; }
./target/release/towerlens-cli doctor --dir "$query_tmp" > /dev/null \
    || { echo "doctor rejected an intact artifact"; exit 1; }
last=$(( $(wc -c < "$query_tmp/study.artifact") - 1 ))
orig=$(dd if="$query_tmp/study.artifact" bs=1 skip="$last" count=1 2> /dev/null \
    | od -An -tu1 | tr -d ' ')
printf "\\$(printf '%03o' $(( (orig + 1) % 256 )))" \
    | dd of="$query_tmp/study.artifact" bs=1 seek="$last" conv=notrunc 2> /dev/null
if ./target/release/towerlens-cli doctor --dir "$query_tmp" > /dev/null; then
    echo "doctor missed a flipped artifact byte"; exit 1
fi
echo "query batch bit-identical at --threads 1 and 4; corruption caught"

echo "== serving-path fault matrix: publish kills, corrupt generation, shed determinism =="
# The overload/degraded-mode contract (DESIGN.md §15), end to end:
# kill the daemon inside the snapshot publish at each protocol point
# with an escalating ordinal until a run drains, then demand the
# converged store's CURRENT generation be byte-identical to the clean
# run's; corrupt that generation and demand `query --watch` stays on
# the last good one with degraded health; and shed a fixed slice of a
# batch under --request-budget at two thread counts, demanding
# byte-identical answers.
press_tmp="$(mktemp -d)"
trap 'rm -rf "$press_tmp" "$query_tmp" "$serve_tmp" "$thr_tmp"' EXIT
press_flags=(--source "$serve_tmp/stream.tsv" --days 7 --segment-records 500 --shards 3)
./target/release/towerlens-cli serve "${press_flags[@]}" \
    --data "$press_tmp/clean" --publish "$press_tmp/clean-store" > /dev/null 2>&1
clean_gen="$press_tmp/clean-store/$(cat "$press_tmp/clean-store/CURRENT")"
for stage in tmp gen cur; do
    converged=0
    for nth in $(seq 1 12); do
        if TOWERLENS_FAULT_PUBLISH="$stage:$nth" ./target/release/towerlens-cli serve \
            "${press_flags[@]}" --data "$press_tmp/$stage" \
            --publish "$press_tmp/$stage-store" > /dev/null 2>&1; then
            converged=1; break
        fi
    done
    [ "$converged" -eq 1 ] || { echo "publish chaos ($stage) never drained"; exit 1; }
    chaos_gen="$press_tmp/$stage-store/$(cat "$press_tmp/$stage-store/CURRENT")"
    cmp "$clean_gen" "$chaos_gen" \
        || { echo "publish chaos ($stage): converged generation differs"; exit 1; }
done
./target/release/towerlens-cli query --snapshot "$press_tmp/clean-store" --watch health \
    | grep -q "degraded=no" || { echo "clean store reports degraded health"; exit 1; }
# One flipped byte in the pointed-to generation: the watcher must fall
# back to the last good generation, report degraded health, and doctor
# must fail the store.
glast=$(( $(wc -c < "$clean_gen") - 1 ))
gorig=$(dd if="$clean_gen" bs=1 skip="$glast" count=1 2> /dev/null \
    | od -An -tu1 | tr -d ' ')
printf "\\$(printf '%03o' $(( (gorig + 1) % 256 )))" \
    | dd of="$clean_gen" bs=1 seek="$glast" conv=notrunc 2> /dev/null
./target/release/towerlens-cli query --snapshot "$press_tmp/clean-store" --watch health \
    | grep -q "degraded=yes" \
    || { echo "watcher served a generation that fails fsck"; exit 1; }
if ./target/release/towerlens-cli doctor --dir "$press_tmp/clean-store" > /dev/null; then
    echo "doctor missed the corrupt generation"; exit 1
fi
# Shed determinism: the same budget-limited batch must produce
# byte-identical answers (sheds included, in input order) at 1 and 4
# threads. topk costs one unit per tower, so budget 5 sheds every scan.
# (The query smoke above corrupted its artifact on purpose — build a
# fresh one.)
./target/release/towerlens-cli study --scale tiny --seed 42 \
    --snapshot "$press_tmp/study.artifact" > /dev/null
for threads in 1 4; do
    ./target/release/towerlens-cli query --snapshot "$press_tmp/study.artifact" \
        --stdin --threads "$threads" --request-budget 5 --deadline-units 500 \
        < "$query_tmp/requests.txt" > "$press_tmp/shed-t$threads.out" 2> /dev/null \
        || { echo "budget-limited query batch failed at --threads $threads"; exit 1; }
done
cmp "$press_tmp/shed-t1.out" "$press_tmp/shed-t4.out" \
    || { echo "shed decisions differ between --threads 1 and --threads 4"; exit 1; }
grep -q "error: overloaded:" "$press_tmp/shed-t1.out" \
    || { echo "budget 5 shed nothing — admission control inert"; exit 1; }
echo "publish kill matrix converged byte-identically; corrupt generation quarantined; shedding deterministic"

echo "== bench smoke + schema validation + baseline comparison =="
# One tiny workload through the real bench harness at both thread
# settings, the schema gate over both smoke outputs and the committed
# baseline, then the regression gate: neither smoke run may introduce
# a stage the committed baseline has never seen (medians compare only
# at matching sizes, so the 20-tower smoke checks the stage set).
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp" "$press_tmp" "$query_tmp" "$serve_tmp" "$thr_tmp"' EXIT
for threads in 1 4; do
    cargo run --release -q -p towerlens-bench --bin bench -- \
        --sizes 20 --repeats 1 --seed 42 --threads "$threads" \
        --out "$bench_tmp/BENCH_smoke_t$threads.json"
    cargo run --release -q -p towerlens-bench --bin bench -- \
        --validate "$bench_tmp/BENCH_smoke_t$threads.json" --baseline BENCH_pipeline.json
done
cargo run --release -q -p towerlens-bench --bin bench -- --validate BENCH_pipeline.json

echo "== indexed bench workloads: 100k cluster + pruned topk, baseline-gated =="
# The two spatial-index workloads through the real harness at their
# baseline shapes, so the exact (deterministic-counter) gates engage:
# the 100,000-point cluster-index build may not evaluate more leaf
# distances than the committed baseline, and the 9,600-tower query
# workload may not prune fewer topk subtrees. The wall-clock bound
# covers the snapshot-building study plus both workloads; blowing it
# means the index regressed to scan-like behaviour.
timeout 540 cargo run --release -q -p towerlens-bench --bin bench -- \
    --sizes 20 --repeats 1 --seed 42 --threads 1 --query --cluster-100k \
    --out "$bench_tmp/BENCH_index_smoke.json" \
    || { echo "indexed bench workloads failed or blew the 540s bound"; exit 1; }
cargo run --release -q -p towerlens-bench --bin bench -- \
    --validate "$bench_tmp/BENCH_index_smoke.json" --baseline BENCH_pipeline.json

echo "== cargo clippy =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "All checks passed."
