//! City-generation configuration and presets.

use serde::{Deserialize, Serialize};

use crate::error::CityError;
use crate::geo::GeoPoint;

/// Configuration of the synthetic city generator.
///
/// The defaults are the *paper-scale* preset: 9,600 towers over a
/// Shanghai-sized monocentric city, with the Table 1 region mixture as
/// the tower-placement prior. Smaller presets keep tests and examples
/// fast.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityConfig {
    /// RNG seed: two configs with equal fields generate identical
    /// cities.
    pub seed: u64,
    /// Number of cellular towers.
    pub n_towers: usize,
    /// City centre (defaults to a Shanghai-like coordinate).
    pub center: GeoPoint,
    /// City radius in metres (towers and zones fall inside this disc).
    pub radius_m: f64,
    /// Prior shares of towers per region kind, in canonical
    /// [`RegionKind`](crate::zone::RegionKind) order
    /// (resident, transport, office, entertainment, comprehensive).
    /// Must sum to ≈1. Defaults to the paper's Table 1.
    pub region_shares: [f64; 5],
    /// Average number of towers seated per zone (controls zone count).
    pub towers_per_zone: f64,
    /// Mean POI counts per zone, indexed
    /// `[region kind][poi kind]` — calibrated to the relative
    /// magnitudes of the paper's Table 2.
    pub poi_intensity: [[f64; 4]; 5],
    /// Gaussian scatter of a tower around its zone centre, as a
    /// fraction of the zone radius (relative scatter keeps towers of
    /// small zones — transport hubs — inside their zone).
    pub tower_scatter_rel: f64,
    /// The function blend a comprehensive zone contributes, in
    /// canonical POI order (resident, transport, office,
    /// entertainment). Mixed-use districts are predominantly
    /// live/work space — residences and offices with some commerce —
    /// so the default leans that way; it is *not* uniform, which is
    /// what makes comprehensive areas a coherent fifth pattern rather
    /// than a smear between the pure ones.
    pub comprehensive_blend: [f64; 4],
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig::paper_scale(42)
    }
}

impl CityConfig {
    /// Full paper scale: 9,600 towers.
    pub fn paper_scale(seed: u64) -> Self {
        CityConfig {
            seed,
            n_towers: 9_600,
            center: GeoPoint::new(121.47, 31.23),
            radius_m: 25_000.0,
            region_shares: PAPER_TABLE1_SHARES,
            // A city's functional districts don't multiply with tower
            // density: ~300 zones over the 25 km disc at every scale
            // (the medium preset overrides this to keep 300 zones at
            // 2,400 towers).
            towers_per_zone: 32.0,
            poi_intensity: POI_INTENSITY,
            tower_scatter_rel: 0.35,
            comprehensive_blend: [0.45, 0.10, 0.25, 0.20],
        }
    }

    /// Medium scale (default for the repro harness): the full analysis
    /// in seconds rather than minutes.
    pub fn medium(seed: u64) -> Self {
        CityConfig {
            n_towers: 2_400,
            towers_per_zone: 8.0,
            ..CityConfig::paper_scale(seed)
        }
    }

    /// Small scale for integration tests and examples.
    pub fn small(seed: u64) -> Self {
        CityConfig {
            n_towers: 600,
            radius_m: 12_000.0,
            towers_per_zone: 8.0,
            ..CityConfig::paper_scale(seed)
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny(seed: u64) -> Self {
        CityConfig {
            n_towers: 120,
            radius_m: 6_000.0,
            towers_per_zone: 4.0,
            ..CityConfig::paper_scale(seed)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// [`CityError::NoTowers`], [`CityError::BadExtent`], or
    /// [`CityError::BadShares`].
    pub fn validate(&self) -> Result<(), CityError> {
        if self.n_towers == 0 {
            return Err(CityError::NoTowers);
        }
        if self.radius_m <= 0.0
            || self.towers_per_zone <= 0.0
            || self.radius_m.is_nan()
            || self.towers_per_zone.is_nan()
        {
            return Err(CityError::BadExtent);
        }
        let sum: f64 = self.region_shares.iter().sum();
        if (sum - 1.0).abs() > 1e-6 || self.region_shares.iter().any(|&s| s < 0.0) {
            return Err(CityError::BadShares);
        }
        Ok(())
    }
}

/// The paper's Table 1 cluster shares, used as the default tower
/// mixture: resident 17.55%, transport 2.58%, office 45.72%,
/// entertainment 9.35%, comprehensive 24.81% (rounded to sum to 1).
pub const PAPER_TABLE1_SHARES: [f64; 5] = [0.1755, 0.0258, 0.4572, 0.0935, 0.2480];

/// Mean POI counts per zone by `[region][poi]`, echoing the relative
/// magnitudes of the paper's Table 2 (points A–E), scaled down to a
/// zone-sized neighbourhood. Transport POIs are rare in absolute terms
/// everywhere (as in the paper, where even the transport hub has only
/// 2), but relatively concentrated at transport hubs — the min-max
/// normalisation of Table 3 is what surfaces them.
pub const POI_INTENSITY: [[f64; 4]; 5] = [
    // resident zone: homes dominate by a wide margin
    [260.0, 0.06, 9.0, 22.0],
    // transport hub: some homes/offices nearby, *relatively* many stations
    [35.0, 2.2, 25.0, 16.0],
    // office zone: office towers dominate
    [40.0, 0.5, 420.0, 65.0],
    // entertainment zone: malls and restaurants dominate
    [10.0, 0.3, 45.0, 900.0],
    // comprehensive: a balanced blend
    [60.0, 0.18, 75.0, 12.0],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            CityConfig::paper_scale(1),
            CityConfig::medium(1),
            CityConfig::small(1),
            CityConfig::tiny(1),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let sum: f64 = PAPER_TABLE1_SHARES.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = CityConfig::tiny(0);
        cfg.n_towers = 0;
        assert_eq!(cfg.validate(), Err(CityError::NoTowers));

        let mut cfg = CityConfig::tiny(0);
        cfg.radius_m = -5.0;
        assert_eq!(cfg.validate(), Err(CityError::BadExtent));

        let mut cfg = CityConfig::tiny(0);
        cfg.region_shares = [0.5, 0.5, 0.5, 0.0, 0.0];
        assert_eq!(cfg.validate(), Err(CityError::BadShares));
    }

    #[test]
    fn office_intensity_dominates_office_zone() {
        // Guard the calibration: each pure zone's native POI type must
        // be its max — that's what makes Table 3's diagonal possible.
        use crate::zone::RegionKind;
        for kind in RegionKind::PURE {
            let row = POI_INTENSITY[kind.index()];
            let native = kind.native_poi().unwrap().index();
            // Transport is the exception: its absolute counts are small
            // by design; dominance there is *relative* (min-max).
            if kind != RegionKind::Transport {
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(row[native], max, "{kind:?}: {row:?}");
            }
        }
    }
}
