//! Urban functional regions and POI taxonomy.

use serde::{Deserialize, Serialize};

use crate::geo::GeoPoint;

/// The five urban functional region kinds the paper identifies
/// (§3.3). Order matters: it is the canonical index used across the
/// workspace (shares arrays, mixture vectors, tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Residential area — homes; traffic peaks in the evening and
    /// stays high at night.
    Resident,
    /// Transport hub — stations, overpasses; double rush-hour peaks.
    Transport,
    /// Office / business district — single midday peak, dead weekends.
    Office,
    /// Entertainment — shopping malls, nightlife; evening/weekend
    /// peaks.
    Entertainment,
    /// Comprehensive — mixed-function area; a blend of the other four.
    Comprehensive,
}

impl RegionKind {
    /// All five kinds in canonical order (the paper's cluster order:
    /// resident, transport, office, entertainment, comprehensive).
    pub const ALL: [RegionKind; 5] = [
        RegionKind::Resident,
        RegionKind::Transport,
        RegionKind::Office,
        RegionKind::Entertainment,
        RegionKind::Comprehensive,
    ];

    /// The four *pure* (single-function) kinds — the paper's "four
    /// primary components".
    pub const PURE: [RegionKind; 4] = [
        RegionKind::Resident,
        RegionKind::Transport,
        RegionKind::Office,
        RegionKind::Entertainment,
    ];

    /// Canonical index into 5-element arrays.
    pub fn index(self) -> usize {
        match self {
            RegionKind::Resident => 0,
            RegionKind::Transport => 1,
            RegionKind::Office => 2,
            RegionKind::Entertainment => 3,
            RegionKind::Comprehensive => 4,
        }
    }

    /// Inverse of [`RegionKind::index`]; `None` for out-of-range.
    pub fn from_index(i: usize) -> Option<RegionKind> {
        RegionKind::ALL.get(i).copied()
    }

    /// Human-readable label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            RegionKind::Resident => "Resident",
            RegionKind::Transport => "Transport",
            RegionKind::Office => "Office",
            RegionKind::Entertainment => "Entertainment",
            RegionKind::Comprehensive => "Comprehensive",
        }
    }

    /// The POI kind this region kind natively produces, `None` for
    /// comprehensive (which mixes all four).
    pub fn native_poi(self) -> Option<PoiKind> {
        match self {
            RegionKind::Resident => Some(PoiKind::Resident),
            RegionKind::Transport => Some(PoiKind::Transport),
            RegionKind::Office => Some(PoiKind::Office),
            RegionKind::Entertainment => Some(PoiKind::Entertainment),
            RegionKind::Comprehensive => None,
        }
    }
}

impl std::fmt::Display for RegionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The four POI types the paper counts within 200 m of each tower
/// (§3.3.1): resident, transport, office, entertainment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiKind {
    /// Residential buildings.
    Resident,
    /// Stations, bus stops, overpasses.
    Transport,
    /// Office buildings, company registrations.
    Office,
    /// Restaurants, malls, cinemas, parks.
    Entertainment,
}

impl PoiKind {
    /// All four POI kinds in canonical order.
    pub const ALL: [PoiKind; 4] = [
        PoiKind::Resident,
        PoiKind::Transport,
        PoiKind::Office,
        PoiKind::Entertainment,
    ];

    /// Canonical index into 4-element arrays.
    pub fn index(self) -> usize {
        match self {
            PoiKind::Resident => 0,
            PoiKind::Transport => 1,
            PoiKind::Office => 2,
            PoiKind::Entertainment => 3,
        }
    }

    /// Inverse of [`PoiKind::index`].
    pub fn from_index(i: usize) -> Option<PoiKind> {
        PoiKind::ALL.get(i).copied()
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PoiKind::Resident => "Resident",
            PoiKind::Transport => "Transport",
            PoiKind::Office => "Office",
            PoiKind::Entertainment => "Entertain",
        }
    }
}

impl std::fmt::Display for PoiKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A functional zone: a disc of a single region kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    /// Zone id (index into the city's zone list).
    pub id: usize,
    /// What the zone is.
    pub kind: RegionKind,
    /// Disc centre.
    pub center: GeoPoint,
    /// Disc radius in metres.
    pub radius_m: f64,
}

impl Zone {
    /// Whether a point falls inside the zone disc.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.center.distance_m(p) <= self.radius_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for kind in RegionKind::ALL {
            assert_eq!(RegionKind::from_index(kind.index()), Some(kind));
        }
        for kind in PoiKind::ALL {
            assert_eq!(PoiKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(RegionKind::from_index(5), None);
        assert_eq!(PoiKind::from_index(4), None);
    }

    #[test]
    fn canonical_order_matches_paper_cluster_numbers() {
        // The paper numbers clusters 1..5 as resident, transport,
        // office, entertainment, comprehensive.
        assert_eq!(RegionKind::ALL[0], RegionKind::Resident);
        assert_eq!(RegionKind::ALL[1], RegionKind::Transport);
        assert_eq!(RegionKind::ALL[2], RegionKind::Office);
        assert_eq!(RegionKind::ALL[3], RegionKind::Entertainment);
        assert_eq!(RegionKind::ALL[4], RegionKind::Comprehensive);
    }

    #[test]
    fn native_poi_mapping() {
        assert_eq!(RegionKind::Office.native_poi(), Some(PoiKind::Office));
        assert_eq!(RegionKind::Comprehensive.native_poi(), None);
    }

    #[test]
    fn zone_containment() {
        let z = Zone {
            id: 0,
            kind: RegionKind::Resident,
            center: GeoPoint::new(121.47, 31.23),
            radius_m: 500.0,
        };
        assert!(z.contains(&z.center));
        assert!(z.contains(&z.center.offset_m(300.0, 0.0)));
        assert!(!z.contains(&z.center.offset_m(600.0, 0.0)));
    }
}
