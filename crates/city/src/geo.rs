//! Geographic primitives: points, distances, bounding boxes, and the
//! block-grid address convention shared with the synthetic geocoder.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Side length (in degrees) of one address block in the synthetic
/// `BLK-<i>-<j>` addressing scheme. Roughly 110 m of latitude — the
/// quantisation error a real geocoder would introduce.
pub const BLOCK_DEG: f64 = 0.001;

/// A WGS84-style coordinate (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Longitude in degrees.
    pub lon: f64,
    /// Latitude in degrees.
    pub lat: f64,
}

impl GeoPoint {
    /// Creates a point from longitude/latitude degrees.
    pub const fn new(lon: f64, lat: f64) -> Self {
        GeoPoint { lon, lat }
    }

    /// Great-circle distance to another point, in metres (haversine).
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        let phi1 = self.lat.to_radians();
        let phi2 = other.lat.to_radians();
        let dphi = (other.lat - self.lat).to_radians();
        let dlambda = (other.lon - self.lon).to_radians();
        let a =
            (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Offsets this point by metres east (`dx`) and north (`dy`) using
    /// the local metric (accurate for city-scale offsets).
    pub fn offset_m(&self, dx: f64, dy: f64) -> GeoPoint {
        let lat_rad = self.lat.to_radians();
        let dlat = dy / EARTH_RADIUS_M;
        let dlon = dx / (EARTH_RADIUS_M * lat_rad.cos());
        GeoPoint {
            lon: self.lon + dlon.to_degrees(),
            lat: self.lat + dlat.to_degrees(),
        }
    }

    /// The `BLK-<i>-<j>` address string of this point — the convention
    /// the synthetic geocoder in `towerlens-trace` parses back. `i`
    /// indexes longitude blocks, `j` latitude blocks.
    pub fn block_address(&self) -> String {
        let i = (self.lon / BLOCK_DEG).floor() as i64;
        let j = (self.lat / BLOCK_DEG).floor() as i64;
        format!("BLK-{i}-{j}")
    }

    /// The centre of the named block, if `address` follows the
    /// `BLK-<i>-<j>` convention (possibly followed by free text after
    /// a space, as real addresses carry street names).
    pub fn from_block_address(address: &str) -> Option<GeoPoint> {
        let token = address.split_whitespace().next()?;
        let rest = token.strip_prefix("BLK-")?;
        let (i_str, j_str) = rest.split_once('-')?;
        // A leading '-' on i was consumed by split_once if lon < 0;
        // handle negatives by re-splitting carefully.
        let (i, j) = parse_signed_pair(i_str, j_str, rest)?;
        Some(GeoPoint {
            lon: (i as f64 + 0.5) * BLOCK_DEG,
            lat: (j as f64 + 0.5) * BLOCK_DEG,
        })
    }
}

/// Parses the `i`/`j` block indices, tolerating negative values whose
/// minus sign collides with the `-` separators.
fn parse_signed_pair(i_str: &str, j_str: &str, rest: &str) -> Option<(i64, i64)> {
    if let (Ok(i), Ok(j)) = (i_str.parse::<i64>(), j_str.parse::<i64>()) {
        return Some((i, j));
    }
    // Negative indices: find the split point by scanning possible
    // separator positions in `rest` (e.g. "-12--34").
    for (pos, ch) in rest.char_indices().skip(1) {
        if ch == '-' {
            let (a, b) = rest.split_at(pos);
            let b = &b[1..];
            if let (Ok(i), Ok(j)) = (a.parse::<i64>(), b.parse::<i64>()) {
                return Some((i, j));
            }
        }
    }
    None
}

/// An axis-aligned bounding box in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// West edge (min longitude).
    pub min_lon: f64,
    /// East edge (max longitude).
    pub max_lon: f64,
    /// South edge (min latitude).
    pub min_lat: f64,
    /// North edge (max latitude).
    pub max_lat: f64,
}

impl BoundingBox {
    /// The degenerate box containing nothing; growing it with
    /// [`BoundingBox::include`] builds a hull.
    pub fn empty() -> Self {
        BoundingBox {
            min_lon: f64::INFINITY,
            max_lon: f64::NEG_INFINITY,
            min_lat: f64::INFINITY,
            max_lat: f64::NEG_INFINITY,
        }
    }

    /// Expands the box to contain `p`.
    pub fn include(&mut self, p: &GeoPoint) {
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lon >= self.min_lon
            && p.lon <= self.max_lon
            && p.lat >= self.min_lat
            && p.lat <= self.max_lat
    }

    /// Centre point of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lon: (self.min_lon + self.max_lon) / 2.0,
            lat: (self.min_lat + self.max_lat) / 2.0,
        }
    }

    /// Width and height in degrees.
    pub fn span(&self) -> (f64, f64) {
        (self.max_lon - self.min_lon, self.max_lat - self.min_lat)
    }

    /// Approximate area in km², using the local metric at the box
    /// centre. Zero for empty/degenerate boxes.
    pub fn area_km2(&self) -> f64 {
        if self.min_lon > self.max_lon || self.min_lat > self.max_lat {
            return 0.0;
        }
        let lat_rad = self.center().lat.to_radians();
        let width_km =
            (self.max_lon - self.min_lon).to_radians() * EARTH_RADIUS_M * lat_rad.cos() / 1000.0;
        let height_km = (self.max_lat - self.min_lat).to_radians() * EARTH_RADIUS_M / 1000.0;
        width_km * height_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shanghai People's Square, roughly.
    const SHANGHAI: GeoPoint = GeoPoint::new(121.47, 31.23);

    #[test]
    fn haversine_known_distance() {
        // ~0.01° of latitude ≈ 1.11 km.
        let a = SHANGHAI;
        let b = GeoPoint::new(121.47, 31.24);
        let d = a.distance_m(&b);
        assert!((d - 1112.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = SHANGHAI;
        let b = GeoPoint::new(121.52, 31.30);
        assert!((a.distance_m(&b) - b.distance_m(&a)).abs() < 1e-9);
        assert_eq!(a.distance_m(&a), 0.0);
    }

    #[test]
    fn offset_roundtrips_through_distance() {
        let p = SHANGHAI.offset_m(300.0, -400.0);
        let d = SHANGHAI.distance_m(&p);
        assert!((d - 500.0).abs() < 1.0, "got {d}");
    }

    #[test]
    fn block_address_roundtrip() {
        let p = GeoPoint::new(121.4712, 31.2345);
        let addr = p.block_address();
        assert!(addr.starts_with("BLK-"));
        let back = GeoPoint::from_block_address(&addr).unwrap();
        // Quantisation keeps us within one block diagonal (~157 m).
        assert!(p.distance_m(&back) < 160.0);
    }

    #[test]
    fn block_address_with_street_suffix() {
        let p = GeoPoint::new(121.4712, 31.2345);
        let addr = format!("{} Nanjing Rd", p.block_address());
        let back = GeoPoint::from_block_address(&addr).unwrap();
        assert!(p.distance_m(&back) < 160.0);
    }

    #[test]
    fn negative_coordinates_roundtrip() {
        let p = GeoPoint::new(-0.1277, 51.5074); // London
        let back = GeoPoint::from_block_address(&p.block_address()).unwrap();
        assert!(p.distance_m(&back) < 160.0);
        let q = GeoPoint::new(-70.66, -33.45); // Santiago
        let back = GeoPoint::from_block_address(&q.block_address()).unwrap();
        assert!(q.distance_m(&back) < 160.0);
    }

    #[test]
    fn malformed_addresses_rejected() {
        assert_eq!(GeoPoint::from_block_address(""), None);
        assert_eq!(GeoPoint::from_block_address("People's Square"), None);
        assert_eq!(GeoPoint::from_block_address("BLK-12"), None);
        assert_eq!(GeoPoint::from_block_address("BLK-a-b"), None);
    }

    #[test]
    fn bounding_box_hull_and_queries() {
        let mut bb = BoundingBox::empty();
        bb.include(&GeoPoint::new(121.4, 31.1));
        bb.include(&GeoPoint::new(121.6, 31.3));
        assert!(bb.contains(&GeoPoint::new(121.5, 31.2)));
        assert!(!bb.contains(&GeoPoint::new(121.7, 31.2)));
        let c = bb.center();
        assert!((c.lon - 121.5).abs() < 1e-12);
        assert!((c.lat - 31.2).abs() < 1e-12);
        let (w, h) = bb.span();
        assert!((w - 0.2).abs() < 1e-12 && (h - 0.2).abs() < 1e-12);
    }

    #[test]
    fn area_of_known_box() {
        let bb = BoundingBox {
            min_lon: 121.0,
            max_lon: 121.0 + 0.1,
            min_lat: 31.0,
            max_lat: 31.0 + 0.1,
        };
        // 0.1° lat ≈ 11.1 km; 0.1° lon at 31° ≈ 9.5 km ⇒ ~106 km².
        let area = bb.area_km2();
        assert!((area - 106.0).abs() < 3.0, "got {area}");
        assert_eq!(BoundingBox::empty().area_km2(), 0.0);
    }
}
