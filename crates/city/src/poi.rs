//! Points of interest and a grid-bucketed spatial index.
//!
//! The paper "measures the number of four main types of POI … within
//! 200m of each cell tower" for thousands of towers; a linear scan per
//! tower would be O(towers × POIs). The index buckets POIs into a
//! uniform degree grid so radius queries touch only nearby buckets.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::geo::GeoPoint;
use crate::zone::PoiKind;

/// A single point of interest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Poi {
    /// Location.
    pub position: GeoPoint,
    /// Type.
    pub kind: PoiKind,
    /// Id of the zone that spawned it.
    pub zone_id: usize,
}

/// A uniform-grid spatial index over POIs supporting radius counting.
#[derive(Debug, Clone)]
pub struct PoiIndex {
    cell_deg: f64,
    buckets: HashMap<(i64, i64), Vec<usize>>,
    pois: Vec<Poi>,
}

impl PoiIndex {
    /// Builds an index. `cell_deg` is the grid pitch in degrees; the
    /// default used by [`PoiIndex::build`] is 0.005° (~500 m), a good
    /// fit for 200 m queries.
    pub fn with_cell(pois: Vec<Poi>, cell_deg: f64) -> Self {
        let cell_deg = if cell_deg > 0.0 { cell_deg } else { 0.005 };
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, poi) in pois.iter().enumerate() {
            buckets
                .entry(Self::key(cell_deg, &poi.position))
                .or_default()
                .push(i);
        }
        PoiIndex {
            cell_deg,
            buckets,
            pois,
        }
    }

    /// Builds an index with the default cell size.
    pub fn build(pois: Vec<Poi>) -> Self {
        Self::with_cell(pois, 0.005)
    }

    fn key(cell_deg: f64, p: &GeoPoint) -> (i64, i64) {
        (
            (p.lon / cell_deg).floor() as i64,
            (p.lat / cell_deg).floor() as i64,
        )
    }

    /// Total POI count.
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// `true` if the index holds no POIs.
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// All POIs (insertion order).
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Counts POIs of each kind within `radius_m` of `center`,
    /// returned in canonical [`PoiKind`] order.
    pub fn counts_within(&self, center: &GeoPoint, radius_m: f64) -> [usize; 4] {
        let mut counts = [0usize; 4];
        self.for_each_within(center, radius_m, |poi| {
            counts[poi.kind.index()] += 1;
        });
        counts
    }

    /// Visits every POI within `radius_m` of `center`.
    pub fn for_each_within<F: FnMut(&Poi)>(&self, center: &GeoPoint, radius_m: f64, mut f: F) {
        if radius_m <= 0.0 {
            return;
        }
        // Conservative cell span: metres → degrees, padded for
        // longitude shrink at high latitude.
        let lat_rad = center.lat.to_radians();
        let deg_per_m_lat = 1.0 / 111_320.0;
        let deg_per_m_lon = deg_per_m_lat / lat_rad.cos().abs().max(0.1);
        let span_lon = (radius_m * deg_per_m_lon / self.cell_deg).ceil() as i64 + 1;
        let span_lat = (radius_m * deg_per_m_lat / self.cell_deg).ceil() as i64 + 1;
        let (ci, cj) = Self::key(self.cell_deg, center);
        for di in -span_lon..=span_lon {
            for dj in -span_lat..=span_lat {
                if let Some(bucket) = self.buckets.get(&(ci + di, cj + dj)) {
                    for &idx in bucket {
                        let poi = &self.pois[idx];
                        if center.distance_m(&poi.position) <= radius_m {
                            f(poi);
                        }
                    }
                }
            }
        }
    }

    /// Counts POIs of each kind within `radius_m` as `f64` (convenient
    /// for the TF-IDF layer).
    pub fn counts_within_f64(&self, center: &GeoPoint, radius_m: f64) -> [f64; 4] {
        let c = self.counts_within(center, radius_m);
        [c[0] as f64, c[1] as f64, c[2] as f64, c[3] as f64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poi(lon: f64, lat: f64, kind: PoiKind) -> Poi {
        Poi {
            position: GeoPoint::new(lon, lat),
            kind,
            zone_id: 0,
        }
    }

    #[test]
    fn counts_respect_radius() {
        let center = GeoPoint::new(121.47, 31.23);
        let pois = vec![
            Poi {
                position: center.offset_m(100.0, 0.0),
                kind: PoiKind::Office,
                zone_id: 0,
            },
            Poi {
                position: center.offset_m(0.0, 150.0),
                kind: PoiKind::Office,
                zone_id: 0,
            },
            Poi {
                position: center.offset_m(0.0, 500.0),
                kind: PoiKind::Office,
                zone_id: 0,
            },
            Poi {
                position: center.offset_m(-50.0, 50.0),
                kind: PoiKind::Resident,
                zone_id: 0,
            },
        ];
        let idx = PoiIndex::build(pois);
        let counts = idx.counts_within(&center, 200.0);
        assert_eq!(counts[PoiKind::Office.index()], 2);
        assert_eq!(counts[PoiKind::Resident.index()], 1);
        assert_eq!(counts[PoiKind::Transport.index()], 0);
    }

    #[test]
    fn index_matches_linear_scan() {
        // Pseudo-random cloud; grid query must equal brute force.
        let center = GeoPoint::new(121.5, 31.2);
        let mut pois = Vec::new();
        for i in 0..500u64 {
            let dx = (((i * 48271) % 2001) as f64 - 1000.0) * 2.0;
            let dy = (((i * 16807) % 2001) as f64 - 1000.0) * 2.0;
            let kind = PoiKind::ALL[(i % 4) as usize];
            pois.push(Poi {
                position: center.offset_m(dx, dy),
                kind,
                zone_id: 0,
            });
        }
        let idx = PoiIndex::build(pois.clone());
        for radius in [100.0, 200.0, 750.0, 2_000.0] {
            let fast = idx.counts_within(&center, radius);
            let mut slow = [0usize; 4];
            for p in &pois {
                if center.distance_m(&p.position) <= radius {
                    slow[p.kind.index()] += 1;
                }
            }
            assert_eq!(fast, slow, "radius {radius}");
        }
    }

    #[test]
    fn empty_index_and_zero_radius() {
        let idx = PoiIndex::build(Vec::new());
        assert!(idx.is_empty());
        assert_eq!(
            idx.counts_within(&GeoPoint::new(0.0, 0.0), 200.0),
            [0, 0, 0, 0]
        );
        let idx = PoiIndex::build(vec![poi(0.0, 0.0, PoiKind::Office)]);
        assert_eq!(
            idx.counts_within(&GeoPoint::new(0.0, 0.0), 0.0),
            [0, 0, 0, 0]
        );
    }

    #[test]
    fn boundary_pois_counted_inclusively() {
        let center = GeoPoint::new(121.47, 31.23);
        let pois = vec![Poi {
            position: center.offset_m(0.0, 200.0),
            kind: PoiKind::Transport,
            zone_id: 0,
        }];
        let idx = PoiIndex::build(pois);
        // offset_m → haversine roundtrip error is sub-metre.
        let counts = idx.counts_within(&center, 201.0);
        assert_eq!(counts[PoiKind::Transport.index()], 1);
    }
}
