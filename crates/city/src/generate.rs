//! The city generator.
//!
//! Spatial model (monocentric, see crate docs):
//!
//! | kind          | radial placement (R = city radius)             |
//! |---------------|------------------------------------------------|
//! | office        | half-normal, σ = 0.18·R (downtown core)        |
//! | entertainment | half-normal, σ = 0.30·R (inner ring)           |
//! | transport     | uniform radius along 6 radial corridors        |
//! | resident      | normal ring at 0.55·R, σ = 0.15·R (outskirts)  |
//! | comprehensive | uniform over the disc                          |
//!
//! Angles are uniform (with corridor snapping for transport). The
//! centre therefore ends up office/entertainment-dense and the
//! periphery residential — the structure Fig 2 and Fig 7 rely on —
//! without ever telling the traffic model what a "cluster" is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::city::{City, Tower};
use crate::config::CityConfig;
use crate::error::CityError;
use crate::geo::{BoundingBox, GeoPoint};
use crate::poi::{Poi, PoiIndex};
use crate::zone::{PoiKind, RegionKind, Zone};

/// Generates a deterministic synthetic city from a configuration.
///
/// ```
/// use towerlens_city::{config::CityConfig, generate::generate};
///
/// let city = generate(&CityConfig::tiny(42))?;
/// assert_eq!(city.towers().len(), 120);
/// assert!(!city.pois().is_empty());
/// # Ok::<(), towerlens_city::CityError>(())
/// ```
///
/// # Errors
/// Configuration validation failures; see [`CityConfig::validate`].
pub fn generate(config: &CityConfig) -> Result<City, CityError> {
    config.validate()?;
    // Independent streams so that, e.g., changing POI intensities
    // doesn't reshuffle tower placement.
    let mut zone_rng = StdRng::seed_from_u64(config.seed ^ 0x5A0E_5A0E_0000_0001);
    let mut poi_rng = StdRng::seed_from_u64(config.seed ^ 0x5A0E_5A0E_0000_0002);
    let mut tower_rng = StdRng::seed_from_u64(config.seed ^ 0x5A0E_5A0E_0000_0003);

    // --- zones ---------------------------------------------------
    let n_zones = ((config.n_towers as f64 / config.towers_per_zone).ceil() as usize).max(5);
    let mut zone_counts = apportion(n_zones, &config.region_shares);
    // Every kind needs at least one zone so every share>0 kind can seat
    // its towers.
    for (k, c) in zone_counts.iter_mut().enumerate() {
        if *c == 0 && config.region_shares[k] > 0.0 {
            *c = 1;
        }
    }
    let mut zones = Vec::new();
    for kind in RegionKind::ALL {
        for _ in 0..zone_counts[kind.index()] {
            let center = place_zone(&mut zone_rng, kind, config);
            let radius_m = match kind {
                RegionKind::Transport => zone_rng.gen_range(150.0..350.0),
                RegionKind::Office => zone_rng.gen_range(250.0..600.0),
                _ => zone_rng.gen_range(300.0..800.0),
            };
            zones.push(Zone {
                id: zones.len(),
                kind,
                center,
                radius_m,
            });
        }
    }

    // --- POIs ----------------------------------------------------
    let mut pois = Vec::new();
    for zone in &zones {
        let intensity = config.poi_intensity[zone.kind.index()];
        for poi_kind in PoiKind::ALL {
            let mean = intensity[poi_kind.index()];
            let count = poisson(&mut poi_rng, mean);
            for _ in 0..count {
                let pos = scatter_in_disc(&mut poi_rng, &zone.center, zone.radius_m);
                pois.push(Poi {
                    position: pos,
                    kind: poi_kind,
                    zone_id: zone.id,
                });
            }
        }
    }

    // --- towers --------------------------------------------------
    let tower_counts = apportion(config.n_towers, &config.region_shares);
    let mut towers = Vec::new();
    for kind in RegionKind::ALL {
        let candidates: Vec<usize> = zones
            .iter()
            .filter(|z| z.kind == kind)
            .map(|z| z.id)
            .collect();
        if candidates.is_empty() {
            continue;
        }
        for _ in 0..tower_counts[kind.index()] {
            let zone_id = candidates[tower_rng.gen_range(0..candidates.len())];
            let zone = &zones[zone_id];
            let scatter = config.tower_scatter_rel * zone.radius_m;
            let dx = normal(&mut tower_rng) * scatter;
            let dy = normal(&mut tower_rng) * scatter;
            let position = zone.center.offset_m(dx, dy);
            let street = STREET_NAMES[tower_rng.gen_range(0..STREET_NAMES.len())];
            let address = format!("{} {street}", position.block_address());
            towers.push(Tower {
                id: towers.len(),
                position,
                address,
                kind_truth: kind,
                zone_id,
            });
        }
    }

    // --- bounds --------------------------------------------------
    let mut bounds = BoundingBox::empty();
    for t in &towers {
        bounds.include(&t.position);
    }
    for z in &zones {
        bounds.include(&z.center);
    }

    Ok(City {
        zones,
        towers,
        poi_index: PoiIndex::build(pois),
        bounds,
        center: config.center,
        comprehensive_blend: config.comprehensive_blend,
    })
}

/// Largest-remainder apportionment of `total` items to `shares`.
fn apportion(total: usize, shares: &[f64; 5]) -> [usize; 5] {
    let mut counts = [0usize; 5];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(5);
    let mut assigned = 0;
    for (i, &s) in shares.iter().enumerate() {
        let exact = s * total as f64;
        counts[i] = exact.floor() as usize;
        assigned += counts[i];
        remainders.push((i, exact - exact.floor()));
    }
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut left = total - assigned;
    for (i, _) in remainders {
        if left == 0 {
            break;
        }
        counts[i] += 1;
        left -= 1;
    }
    counts
}

/// Samples a zone centre according to the kind's radial law.
fn place_zone(rng: &mut StdRng, kind: RegionKind, config: &CityConfig) -> GeoPoint {
    let r_max = config.radius_m;
    let (radius, angle) = match kind {
        RegionKind::Office => (
            (normal(rng) * 0.18 * r_max).abs().min(r_max),
            uniform_angle(rng),
        ),
        RegionKind::Entertainment => (
            (normal(rng) * 0.30 * r_max).abs().min(r_max),
            uniform_angle(rng),
        ),
        RegionKind::Resident => {
            let r = 0.55 * r_max + normal(rng) * 0.15 * r_max;
            (r.clamp(0.05 * r_max, r_max), uniform_angle(rng))
        }
        RegionKind::Transport => {
            // Snap to one of 6 radial corridors, jittered.
            let corridor = rng.gen_range(0..6) as f64;
            let angle = corridor * std::f64::consts::TAU / 6.0 + normal(rng) * 0.05;
            let r = rng.gen_range(0.05..0.9) * r_max;
            (r, angle)
        }
        RegionKind::Comprehensive => {
            // Uniform over the disc: r ∝ sqrt(u).
            let u: f64 = rng.gen_range(0.0..1.0);
            (u.sqrt() * r_max, uniform_angle(rng))
        }
    };
    config
        .center
        .offset_m(radius * angle.cos(), radius * angle.sin())
}

fn uniform_angle(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..std::f64::consts::TAU)
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Poisson sample. Knuth's product method for small means; for large
/// means a normal approximation keeps it O(1).
fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let v = mean + mean.sqrt() * normal(rng);
        return v.round().max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numeric safety valve; unreachable for mean ≤ 30
        }
    }
}

/// Uniform point in a disc around `center`.
fn scatter_in_disc(rng: &mut StdRng, center: &GeoPoint, radius_m: f64) -> GeoPoint {
    let u: f64 = rng.gen_range(0.0..1.0);
    let r = u.sqrt() * radius_m;
    let a = uniform_angle(rng);
    center.offset_m(r * a.cos(), r * a.sin())
}

/// Street-name pool for synthetic addresses.
const STREET_NAMES: [&str; 12] = [
    "Nanjing Rd",
    "Huaihai Rd",
    "Century Ave",
    "Zhongshan Rd",
    "Renmin Ave",
    "Fuxing Rd",
    "Yanan Rd",
    "Beijing Rd",
    "Sichuan Rd",
    "Henan Rd",
    "Xizang Rd",
    "Changning Rd",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&CityConfig::tiny(5)).unwrap();
        let b = generate(&CityConfig::tiny(5)).unwrap();
        assert_eq!(a.towers().len(), b.towers().len());
        for (x, y) in a.towers().iter().zip(b.towers()) {
            assert_eq!(x.position.lon, y.position.lon);
            assert_eq!(x.address, y.address);
            assert_eq!(x.kind_truth, y.kind_truth);
        }
        assert_eq!(a.pois().len(), b.pois().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CityConfig::tiny(1)).unwrap();
        let b = generate(&CityConfig::tiny(2)).unwrap();
        let same = a
            .towers()
            .iter()
            .zip(b.towers())
            .filter(|(x, y)| x.position.lon == y.position.lon)
            .count();
        assert!(same < a.towers().len() / 2);
    }

    #[test]
    fn tower_count_and_shares_match_config() {
        let cfg = CityConfig::small(3);
        let city = generate(&cfg).unwrap();
        assert_eq!(city.towers().len(), cfg.n_towers);
        let shares: Vec<f64> = RegionKind::ALL
            .iter()
            .map(|&k| city.towers_of_kind(k).len() as f64 / cfg.n_towers as f64)
            .collect();
        for (got, want) in shares.iter().zip(&cfg.region_shares) {
            assert!(
                (got - want).abs() < 0.01,
                "share mismatch: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn offices_are_more_central_than_residences() {
        let cfg = CityConfig::small(11);
        let city = generate(&cfg).unwrap();
        let mean_r = |kind: RegionKind| {
            let ids = city.towers_of_kind(kind);
            ids.iter()
                .map(|&id| city.towers()[id].position.distance_m(&cfg.center))
                .sum::<f64>()
                / ids.len() as f64
        };
        assert!(
            mean_r(RegionKind::Office) < mean_r(RegionKind::Resident),
            "office {} vs resident {}",
            mean_r(RegionKind::Office),
            mean_r(RegionKind::Resident)
        );
    }

    #[test]
    fn poi_composition_reflects_zone_kind() {
        let city = generate(&CityConfig::small(13)).unwrap();
        // Aggregate POI counts near towers of each pure kind; the
        // native type should dominate for office/entertainment/
        // resident (transport is rare in absolute terms by design).
        for kind in [
            RegionKind::Office,
            RegionKind::Entertainment,
            RegionKind::Resident,
        ] {
            let native = kind.native_poi().unwrap().index();
            let mut totals = [0usize; 4];
            for id in city.towers_of_kind(kind) {
                let c = city.poi_counts_near_tower(id, 200.0).unwrap();
                for (t, v) in totals.iter_mut().zip(&c) {
                    *t += v;
                }
            }
            let max_idx = (0..4).max_by_key(|&i| totals[i]).unwrap();
            assert_eq!(max_idx, native, "{kind:?}: {totals:?}");
        }
    }

    #[test]
    fn apportion_is_exact() {
        let counts = apportion(9_600, &crate::config::PAPER_TABLE1_SHARES);
        assert_eq!(counts.iter().sum::<usize>(), 9_600);
        // Office is the biggest bucket, transport the smallest.
        assert!(counts[2] > counts[4]);
        assert!(counts[1] < counts[3]);
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(99);
        for mean in [0.5, 3.0, 12.0, 80.0] {
            let n = 3_000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let got = total as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean.max(1.0) * 0.1,
                "mean {mean}: got {got}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn normal_has_zero_mean_unit_sd() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn addresses_follow_block_convention() {
        let city = generate(&CityConfig::tiny(21)).unwrap();
        for t in city.towers() {
            let resolved = GeoPoint::from_block_address(&t.address)
                .unwrap_or_else(|| panic!("bad address {:?}", t.address));
            assert!(t.position.distance_m(&resolved) < 160.0);
        }
    }

    #[test]
    fn invalid_config_propagates() {
        let mut cfg = CityConfig::tiny(0);
        cfg.n_towers = 0;
        assert!(matches!(generate(&cfg), Err(CityError::NoTowers)));
    }
}
