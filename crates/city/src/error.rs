//! Error types for the synthetic-city substrate.

/// Errors produced when generating or querying the synthetic city.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CityError {
    /// Configuration requested zero towers.
    NoTowers,
    /// Configuration requested a non-positive city extent.
    BadExtent,
    /// A share vector did not sum to (approximately) one.
    BadShares,
    /// A query referenced a tower index that doesn't exist.
    UnknownTower {
        /// The offending index.
        index: usize,
        /// Number of towers in the city.
        count: usize,
    },
}

impl std::fmt::Display for CityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CityError::NoTowers => write!(f, "configuration requests zero towers"),
            CityError::BadExtent => write!(f, "city extent must be positive"),
            CityError::BadShares => write!(f, "region shares must sum to 1"),
            CityError::UnknownTower { index, count } => {
                write!(f, "tower index {index} out of range ({count} towers)")
            }
        }
    }
}

impl std::error::Error for CityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CityError::UnknownTower {
            index: 10_000,
            count: 9_600,
        };
        assert!(e.to_string().contains("10000"));
    }
}
