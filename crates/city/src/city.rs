//! The assembled synthetic city and its query API.

use serde::{Deserialize, Serialize};

use crate::error::CityError;
use crate::geo::{BoundingBox, GeoPoint};
use crate::poi::PoiIndex;
use crate::zone::{RegionKind, Zone};

/// A cellular tower.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tower {
    /// Tower id (index into the city's tower list; doubles as the
    /// `cell_id` of traffic logs).
    pub id: usize,
    /// Geographic position.
    pub position: GeoPoint,
    /// Free-text address, `BLK-i-j <street>` convention — what the
    /// synthetic geocoder resolves back to coordinates.
    pub address: String,
    /// Ground-truth region kind of the zone the tower is seated in.
    /// The analysis pipeline never reads this; it exists to *score*
    /// the pipeline's output.
    pub kind_truth: RegionKind,
    /// Id of the seating zone.
    pub zone_id: usize,
}

/// The synthetic city: zones, POIs (indexed), and towers.
#[derive(Debug, Clone)]
pub struct City {
    pub(crate) zones: Vec<Zone>,
    pub(crate) towers: Vec<Tower>,
    pub(crate) poi_index: PoiIndex,
    pub(crate) bounds: BoundingBox,
    pub(crate) center: GeoPoint,
    pub(crate) comprehensive_blend: [f64; 4],
}

impl City {
    /// Reassembles a city from its parts — the inverse of the
    /// accessors, used by checkpoint codecs that persist a generated
    /// city and reload it bit-identically. `bounds` is recomputed from
    /// towers and zones (same rule as generation) so a caller cannot
    /// introduce an inconsistent box.
    pub fn from_parts(
        zones: Vec<Zone>,
        towers: Vec<Tower>,
        poi_index: PoiIndex,
        center: GeoPoint,
        comprehensive_blend: [f64; 4],
    ) -> Self {
        let mut bounds = BoundingBox::empty();
        for t in &towers {
            bounds.include(&t.position);
        }
        for z in &zones {
            bounds.include(&z.center);
        }
        City {
            zones,
            towers,
            poi_index,
            bounds,
            center,
            comprehensive_blend,
        }
    }

    /// The functional zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The towers, ordered by id.
    pub fn towers(&self) -> &[Tower] {
        &self.towers
    }

    /// The POI index.
    pub fn pois(&self) -> &PoiIndex {
        &self.poi_index
    }

    /// Bounding box containing every tower and zone.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    /// The configured city centre.
    pub fn center(&self) -> GeoPoint {
        self.center
    }

    /// The configured comprehensive-zone function blend (canonical
    /// [`crate::zone::PoiKind`] order).
    pub fn comprehensive_blend(&self) -> [f64; 4] {
        self.comprehensive_blend
    }

    /// A tower by id.
    ///
    /// # Errors
    /// [`CityError::UnknownTower`] for an out-of-range id.
    pub fn tower(&self, id: usize) -> Result<&Tower, CityError> {
        self.towers.get(id).ok_or(CityError::UnknownTower {
            index: id,
            count: self.towers.len(),
        })
    }

    /// POI counts of the four kinds within `radius_m` of a tower
    /// (canonical [`crate::zone::PoiKind`] order). The paper uses
    /// 200 m.
    ///
    /// # Errors
    /// [`CityError::UnknownTower`].
    pub fn poi_counts_near_tower(
        &self,
        tower_id: usize,
        radius_m: f64,
    ) -> Result<[usize; 4], CityError> {
        let t = self.tower(tower_id)?;
        Ok(self.poi_index.counts_within(&t.position, radius_m))
    }

    /// The ground-truth *function mixture* at a point: the share of
    /// each of the four pure urban functions in the neighbourhood,
    /// derived from surrounding zones with a distance kernel.
    ///
    /// This is what drives the synthetic traffic model: a tower deep
    /// inside an office zone gets mixture ≈ (0,0,1,0); a tower in a
    /// comprehensive area gets a genuine blend. The §5.3 convex
    /// decomposition is validated against this vector (via POI
    /// NTF-IDF, as the paper does).
    ///
    /// Kernel: each zone within `3·radius` contributes
    /// `exp(−(d/(0.7·radius))²)` to its kind; comprehensive zones
    /// contribute `1.2·w` split across the configured
    /// [`comprehensive blend`](crate::config::CityConfig::comprehensive_blend)
    /// (slightly more than a pure zone in total — mixed-use areas are
    /// denser). Normalised to sum to 1; an isolated point far from
    /// every zone returns the uniform mixture.
    pub fn function_mix(&self, point: &GeoPoint) -> [f64; 4] {
        let mut mix = [0.0f64; 4];
        for zone in &self.zones {
            let d = zone.center.distance_m(point);
            let scale = (0.7 * zone.radius_m).max(1.0);
            if d > 3.0 * zone.radius_m {
                continue;
            }
            let w = (-(d / scale) * (d / scale)).exp();
            match zone.kind {
                RegionKind::Comprehensive => {
                    for (m, b) in mix.iter_mut().zip(&self.comprehensive_blend) {
                        *m += w * 1.2 * b;
                    }
                }
                kind => {
                    let poi = kind.native_poi().expect("pure kind");
                    mix[poi.index()] += w;
                }
            }
        }
        let total: f64 = mix.iter().sum();
        if total <= 0.0 {
            return [0.25; 4];
        }
        for m in mix.iter_mut() {
            *m /= total;
        }
        mix
    }

    /// Function mixture at a tower.
    ///
    /// # Errors
    /// [`CityError::UnknownTower`].
    pub fn tower_function_mix(&self, tower_id: usize) -> Result<[f64; 4], CityError> {
        let t = self.tower(tower_id)?;
        Ok(self.function_mix(&t.position))
    }

    /// Tower ids whose ground-truth kind matches `kind`.
    pub fn towers_of_kind(&self, kind: RegionKind) -> Vec<usize> {
        self.towers
            .iter()
            .filter(|t| t.kind_truth == kind)
            .map(|t| t.id)
            .collect()
    }

    /// A rectangular case-study window (Fig 8): returns the zones and
    /// towers intersecting a `half_extent_m` square around `center`.
    pub fn window(&self, center: &GeoPoint, half_extent_m: f64) -> (Vec<&Zone>, Vec<&Tower>) {
        let zones = self
            .zones
            .iter()
            .filter(|z| z.center.distance_m(center) <= half_extent_m + z.radius_m)
            .collect();
        let towers = self
            .towers
            .iter()
            .filter(|t| {
                let north_south = t
                    .position
                    .distance_m(&GeoPoint::new(t.position.lon, center.lat));
                let east_west = t
                    .position
                    .distance_m(&GeoPoint::new(center.lon, t.position.lat));
                north_south <= half_extent_m && east_west <= half_extent_m
            })
            .collect();
        (zones, towers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CityConfig;
    use crate::generate::generate;

    fn city() -> City {
        generate(&CityConfig::tiny(7)).unwrap()
    }

    #[test]
    fn tower_lookup_bounds_checked() {
        let c = city();
        assert!(c.tower(0).is_ok());
        assert!(matches!(
            c.tower(9_999),
            Err(CityError::UnknownTower { .. })
        ));
    }

    #[test]
    fn function_mix_is_a_distribution() {
        let c = city();
        for t in c.towers().iter().take(20) {
            let mix = c.function_mix(&t.position);
            let sum: f64 = mix.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(mix.iter().all(|&m| m >= 0.0));
        }
    }

    #[test]
    fn isolated_point_gets_uniform_mix() {
        let c = city();
        let far = GeoPoint::new(100.0, 10.0);
        assert_eq!(c.function_mix(&far), [0.25; 4]);
    }

    #[test]
    fn pure_zone_towers_have_dominant_native_function() {
        let c = city();
        // Office towers: office share should usually dominate.
        let ids = c.towers_of_kind(RegionKind::Office);
        assert!(!ids.is_empty());
        let mut dominant = 0;
        for &id in &ids {
            let mix = c.tower_function_mix(id).unwrap();
            let max_idx = (0..4)
                .max_by(|&a, &b| mix[a].partial_cmp(&mix[b]).unwrap())
                .unwrap();
            if max_idx == 2 {
                dominant += 1;
            }
        }
        assert!(
            dominant * 2 > ids.len(),
            "only {dominant}/{} office towers office-dominant",
            ids.len()
        );
    }

    #[test]
    fn from_parts_reproduces_the_generated_city() {
        let c = city();
        let rebuilt = City::from_parts(
            c.zones().to_vec(),
            c.towers().to_vec(),
            PoiIndex::build(c.pois().pois().to_vec()),
            c.center(),
            c.comprehensive_blend(),
        );
        assert_eq!(rebuilt.bounds().min_lon, c.bounds().min_lon);
        assert_eq!(rebuilt.bounds().max_lat, c.bounds().max_lat);
        assert_eq!(rebuilt.towers().len(), c.towers().len());
        for t in c.towers().iter().take(10) {
            assert_eq!(
                rebuilt.function_mix(&t.position),
                c.function_mix(&t.position)
            );
            assert_eq!(
                rebuilt.poi_index.counts_within(&t.position, 200.0),
                c.poi_index.counts_within(&t.position, 200.0)
            );
        }
    }

    #[test]
    fn window_returns_nearby_entities() {
        let c = city();
        let center = c.center();
        let (zones, towers) = c.window(&center, 4_000.0);
        assert!(!zones.is_empty());
        assert!(!towers.is_empty());
        for t in towers {
            assert!(t.position.distance_m(&center) <= 4_000.0 * 1.5);
        }
    }
}
