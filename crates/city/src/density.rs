//! A raster of values over the city — used for the spatial traffic
//! density of Fig 2 (bytes per km²) and the per-cluster tower density
//! maps of Fig 7.

use serde::{Deserialize, Serialize};

use crate::geo::{BoundingBox, GeoPoint};

/// A uniform raster over a bounding box accumulating point weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityGrid {
    bounds: BoundingBox,
    cols: usize,
    rows: usize,
    cells: Vec<f64>,
}

impl DensityGrid {
    /// Creates an all-zero grid of `cols × rows` cells over `bounds`.
    /// Degenerate inputs (zero dimension or inverted bounds) fall back
    /// to a 1×1 grid so accumulation never panics.
    pub fn new(bounds: BoundingBox, cols: usize, rows: usize) -> Self {
        let cols = cols.max(1);
        let rows = rows.max(1);
        DensityGrid {
            bounds,
            cols,
            rows,
            cells: vec![0.0; cols * rows],
        }
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The bounding box the grid covers.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    /// Cell index of a point, if inside the bounds.
    pub fn cell_of(&self, p: &GeoPoint) -> Option<(usize, usize)> {
        if !self.bounds.contains(p) {
            return None;
        }
        let (w, h) = self.bounds.span();
        if w <= 0.0 || h <= 0.0 {
            return Some((0, 0));
        }
        let col = (((p.lon - self.bounds.min_lon) / w) * self.cols as f64) as usize;
        let row = (((p.lat - self.bounds.min_lat) / h) * self.rows as f64) as usize;
        Some((col.min(self.cols - 1), row.min(self.rows - 1)))
    }

    /// Adds `weight` at a point (no-op outside the bounds).
    pub fn add(&mut self, p: &GeoPoint, weight: f64) {
        if let Some((c, r)) = self.cell_of(p) {
            self.cells[r * self.cols + c] += weight;
        }
    }

    /// Raw accumulated value of a cell.
    pub fn get(&self, col: usize, row: usize) -> f64 {
        if col < self.cols && row < self.rows {
            self.cells[row * self.cols + col]
        } else {
            0.0
        }
    }

    /// The grid normalised to per-km² densities (each cell divided by
    /// its area).
    pub fn to_density_per_km2(&self) -> Vec<f64> {
        let total_area = self.bounds.area_km2();
        let cell_area = if total_area > 0.0 {
            total_area / (self.cols * self.rows) as f64
        } else {
            1.0
        };
        self.cells.iter().map(|&v| v / cell_area).collect()
    }

    /// Sum over all cells.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// The cell with the largest value, as `(col, row, value)`.
    pub fn argmax(&self) -> (usize, usize, f64) {
        let mut best = (0, 0, f64::NEG_INFINITY);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.cells[r * self.cols + c];
                if v > best.2 {
                    best = (c, r, v);
                }
            }
        }
        best
    }

    /// Geographic centre of a cell.
    pub fn cell_center(&self, col: usize, row: usize) -> GeoPoint {
        let (w, h) = self.bounds.span();
        GeoPoint {
            lon: self.bounds.min_lon + (col as f64 + 0.5) * w / self.cols as f64,
            lat: self.bounds.min_lat + (row as f64 + 0.5) * h / self.rows as f64,
        }
    }

    /// Renders the grid as a coarse ASCII heat map (for the repro
    /// harness's textual "figures"). `levels` maps quantile buckets to
    /// characters, dark to bright.
    pub fn ascii_heatmap(&self, levels: &str) -> String {
        let glyphs: Vec<char> = if levels.is_empty() {
            " .:-=+*#%@".chars().collect()
        } else {
            levels.chars().collect()
        };
        let max = self.cells.iter().cloned().fold(0.0f64, f64::max);
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        // Render north-up.
        for r in (0..self.rows).rev() {
            for c in 0..self.cols {
                let v = self.cells[r * self.cols + c];
                let idx = if max > 0.0 {
                    (((v / max).sqrt() * (glyphs.len() - 1) as f64).round() as usize)
                        .min(glyphs.len() - 1)
                } else {
                    0
                };
                out.push(glyphs[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> BoundingBox {
        BoundingBox {
            min_lon: 121.0,
            max_lon: 122.0,
            min_lat: 31.0,
            max_lat: 32.0,
        }
    }

    #[test]
    fn accumulates_in_right_cell() {
        let mut g = DensityGrid::new(bounds(), 10, 10);
        g.add(&GeoPoint::new(121.05, 31.05), 2.0);
        g.add(&GeoPoint::new(121.05, 31.05), 3.0);
        g.add(&GeoPoint::new(121.95, 31.95), 7.0);
        assert_eq!(g.get(0, 0), 5.0);
        assert_eq!(g.get(9, 9), 7.0);
        assert_eq!(g.total(), 12.0);
    }

    #[test]
    fn out_of_bounds_ignored() {
        let mut g = DensityGrid::new(bounds(), 4, 4);
        g.add(&GeoPoint::new(120.0, 31.5), 1.0);
        g.add(&GeoPoint::new(121.5, 30.0), 1.0);
        assert_eq!(g.total(), 0.0);
    }

    #[test]
    fn edge_points_clamp_to_last_cell() {
        let mut g = DensityGrid::new(bounds(), 4, 4);
        g.add(&GeoPoint::new(122.0, 32.0), 1.0);
        assert_eq!(g.get(3, 3), 1.0);
    }

    #[test]
    fn argmax_finds_hotspot() {
        let mut g = DensityGrid::new(bounds(), 5, 5);
        g.add(&GeoPoint::new(121.5, 31.5), 10.0);
        g.add(&GeoPoint::new(121.1, 31.1), 3.0);
        let (c, r, v) = g.argmax();
        assert_eq!((c, r), (2, 2));
        assert_eq!(v, 10.0);
        let center = g.cell_center(c, r);
        assert!((center.lon - 121.5).abs() < 0.1);
    }

    #[test]
    fn density_normalisation() {
        let mut g = DensityGrid::new(bounds(), 2, 2);
        g.add(&GeoPoint::new(121.25, 31.25), 100.0);
        let density = g.to_density_per_km2();
        let cell_area = g.bounds().area_km2() / 4.0;
        assert!((density[0] - 100.0 / cell_area).abs() < 1e-9);
    }

    #[test]
    fn ascii_heatmap_shape_and_extremes() {
        let mut g = DensityGrid::new(bounds(), 6, 3);
        g.add(&GeoPoint::new(121.9, 31.9), 9.0);
        let art = g.ascii_heatmap("");
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 6));
        // Hotspot is top-right (north-up rendering).
        assert_eq!(lines[0].chars().last(), Some('@'));
        // An empty grid renders without panicking.
        let empty = DensityGrid::new(bounds(), 2, 2).ascii_heatmap("ab");
        assert_eq!(empty, "aa\naa\n");
    }

    #[test]
    fn degenerate_dimensions_fall_back() {
        let g = DensityGrid::new(bounds(), 0, 0);
        assert_eq!(g.shape(), (1, 1));
    }
}
