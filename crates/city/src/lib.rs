//! # towerlens-city
//!
//! Synthetic urban environment: the substitution for the paper's
//! proprietary Shanghai ground truth (tower locations, urban
//! functional regions, and the Baidu-Map POI layer).
//!
//! The generator encodes only *mechanisms* the paper attributes
//! structure to — not the findings themselves:
//!
//! * a monocentric city: office zones concentrate downtown,
//!   entertainment rings the centre, residential zones sit on the
//!   outskirts, transport hubs line radial corridors, and
//!   comprehensive (mixed-function) zones scatter uniformly;
//! * each zone carries a Poisson POI population whose per-type
//!   intensities depend on the zone kind (calibrated to the *relative*
//!   magnitudes of the paper's Table 2);
//! * cellular towers are seated in zones with the paper's Table 1
//!   mixture as the default prior, positioned with Gaussian scatter.
//!
//! Whether the analysis pipeline then re-discovers five traffic
//! patterns, the POI dominance diagonal of Table 3, or the convex
//! mixture structure of Table 6 is a genuine property of the *method*,
//! because the traffic model (in `towerlens-mobility`) consumes only
//! the zone mixture around each tower, never its cluster label.
//!
//! Everything is deterministic given [`CityConfig::seed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod city;
pub mod config;
pub mod density;
pub mod error;
pub mod generate;
pub mod geo;
pub mod poi;
pub mod zone;

pub use city::{City, Tower};
pub use config::CityConfig;
pub use density::DensityGrid;
pub use error::CityError;
pub use geo::{BoundingBox, GeoPoint};
pub use poi::{Poi, PoiIndex};
pub use zone::{PoiKind, RegionKind, Zone};
