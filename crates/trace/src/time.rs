//! The trace calendar: 10-minute bins over a four-week window.
//!
//! The paper's trace covers Aug 1–31 2014 (Aug 1 was a **Friday**);
//! the analysis drops 3 days "to make the duration consist of four
//! entire weeks", i.e. Mon Aug 4 00:00 through Sun Aug 31 24:00 —
//! 28 days × 144 ten-minute bins = 4,032 samples. All timestamps in
//! this workspace are seconds since the *trace epoch* (Aug 1 00:00
//! local), so the window simply starts at `3 × 86400`.

use serde::{Deserialize, Serialize};

/// Seconds per aggregation bin (10 minutes).
pub const BIN_SECS: u64 = 600;
/// Bins per day.
pub const BINS_PER_DAY: usize = 144;
/// Days in the analysis window (four full weeks).
pub const WINDOW_DAYS: usize = 28;
/// Total bins in the analysis window (the paper's `N = 4032`).
pub const N_BINS: usize = WINDOW_DAYS * BINS_PER_DAY;
/// Seconds per day.
pub const DAY_SECS: u64 = 86_400;
/// Offset of the window start from the trace epoch: Aug 1 (Fri) →
/// Aug 4 (Mon) is 3 days.
pub const WINDOW_START_S: u64 = 3 * DAY_SECS;

/// A binning window: `n_bins` bins of `bin_secs` starting at
/// `start_s` (seconds since trace epoch). Day 0 of the window is a
/// Monday, so `dow == 5 | 6` means weekend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceWindow {
    /// Window start, seconds since trace epoch.
    pub start_s: u64,
    /// Bin width in seconds.
    pub bin_secs: u64,
    /// Number of bins.
    pub n_bins: usize,
}

impl TraceWindow {
    /// The paper's window: 4,032 ten-minute bins starting Mon Aug 4.
    ///
    /// ```
    /// use towerlens_trace::TraceWindow;
    ///
    /// let window = TraceWindow::paper();
    /// assert_eq!(window.n_bins, 4_032);
    /// assert!(!window.is_weekend_bin(0));        // Monday
    /// assert!(window.is_weekend_bin(5 * 144));   // Saturday
    /// ```
    pub fn paper() -> Self {
        TraceWindow {
            start_s: WINDOW_START_S,
            bin_secs: BIN_SECS,
            n_bins: N_BINS,
        }
    }

    /// A shortened window of `days` full days (used by tests and the
    /// fast examples). Day 0 is still a Monday.
    pub fn days(days: usize) -> Self {
        TraceWindow {
            start_s: WINDOW_START_S,
            bin_secs: BIN_SECS,
            n_bins: days * BINS_PER_DAY,
        }
    }

    /// Window end (exclusive), seconds since trace epoch.
    pub fn end_s(&self) -> u64 {
        self.start_s + self.bin_secs * self.n_bins as u64
    }

    /// The bin containing the timestamp, if inside the window.
    pub fn bin_of(&self, t_s: u64) -> Option<usize> {
        if t_s < self.start_s || t_s >= self.end_s() {
            return None;
        }
        Some(((t_s - self.start_s) / self.bin_secs) as usize)
    }

    /// Start timestamp of a bin (seconds since trace epoch).
    pub fn bin_start(&self, bin: usize) -> u64 {
        self.start_s + self.bin_secs * bin as u64
    }

    /// Calls `f(bin, overlap_fraction)` for every bin overlapping the
    /// half-open interval `[start_s, end_s)`, where `overlap_fraction`
    /// is the share of the interval falling in that bin. Intervals
    /// partially outside the window contribute only their inside part;
    /// a zero-length interval maps fully to its containing bin. This
    /// is the allocation rule the vectorizer uses to spread a
    /// connection's bytes across bins.
    pub fn for_each_overlap<F: FnMut(usize, f64)>(&self, start_s: u64, end_s: u64, mut f: F) {
        if end_s < start_s || self.n_bins == 0 {
            return;
        }
        if start_s == end_s {
            if let Some(bin) = self.bin_of(start_s) {
                f(bin, 1.0);
            }
            return;
        }
        let total = (end_s - start_s) as f64;
        let lo = start_s.max(self.start_s);
        let hi = end_s.min(self.end_s());
        if lo >= hi {
            return;
        }
        let first = ((lo - self.start_s) / self.bin_secs) as usize;
        let last = ((hi - 1 - self.start_s) / self.bin_secs) as usize;
        for bin in first..=last.min(self.n_bins - 1) {
            let b_start = self.bin_start(bin);
            let b_end = b_start + self.bin_secs;
            let overlap = (hi.min(b_end) - lo.max(b_start)) as f64;
            if overlap > 0.0 {
                f(bin, overlap / total);
            }
        }
    }

    /// Day index (0-based, day 0 = Monday) of a bin.
    pub fn day_of_bin(&self, bin: usize) -> usize {
        (bin as u64 * self.bin_secs / DAY_SECS) as usize
    }

    /// Day-of-week of a bin: 0 = Monday … 6 = Sunday.
    pub fn dow_of_bin(&self, bin: usize) -> usize {
        self.day_of_bin(bin) % 7
    }

    /// Whether a bin falls on a weekend (Saturday/Sunday).
    pub fn is_weekend_bin(&self, bin: usize) -> bool {
        self.dow_of_bin(bin) >= 5
    }

    /// Time of day of a bin start, as `(hour, minute)`.
    pub fn time_of_day(&self, bin: usize) -> (u32, u32) {
        let day_offset = (self.bin_start(bin) - self.start_s) % DAY_SECS;
        (
            (day_offset / 3600) as u32,
            ((day_offset % 3600) / 60) as u32,
        )
    }

    /// Bin index within its day (`0..BINS_PER_DAY` for 10-minute
    /// bins).
    pub fn bin_in_day(&self, bin: usize) -> usize {
        let per_day = (DAY_SECS / self.bin_secs) as usize;
        bin % per_day
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_constants() {
        let w = TraceWindow::paper();
        assert_eq!(w.n_bins, 4_032);
        assert_eq!(w.start_s, 259_200);
        assert_eq!(w.end_s(), 259_200 + 28 * 86_400);
    }

    #[test]
    fn bin_of_boundaries() {
        let w = TraceWindow::paper();
        assert_eq!(w.bin_of(w.start_s), Some(0));
        assert_eq!(w.bin_of(w.start_s + 599), Some(0));
        assert_eq!(w.bin_of(w.start_s + 600), Some(1));
        assert_eq!(w.bin_of(w.start_s - 1), None);
        assert_eq!(w.bin_of(w.end_s()), None);
        assert_eq!(w.bin_of(w.end_s() - 1), Some(4_031));
    }

    #[test]
    fn overlap_fractions_sum_to_inside_share() {
        let w = TraceWindow::paper();
        // A 30-minute connection crossing three bins: 5 + 10 + 15 min.
        let start = w.start_s + 300; // 5 min into bin 0
        let end = start + 1_800;
        let mut parts = Vec::new();
        w.for_each_overlap(start, end, |bin, frac| parts.push((bin, frac)));
        assert_eq!(parts.len(), 4); // 5' in b0, 10' b1, 10' b2, 5' b3
        let total: f64 = parts.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((parts[0].1 - 300.0 / 1800.0).abs() < 1e-12);
        assert!((parts[1].1 - 600.0 / 1800.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_clips_to_window() {
        let w = TraceWindow::paper();
        // Starts 10 minutes before the window.
        let start = w.start_s - 600;
        let end = w.start_s + 600;
        let mut parts = Vec::new();
        w.for_each_overlap(start, end, |bin, frac| parts.push((bin, frac)));
        assert_eq!(parts, vec![(0, 0.5)]);
        // Entirely outside.
        let mut none = Vec::new();
        w.for_each_overlap(0, 100, |b, f| none.push((b, f)));
        assert!(none.is_empty());
    }

    #[test]
    fn zero_length_connection_lands_in_one_bin() {
        let w = TraceWindow::paper();
        let t = w.start_s + 12_345;
        let mut parts = Vec::new();
        w.for_each_overlap(t, t, |bin, frac| parts.push((bin, frac)));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1, 1.0);
        assert_eq!(Some(parts[0].0), w.bin_of(t));
    }

    #[test]
    fn reversed_interval_is_ignored() {
        let w = TraceWindow::paper();
        let mut called = false;
        w.for_each_overlap(w.start_s + 100, w.start_s, |_, _| called = true);
        assert!(!called);
    }

    #[test]
    fn calendar_weekday_weekend() {
        let w = TraceWindow::paper();
        // Bin 0 is Monday 00:00.
        assert_eq!(w.dow_of_bin(0), 0);
        assert!(!w.is_weekend_bin(0));
        // Day 5 (Saturday) and 6 (Sunday) are weekend.
        assert!(w.is_weekend_bin(5 * BINS_PER_DAY));
        assert!(w.is_weekend_bin(6 * BINS_PER_DAY + 143));
        // Day 7 is Monday again.
        assert!(!w.is_weekend_bin(7 * BINS_PER_DAY));
        // The window has exactly 8 weekend days.
        let weekend_days = (0..w.n_bins)
            .step_by(BINS_PER_DAY)
            .filter(|&b| w.is_weekend_bin(b))
            .count();
        assert_eq!(weekend_days, 8);
    }

    #[test]
    fn time_of_day_arithmetic() {
        let w = TraceWindow::paper();
        assert_eq!(w.time_of_day(0), (0, 0));
        assert_eq!(w.time_of_day(6 * 7), (7, 0)); // 42 bins = 7h
        assert_eq!(w.time_of_day(BINS_PER_DAY - 1), (23, 50));
        assert_eq!(w.time_of_day(BINS_PER_DAY), (0, 0)); // next day
        assert_eq!(w.bin_in_day(BINS_PER_DAY + 3), 3);
    }

    #[test]
    fn shortened_window() {
        let w = TraceWindow::days(7);
        assert_eq!(w.n_bins, 1_008);
        assert_eq!(w.day_of_bin(w.n_bins - 1), 6);
    }
}
