//! Reference log-to-vector aggregation.
//!
//! Converts a batch of connection records into per-tower traffic
//! vectors over a [`TraceWindow`]: each record's bytes are spread
//! across the bins its connection overlaps, proportional to overlap
//! duration. This single-threaded implementation defines the
//! semantics; `towerlens-pipeline` reimplements it in parallel and is
//! tested for bit-equality against this one.

use crate::error::TraceError;
use crate::record::LogRecord;
use crate::time::TraceWindow;

/// Aggregates records into an `n_towers × window.n_bins` matrix of
/// bytes (`f64` because proportional allocation splits bytes
/// fractionally).
///
/// Records referencing unknown cells are rejected — a corrupted cell
/// id silently mis-attributing traffic would poison the analysis.
///
/// # Errors
/// * [`TraceError::EmptyWindow`] for a zero-bin window,
/// * [`TraceError::UnknownCell`] for an out-of-range `cell_id`.
pub fn aggregate(
    records: &[LogRecord],
    n_towers: usize,
    window: &TraceWindow,
) -> Result<Vec<Vec<f64>>, TraceError> {
    if window.n_bins == 0 || window.bin_secs == 0 {
        return Err(TraceError::EmptyWindow);
    }
    let mut matrix = vec![vec![0.0f64; window.n_bins]; n_towers];
    for r in records {
        let row = matrix
            .get_mut(r.cell_id as usize)
            .ok_or(TraceError::UnknownCell {
                cell_id: r.cell_id,
                count: n_towers,
            })?;
        window.for_each_overlap(r.start_s, r.end_s, |bin, frac| {
            row[bin] += r.bytes as f64 * frac;
        });
    }
    Ok(matrix)
}

/// Sums a per-tower matrix into the city-wide aggregate vector
/// (Fig 1 / Fig 12 operate on this).
pub fn aggregate_total(matrix: &[Vec<f64>]) -> Vec<f64> {
    let n_bins = matrix.first().map(|r| r.len()).unwrap_or(0);
    let mut total = vec![0.0; n_bins];
    for row in matrix {
        for (t, v) in total.iter_mut().zip(row) {
            *t += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{BIN_SECS, WINDOW_START_S};

    fn rec(cell: u32, start: u64, end: u64, bytes: u64) -> LogRecord {
        LogRecord {
            user_id: 1,
            start_s: start,
            end_s: end,
            cell_id: cell,
            address: "BLK-1-1 Rd".into(),
            bytes,
        }
    }

    #[test]
    fn bytes_conserved_inside_window() {
        let w = TraceWindow::paper();
        let records = vec![
            rec(0, w.start_s, w.start_s + 1_800, 3_000),
            rec(1, w.start_s + 50, w.start_s + 650, 600),
        ];
        let m = aggregate(&records, 2, &w).unwrap();
        let sum0: f64 = m[0].iter().sum();
        let sum1: f64 = m[1].iter().sum();
        assert!((sum0 - 3_000.0).abs() < 1e-9);
        assert!((sum1 - 600.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_split_across_bins() {
        let w = TraceWindow::paper();
        // 30 minutes evenly covering bins 0..3.
        let r = rec(0, w.start_s, w.start_s + 3 * BIN_SECS, 900);
        let m = aggregate(&[r], 1, &w).unwrap();
        assert!((m[0][0] - 300.0).abs() < 1e-9);
        assert!((m[0][1] - 300.0).abs() < 1e-9);
        assert!((m[0][2] - 300.0).abs() < 1e-9);
        assert_eq!(m[0][3], 0.0);
    }

    #[test]
    fn traffic_outside_window_dropped() {
        let w = TraceWindow::paper();
        // Entirely before the window (the 3 trimmed days).
        let r = rec(0, 0, WINDOW_START_S - 600, 5_000);
        let m = aggregate(&[r], 1, &w).unwrap();
        assert_eq!(m[0].iter().sum::<f64>(), 0.0);
        // Straddling the start: only the inside half counts.
        let r = rec(0, WINDOW_START_S - 600, WINDOW_START_S + 600, 1_000);
        let m = aggregate(&[r], 1, &w).unwrap();
        assert!((m[0].iter().sum::<f64>() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_cell_rejected() {
        let w = TraceWindow::paper();
        let r = rec(5, w.start_s, w.start_s + 60, 10);
        assert_eq!(
            aggregate(&[r], 2, &w),
            Err(TraceError::UnknownCell {
                cell_id: 5,
                count: 2
            })
        );
    }

    #[test]
    fn empty_window_rejected() {
        let w = TraceWindow {
            start_s: 0,
            bin_secs: 600,
            n_bins: 0,
        };
        assert_eq!(aggregate(&[], 1, &w), Err(TraceError::EmptyWindow));
    }

    #[test]
    fn total_aggregation() {
        let w = TraceWindow::days(1);
        let records = vec![
            rec(0, w.start_s, w.start_s + 600, 100),
            rec(1, w.start_s, w.start_s + 600, 250),
        ];
        let m = aggregate(&records, 2, &w).unwrap();
        let total = aggregate_total(&m);
        assert!((total[0] - 350.0).abs() < 1e-9);
        assert_eq!(aggregate_total(&[]).len(), 0);
    }

    #[test]
    fn zero_duration_connection_counts_fully() {
        let w = TraceWindow::paper();
        let r = rec(0, w.start_s + 100, w.start_s + 100, 77);
        let m = aggregate(&[r], 1, &w).unwrap();
        assert!((m[0][0] - 77.0).abs() < 1e-9);
    }
}
