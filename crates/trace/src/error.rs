//! Error types for the trace substrate.

/// Errors produced by trace parsing and aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A serialized record line had the wrong number of fields.
    BadFieldCount {
        /// Fields found.
        found: usize,
        /// 1-based line number, when known.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// Field name.
        field: &'static str,
        /// 1-based line number, when known.
        line: usize,
    },
    /// A record's end time precedes its start time.
    NegativeDuration {
        /// 1-based line number, when known.
        line: usize,
    },
    /// A record referenced a tower id outside the known range.
    UnknownCell {
        /// The offending cell id.
        cell_id: u32,
        /// Number of towers.
        count: usize,
    },
    /// The binning window is degenerate (zero bins or zero bin width).
    EmptyWindow,
    /// Too many records were quarantined: the bad fraction exceeded
    /// the [`crate::quarantine::FaultPolicy`] threshold and the policy
    /// fails closed.
    QuarantineOverflow {
        /// Records quarantined.
        bad: usize,
        /// Records examined.
        total: usize,
    },
    /// Z-score normalisation of the aggregated matrix failed; the
    /// underlying cause is preserved verbatim.
    Normalization {
        /// The rendered normalisation failure (a `DspError`).
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadFieldCount { found, line } => {
                write!(f, "line {line}: expected 6 fields, found {found}")
            }
            TraceError::BadNumber { field, line } => {
                write!(f, "line {line}: field `{field}` is not a valid number")
            }
            TraceError::NegativeDuration { line } => {
                write!(f, "line {line}: connection ends before it starts")
            }
            TraceError::UnknownCell { cell_id, count } => {
                write!(f, "cell id {cell_id} out of range ({count} towers)")
            }
            TraceError::EmptyWindow => write!(f, "binning window has zero bins"),
            TraceError::QuarantineOverflow { bad, total } => write!(
                f,
                "quarantined {bad} of {total} records ({:.1}%), over the configured bad-fraction \
                 threshold",
                if *total == 0 {
                    0.0
                } else {
                    100.0 * *bad as f64 / *total as f64
                }
            ),
            TraceError::Normalization { message } => {
                write!(f, "normalisation failed: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = TraceError::BadNumber {
            field: "bytes",
            line: 17,
        };
        assert!(e.to_string().contains("bytes"));
        assert!(e.to_string().contains("17"));
    }
}
