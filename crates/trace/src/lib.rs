//! # towerlens-trace
//!
//! The cellular traffic trace substrate: everything between "raw
//! operator logs" and "clean per-tower time series".
//!
//! The paper's dataset is a month of per-connection logs — tuples of
//! *(anonymised device id, start/end time of the data connection, base
//! station id, base station address, bytes used)* — that must be
//! deduplicated, geocoded, and aggregated before any analysis (§2.2).
//! This crate reproduces that layer:
//!
//! * [`record`] — the log-record schema and a line-oriented
//!   serialisation (tab-separated, one record per line),
//! * [`clean`] — redundant/conflicting-log elimination with an audit
//!   report (the paper's first preprocessing step),
//! * [`geocode`] — the Baidu-Map substitute: resolves the synthetic
//!   `BLK-i-j <street>` addresses back to coordinates, with an
//!   injectable failure rate to exercise incomplete-information
//!   handling,
//! * [`time`] — the 10-minute binning calendar: a 28-day window of
//!   4,032 bins ("we remove 3 days from the month to make the duration
//!   consist of four entire weeks"), weekday/weekend arithmetic,
//! * [`binning`] — the reference (single-threaded) log-to-vector
//!   aggregator; `towerlens-pipeline` provides the parallel version
//!   and cross-checks against this one,
//! * [`quarantine`] — tolerance policy for malformed records: bad
//!   lines are quarantined per category instead of aborting, failing
//!   closed only past a configurable bad-fraction threshold,
//! * [`faults`] — a deterministic, seed-driven fault injector
//!   (dropped/duplicated records, clock skew, byte spikes, tower
//!   blackouts, truncated lines/files, bit flips) backing the
//!   robustness test harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod clean;
pub mod error;
pub mod faults;
pub mod geocode;
pub mod quarantine;
pub mod record;
pub mod time;

pub use clean::{clean_records, CleanReport};
pub use error::TraceError;
pub use faults::FaultInjector;
pub use geocode::{GeocodeReport, Geocoder};
pub use quarantine::{parse_lines_policed, FaultPolicy, OverflowAction, QuarantineReport};
pub use record::LogRecord;
pub use time::{TraceWindow, BINS_PER_DAY, BIN_SECS, N_BINS, WINDOW_DAYS};
