//! Deterministic, seed-driven fault injection for robustness tests.
//!
//! The paper's pipeline ran for a month against a live operator feed
//! (§2), where collector hiccups — dropped batches, duplicated
//! retries, truncated flushes, skewed clocks, counter spikes, and
//! whole-tower blackouts — are routine. This module mutates record
//! streams and on-disk checkpoint files to reproduce those failure
//! classes on demand, so every robustness claim in the workspace is
//! exercised by a test rather than asserted in prose.
//!
//! All mutations are driven by a [SplitMix64] generator seeded
//! explicitly: the same seed always yields the same faults, which is
//! what lets `scripts/check.sh` pin its fault-injection pass to fixed
//! seeds.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::record::LogRecord;

/// SplitMix64: a tiny, high-quality, allocation-free generator. It is
/// the workspace's shared seeded RNG — the fault injector here, and
/// the engine supervisor's backoff jitter, both draw from it — so
/// deterministic behaviour is defined by this one implementation, not
/// by whichever `rand` shim the workspace carries.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator; the seed fully determines the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A deterministic fault injector over record streams, serialized
/// dumps, and checkpoint files.
///
/// ```
/// use towerlens_trace::faults::FaultInjector;
/// use towerlens_trace::record::{parse_lines, to_lines, LogRecord};
///
/// let records = vec![LogRecord {
///     user_id: 1, start_s: 100, end_s: 700, cell_id: 0,
///     address: "BLK-1-1 Rd".into(), bytes: 500,
/// }; 20];
/// let mut inj = FaultInjector::new(7);
/// let mut faulty = records.clone();
/// let skewed = inj.skew_clocks(&mut faulty, 0.5);
/// let (ok, bad) = parse_lines(&to_lines(&faulty));
/// assert_eq!(bad.len(), skewed); // skewed clocks fail at parse
/// assert_eq!(ok.len(), records.len() - skewed);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
}

fn clamp01(fraction: f64) -> f64 {
    fraction.clamp(0.0, 1.0)
}

impl FaultInjector {
    /// Creates an injector; the seed fully determines every mutation.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: SplitMix64(seed),
        }
    }

    /// Drops roughly `fraction` of the records (collector losing
    /// batches). Returns the number removed.
    pub fn drop_records(&mut self, records: &mut Vec<LogRecord>, fraction: f64) -> usize {
        let fraction = clamp01(fraction);
        let before = records.len();
        let rng = &mut self.rng;
        records.retain(|_| rng.next_f64() >= fraction);
        before - records.len()
    }

    /// Duplicates roughly `fraction` of the records in place (each
    /// duplicate lands immediately after its original, like a
    /// collection-side retry). Returns the number of copies added.
    pub fn duplicate_records(&mut self, records: &mut Vec<LogRecord>, fraction: f64) -> usize {
        let fraction = clamp01(fraction);
        let mut out = Vec::with_capacity(records.len());
        let mut added = 0;
        for r in records.drain(..) {
            let dup = self.rng.next_f64() < fraction;
            out.push(r.clone());
            if dup {
                out.push(r);
                added += 1;
            }
        }
        *records = out;
        added
    }

    /// Swaps start/end timestamps on roughly `fraction` of the
    /// records with positive duration (a collector whose clock runs
    /// backwards). The mutated records fail parsing with
    /// [`crate::TraceError::NegativeDuration`] after a
    /// serialize/parse round trip. Returns the number skewed.
    pub fn skew_clocks(&mut self, records: &mut [LogRecord], fraction: f64) -> usize {
        let fraction = clamp01(fraction);
        let mut skewed = 0;
        for r in records.iter_mut() {
            if r.end_s > r.start_s && self.rng.next_f64() < fraction {
                std::mem::swap(&mut r.start_s, &mut r.end_s);
                skewed += 1;
            }
        }
        skewed
    }

    /// Multiplies the byte counter of roughly `fraction` of the
    /// records by `factor` (saturating) — the classic stuck/overflowed
    /// counter spike. Returns the number spiked.
    pub fn spike_bytes(&mut self, records: &mut [LogRecord], fraction: f64, factor: u64) -> usize {
        let fraction = clamp01(fraction);
        let mut spiked = 0;
        for r in records.iter_mut() {
            if self.rng.next_f64() < fraction {
                r.bytes = r.bytes.saturating_mul(factor);
                spiked += 1;
            }
        }
        spiked
    }

    /// Removes every record of `cell_id` whose connection overlaps
    /// `[start_s, end_s)` — a tower going dark for a window. This one
    /// is fully deterministic (no randomness); it lives here so the
    /// whole fault vocabulary shares one entry point. Returns the
    /// number removed.
    pub fn blackout(
        &mut self,
        records: &mut Vec<LogRecord>,
        cell_id: u32,
        start_s: u64,
        end_s: u64,
    ) -> usize {
        let before = records.len();
        records.retain(|r| r.cell_id != cell_id || r.end_s < start_s || r.start_s >= end_s);
        before - records.len()
    }

    /// Cuts roughly `fraction` of the lines of a serialized dump at a
    /// random character boundary (partial collector flush). Returns
    /// the mutated text and the number of lines truncated.
    pub fn truncate_lines(&mut self, text: &str, fraction: f64) -> (String, usize) {
        let fraction = clamp01(fraction);
        let mut out = String::with_capacity(text.len());
        let mut cut = 0;
        for line in text.lines() {
            if !line.is_empty() && self.rng.next_f64() < fraction {
                let boundaries: Vec<usize> = line.char_indices().map(|(i, _)| i).collect();
                let at = boundaries[self.rng.below(boundaries.len())];
                out.push_str(&line[..at]);
                cut += 1;
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        (out, cut)
    }

    /// Truncates a file to `keep_fraction` of its length (a partial
    /// write caught by a crash). Returns the new length in bytes.
    ///
    /// # Errors
    /// Propagates I/O failures from opening or resizing the file.
    pub fn truncate_file(&mut self, path: &Path, keep_fraction: f64) -> std::io::Result<u64> {
        let keep_fraction = clamp01(keep_fraction);
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        let len = file.metadata()?.len();
        let new_len = (len as f64 * keep_fraction) as u64;
        file.set_len(new_len)?;
        Ok(new_len)
    }

    /// Flips one bit of one byte at a seed-chosen offset (bit rot /
    /// torn sector). Returns the offset flipped.
    ///
    /// # Errors
    /// Propagates I/O failures; an empty file yields
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn flip_byte(&mut self, path: &Path) -> std::io::Result<u64> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "cannot flip a byte of an empty file",
            ));
        }
        let offset = self.rng.below(len as usize) as u64;
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut byte)?;
        byte[0] ^= 0x01;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&byte)?;
        Ok(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{parse_lines, to_lines};

    fn fleet(n: usize) -> Vec<LogRecord> {
        (0..n)
            .map(|i| LogRecord {
                user_id: i as u64,
                start_s: 1_000 + 100 * i as u64,
                end_s: 1_600 + 100 * i as u64,
                cell_id: (i % 4) as u32,
                address: format!("BLK-1-{} Rd", i % 4),
                bytes: 1_000 + i as u64,
            })
            .collect()
    }

    #[test]
    fn same_seed_same_faults() {
        let base = fleet(200);
        let run = |seed| {
            let mut inj = FaultInjector::new(seed);
            let mut r = base.clone();
            inj.drop_records(&mut r, 0.2);
            inj.duplicate_records(&mut r, 0.1);
            inj.skew_clocks(&mut r, 0.1);
            r
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn drop_and_duplicate_change_counts() {
        let mut inj = FaultInjector::new(1);
        let mut r = fleet(500);
        let dropped = inj.drop_records(&mut r, 0.3);
        assert_eq!(r.len(), 500 - dropped);
        assert!(dropped > 50 && dropped < 250, "dropped {dropped}");
        let added = inj.duplicate_records(&mut r, 0.2);
        assert_eq!(r.len(), 500 - dropped + added);
        assert!(added > 0);
    }

    #[test]
    fn duplicates_are_adjacent_to_originals() {
        let mut inj = FaultInjector::new(5);
        let mut r = fleet(100);
        inj.duplicate_records(&mut r, 0.5);
        let mut seen_dup = false;
        for pair in r.windows(2) {
            if pair[0] == pair[1] {
                seen_dup = true;
            }
        }
        assert!(seen_dup);
    }

    #[test]
    fn skewed_clocks_fail_parse_as_negative_duration() {
        let mut inj = FaultInjector::new(9);
        let mut r = fleet(50);
        let skewed = inj.skew_clocks(&mut r, 0.4);
        assert!(skewed > 0);
        let (ok, bad) = parse_lines(&to_lines(&r));
        assert_eq!(bad.len(), skewed);
        assert_eq!(ok.len(), 50 - skewed);
        assert!(bad
            .iter()
            .all(|e| matches!(e, crate::TraceError::NegativeDuration { .. })));
    }

    #[test]
    fn spike_multiplies_bytes_saturating() {
        let mut inj = FaultInjector::new(2);
        let mut r = fleet(40);
        let spiked = inj.spike_bytes(&mut r, 0.5, u64::MAX);
        assert!(spiked > 0);
        assert_eq!(r.iter().filter(|x| x.bytes == u64::MAX).count(), spiked);
    }

    #[test]
    fn blackout_removes_only_overlapping_records_of_the_tower() {
        let mut inj = FaultInjector::new(0);
        let mut r = fleet(100);
        let tower1_before = r.iter().filter(|x| x.cell_id == 1).count();
        let removed = inj.blackout(&mut r, 1, 0, u64::MAX);
        assert_eq!(removed, tower1_before);
        assert!(r.iter().all(|x| x.cell_id != 1));
        // A window touching nothing removes nothing.
        assert_eq!(inj.blackout(&mut r, 2, u64::MAX - 1, u64::MAX), 0);
    }

    #[test]
    fn truncated_lines_become_parse_errors() {
        let mut inj = FaultInjector::new(11);
        let dump = to_lines(&fleet(60));
        let (mutated, cut) = inj.truncate_lines(&dump, 0.3);
        assert!(cut > 0);
        let (ok, bad) = parse_lines(&mutated);
        // Every surviving line parses; cut lines mostly fail (a cut at
        // the end of the line can leave it parseable).
        assert!(ok.len() >= 60 - cut);
        assert!(!bad.is_empty());
    }

    #[test]
    fn file_faults_truncate_and_flip() {
        let dir = std::env::temp_dir().join(format!("towerlens-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.txt");
        std::fs::write(&path, b"0123456789abcdef").unwrap();

        let mut inj = FaultInjector::new(3);
        let new_len = inj.truncate_file(&path, 0.5).unwrap();
        assert_eq!(new_len, 8);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234567");

        let offset = inj.flip_byte(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[offset as usize], b"01234567"[offset as usize] ^ 0x01);

        std::fs::write(&path, b"").unwrap();
        assert!(inj.flip_byte(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
