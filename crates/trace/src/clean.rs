//! Redundant/conflicting-log elimination (§2.2, first preprocessing
//! step).
//!
//! Operator traces contain two classes of bad entries the paper calls
//! out:
//!
//! * **redundant logs** — byte-identical duplicates introduced by
//!   collection-side retries; we keep one copy;
//! * **conflict logs** — entries identical in *(user, cell, start,
//!   end)* but disagreeing on the byte count (double-counted sessions
//!   reported by different collectors); we keep the entry with the
//!   largest byte count, on the grounds that partial collector flushes
//!   undercount.
//!
//! The cleaner reports what it removed so the preprocessing is
//! auditable.

use std::collections::HashMap;

use towerlens_obs::LazyCounter;

use crate::record::LogRecord;

/// Records surviving cleaning, across all batches.
static KEPT: LazyCounter = LazyCounter::new("trace.clean.kept");
/// Duplicates plus resolved conflicts dropped, across all batches.
static DROPPED: LazyCounter = LazyCounter::new("trace.clean.dropped");

/// Audit report of a cleaning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CleanReport {
    /// Records examined.
    pub total: usize,
    /// Byte-identical duplicates dropped.
    pub duplicates_removed: usize,
    /// Conflicting entries dropped (same session key, different
    /// bytes).
    pub conflicts_resolved: usize,
    /// Records kept.
    pub kept: usize,
}

/// Session identity: the fields that define "the same connection".
type SessionKey = (u64, u32, u64, u64);

fn key(r: &LogRecord) -> SessionKey {
    (r.user_id, r.cell_id, r.start_s, r.end_s)
}

/// Cleans a batch of records, returning the survivors (in first-seen
/// order) and the audit report.
pub fn clean_records(records: &[LogRecord]) -> (Vec<LogRecord>, CleanReport) {
    let mut report = CleanReport {
        total: records.len(),
        ..CleanReport::default()
    };
    // Map session key → index into `kept`.
    let mut by_key: HashMap<SessionKey, usize> = HashMap::with_capacity(records.len());
    let mut kept: Vec<LogRecord> = Vec::with_capacity(records.len());
    for r in records {
        match by_key.entry(key(r)) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(kept.len());
                kept.push(r.clone());
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let existing = &mut kept[*o.get()];
                if existing.bytes == r.bytes {
                    report.duplicates_removed += 1;
                } else {
                    report.conflicts_resolved += 1;
                    if r.bytes > existing.bytes {
                        *existing = r.clone();
                    }
                }
            }
        }
    }
    report.kept = kept.len();
    KEPT.add(report.kept as u64);
    DROPPED.add((report.duplicates_removed + report.conflicts_resolved) as u64);
    (kept, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u64, cell: u32, start: u64, bytes: u64) -> LogRecord {
        LogRecord {
            user_id: user,
            start_s: start,
            end_s: start + 600,
            cell_id: cell,
            address: "BLK-1-2 Rd".into(),
            bytes,
        }
    }

    #[test]
    fn exact_duplicates_are_dropped() {
        let records = vec![rec(1, 1, 0, 100), rec(1, 1, 0, 100), rec(1, 1, 0, 100)];
        let (kept, report) = clean_records(&records);
        assert_eq!(kept.len(), 1);
        assert_eq!(report.duplicates_removed, 2);
        assert_eq!(report.conflicts_resolved, 0);
        assert_eq!(report.kept, 1);
    }

    #[test]
    fn conflicts_keep_largest_bytes() {
        let records = vec![rec(1, 1, 0, 100), rec(1, 1, 0, 900), rec(1, 1, 0, 300)];
        let (kept, report) = clean_records(&records);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].bytes, 900);
        assert_eq!(report.conflicts_resolved, 2);
    }

    #[test]
    fn distinct_sessions_survive() {
        let records = vec![
            rec(1, 1, 0, 100),
            rec(1, 1, 600, 100), // later start: distinct
            rec(2, 1, 0, 100),   // other user: distinct
            rec(1, 2, 0, 100),   // other cell: distinct
        ];
        let (kept, report) = clean_records(&records);
        assert_eq!(kept.len(), 4);
        assert_eq!(report.duplicates_removed, 0);
        assert_eq!(report.conflicts_resolved, 0);
    }

    #[test]
    fn order_of_first_appearance_preserved() {
        let records = vec![rec(3, 1, 0, 10), rec(1, 1, 0, 10), rec(3, 1, 0, 10)];
        let (kept, _) = clean_records(&records);
        assert_eq!(kept[0].user_id, 3);
        assert_eq!(kept[1].user_id, 1);
    }

    #[test]
    fn empty_input() {
        let (kept, report) = clean_records(&[]);
        assert!(kept.is_empty());
        assert_eq!(report.total, 0);
        assert_eq!(report.kept, 0);
    }

    #[test]
    fn totals_balance() {
        let records = vec![
            rec(1, 1, 0, 100),
            rec(1, 1, 0, 100),
            rec(1, 1, 0, 200),
            rec(2, 2, 0, 5),
        ];
        let (kept, r) = clean_records(&records);
        assert_eq!(r.total, 4);
        assert_eq!(r.kept, kept.len());
        assert_eq!(
            r.total,
            r.kept + r.duplicates_removed + r.conflicts_resolved
        );
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Decodes one random word into a record drawn from a small key
    /// space, so duplicates and conflicts actually occur.
    fn decode(word: u64) -> LogRecord {
        let slot = (word >> 4) % 3;
        LogRecord {
            user_id: word % 4,
            start_s: slot * 600,
            end_s: slot * 600 + 600,
            cell_id: ((word >> 2) % 3) as u32,
            address: "BLK-1-1 Rd".into(),
            bytes: (word >> 6) % 500,
        }
    }

    fn batches() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..1_000_000, 0..60)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn clean_is_idempotent(words in batches()) {
            let records: Vec<LogRecord> = words.iter().map(|&w| decode(w)).collect();
            let (once, _) = clean_records(&records);
            let (twice, report) = clean_records(&once);
            prop_assert_eq!(&twice, &once);
            prop_assert_eq!(report.duplicates_removed, 0);
            prop_assert_eq!(report.conflicts_resolved, 0);
        }

        #[test]
        fn kept_bytes_are_order_independent(words in batches()) {
            let records: Vec<LogRecord> = words.iter().map(|&w| decode(w)).collect();
            let (forward, fr) = clean_records(&records);
            let reversed: Vec<LogRecord> = records.iter().rev().cloned().collect();
            let (backward, br) = clean_records(&reversed);
            // Conflict resolution keeps the max-bytes entry per
            // session regardless of arrival order, so the kept byte
            // multiset matches even though first-seen order differs.
            let canon = |mut v: Vec<LogRecord>| {
                v.sort_by_key(|r| (r.user_id, r.cell_id, r.start_s, r.end_s, r.bytes));
                v
            };
            prop_assert_eq!(canon(forward), canon(backward));
            prop_assert_eq!(fr.kept, br.kept);
            prop_assert_eq!(
                fr.duplicates_removed + fr.conflicts_resolved,
                br.duplicates_removed + br.conflicts_resolved
            );
        }
    }
}
