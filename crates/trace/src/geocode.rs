//! The synthetic geocoder — the Baidu-Map API substitute (§2.2,
//! second preprocessing step).
//!
//! The paper converts base-station street addresses to coordinates
//! through an online map API. Our addresses follow the `BLK-<i>-<j>
//! <street>` convention produced by `towerlens-city`; the geocoder
//! resolves them to the block centre (introducing the same kind of
//! quantisation error a real geocoder has), caches results, and can
//! simulate resolution failures so the downstream handles incomplete
//! information.

use std::collections::HashMap;

use towerlens_city::geo::GeoPoint;

/// Statistics of a geocoding run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GeocodeReport {
    /// Lookups attempted.
    pub lookups: usize,
    /// Served from the cache.
    pub cache_hits: usize,
    /// Addresses that could not be parsed.
    pub unresolved: usize,
    /// Lookups dropped by the simulated failure injector.
    pub injected_failures: usize,
}

/// A caching, failure-injecting address resolver.
#[derive(Debug, Clone)]
pub struct Geocoder {
    cache: HashMap<String, Option<GeoPoint>>,
    report: GeocodeReport,
    /// Deterministic failure injection: every `failure_period`-th
    /// *new* address fails to resolve (0 = never).
    failure_period: usize,
    fresh_lookups: usize,
}

impl Geocoder {
    /// A geocoder that resolves every well-formed address.
    pub fn new() -> Self {
        Geocoder {
            cache: HashMap::new(),
            report: GeocodeReport::default(),
            failure_period: 0,
            fresh_lookups: 0,
        }
    }

    /// A geocoder where every `period`-th fresh address fails (for
    /// testing incomplete-information handling). `period = 0` never
    /// fails.
    pub fn with_failures(period: usize) -> Self {
        Geocoder {
            failure_period: period,
            ..Geocoder::new()
        }
    }

    /// Resolves an address to coordinates. `None` means the address is
    /// malformed or the (simulated) service failed; callers are
    /// expected to drop such towers, as the paper drops stations with
    /// incomplete information.
    pub fn resolve(&mut self, address: &str) -> Option<GeoPoint> {
        self.report.lookups += 1;
        if let Some(cached) = self.cache.get(address) {
            self.report.cache_hits += 1;
            return *cached;
        }
        self.fresh_lookups += 1;
        let result =
            if self.failure_period > 0 && self.fresh_lookups.is_multiple_of(self.failure_period) {
                self.report.injected_failures += 1;
                None
            } else {
                let parsed = GeoPoint::from_block_address(address);
                if parsed.is_none() {
                    self.report.unresolved += 1;
                }
                parsed
            };
        self.cache.insert(address.to_string(), result);
        result
    }

    /// Resolves a batch, returning per-address results.
    pub fn resolve_all(&mut self, addresses: &[&str]) -> Vec<Option<GeoPoint>> {
        addresses.iter().map(|a| self.resolve(a)).collect()
    }

    /// The cumulative run report.
    pub fn report(&self) -> GeocodeReport {
        self.report
    }
}

impl Default for Geocoder {
    fn default() -> Self {
        Geocoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_block_addresses() {
        let mut g = Geocoder::new();
        let p = g.resolve("BLK-121470-31230 Nanjing Rd").unwrap();
        assert!((p.lon - 121.4705).abs() < 1e-9);
        assert!((p.lat - 31.2305).abs() < 1e-9);
    }

    #[test]
    fn caches_repeat_lookups() {
        let mut g = Geocoder::new();
        let a = "BLK-10-20 Century Ave";
        let first = g.resolve(a);
        let second = g.resolve(a);
        assert_eq!(first, second);
        let r = g.report();
        assert_eq!(r.lookups, 2);
        assert_eq!(r.cache_hits, 1);
    }

    #[test]
    fn malformed_addresses_unresolved() {
        let mut g = Geocoder::new();
        assert_eq!(g.resolve("People's Square"), None);
        assert_eq!(g.resolve(""), None);
        assert_eq!(g.report().unresolved, 2);
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let mut g = Geocoder::with_failures(3);
        let addrs: Vec<String> = (0..9).map(|i| format!("BLK-{i}-0 Rd")).collect();
        let refs: Vec<&str> = addrs.iter().map(|s| s.as_str()).collect();
        let results = g.resolve_all(&refs);
        let failures = results.iter().filter(|r| r.is_none()).count();
        assert_eq!(failures, 3); // every 3rd fresh lookup
        assert_eq!(g.report().injected_failures, 3);
        // Failed addresses stay failed (cached).
        assert_eq!(g.resolve(&addrs[2]), None);
    }

    #[test]
    fn batch_matches_singles() {
        let mut g1 = Geocoder::new();
        let mut g2 = Geocoder::new();
        let addrs = ["BLK-1-1 A", "BLK-2-2 B", "junk"];
        let batch = g1.resolve_all(&addrs);
        let singles: Vec<_> = addrs.iter().map(|a| g2.resolve(a)).collect();
        assert_eq!(batch, singles);
    }
}
