//! The traffic log record: one data connection.
//!
//! Matches the paper's tuple schema: device id (anonymised), start and
//! end time of the connection, base station id, base station address,
//! bytes transferred. Serialisation is line-oriented, tab-separated —
//! the "unstructured logs" the vectorizer ingests.

use serde::{Deserialize, Serialize};

use crate::error::TraceError;

/// One data-connection log entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogRecord {
    /// Anonymised subscriber id.
    pub user_id: u64,
    /// Connection start, seconds since trace epoch.
    pub start_s: u64,
    /// Connection end, seconds since trace epoch (≥ `start_s`).
    pub end_s: u64,
    /// Base-station (tower) id.
    pub cell_id: u32,
    /// Base-station street address (free text; the geocoder resolves
    /// it).
    pub address: String,
    /// Bytes transferred over the connection.
    pub bytes: u64,
}

impl LogRecord {
    /// Connection duration in seconds.
    pub fn duration_s(&self) -> u64 {
        self.end_s.saturating_sub(self.start_s)
    }

    /// Serialises to one tab-separated line (no trailing newline).
    /// Tabs inside the address are replaced by spaces so the line
    /// stays parseable.
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            self.user_id,
            self.start_s,
            self.end_s,
            self.cell_id,
            self.bytes,
            self.address.replace('\t', " "),
        )
    }

    /// Parses one line produced by [`LogRecord::to_line`].
    ///
    /// `line_no` is used only for error reporting (1-based).
    ///
    /// # Errors
    /// [`TraceError::BadFieldCount`], [`TraceError::BadNumber`], or
    /// [`TraceError::NegativeDuration`].
    pub fn parse_line(line: &str, line_no: usize) -> Result<LogRecord, TraceError> {
        let fields: Vec<&str> = line.splitn(6, '\t').collect();
        if fields.len() != 6 {
            return Err(TraceError::BadFieldCount {
                found: fields.len(),
                line: line_no,
            });
        }
        let num = |s: &str, field: &'static str| -> Result<u64, TraceError> {
            s.trim().parse::<u64>().map_err(|_| TraceError::BadNumber {
                field,
                line: line_no,
            })
        };
        let user_id = num(fields[0], "user_id")?;
        let start_s = num(fields[1], "start_s")?;
        let end_s = num(fields[2], "end_s")?;
        let cell_id = num(fields[3], "cell_id")? as u32;
        let bytes = num(fields[4], "bytes")?;
        if end_s < start_s {
            return Err(TraceError::NegativeDuration { line: line_no });
        }
        Ok(LogRecord {
            user_id,
            start_s,
            end_s,
            cell_id,
            address: fields[5].to_string(),
            bytes,
        })
    }
}

/// Serialises records into a multi-line string (one record per line).
pub fn to_lines(records: &[LogRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Parses a multi-line dump, collecting records and per-line errors
/// (real operator logs contain garbage lines; we keep the good ones
/// and report the bad, rather than failing wholesale).
pub fn parse_lines(input: &str) -> (Vec<LogRecord>, Vec<TraceError>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match LogRecord::parse_line(line, i + 1) {
            Ok(r) => records.push(r),
            Err(e) => errors.push(e),
        }
    }
    (records, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> LogRecord {
        LogRecord {
            user_id: 42,
            start_s: 1_000,
            end_s: 1_600,
            cell_id: 7,
            address: "BLK-121470-31230 Nanjing Rd".into(),
            bytes: 123_456,
        }
    }

    #[test]
    fn line_roundtrip() {
        let r = rec();
        let parsed = LogRecord::parse_line(&r.to_line(), 1).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn tab_in_address_is_sanitised() {
        let mut r = rec();
        r.address = "BLK-1-2\tweird".into();
        let parsed = LogRecord::parse_line(&r.to_line(), 1).unwrap();
        assert_eq!(parsed.address, "BLK-1-2 weird");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(
            LogRecord::parse_line("1\t2\t3", 9),
            Err(TraceError::BadFieldCount { found: 3, line: 9 })
        );
        assert_eq!(
            LogRecord::parse_line("x\t2\t3\t4\t5\taddr", 2),
            Err(TraceError::BadNumber {
                field: "user_id",
                line: 2
            })
        );
        assert_eq!(
            LogRecord::parse_line("1\t100\t50\t4\t5\taddr", 3),
            Err(TraceError::NegativeDuration { line: 3 })
        );
    }

    #[test]
    fn bulk_roundtrip_with_garbage() {
        let records = vec![rec(), {
            let mut r = rec();
            r.user_id = 43;
            r
        }];
        let mut dump = to_lines(&records);
        dump.push_str("garbage line\n\n1\t2\t3\t4\t5\tok\n");
        let (parsed, errors) = parse_lines(&dump);
        assert_eq!(parsed.len(), 3);
        assert_eq!(errors.len(), 1);
        assert_eq!(parsed[0], records[0]);
    }

    #[test]
    fn duration_saturates() {
        let r = rec();
        assert_eq!(r.duration_s(), 600);
    }
}

/// A streaming record reader over any [`std::io::BufRead`] source:
/// yields one `Result` per non-empty line, so multi-gigabyte operator
/// exports can be processed without loading them into memory.
///
/// ```
/// use towerlens_trace::record::{RecordReader, LogRecord};
///
/// let dump = "1\t100\t200\t3\t555\tBLK-1-1 Rd\ngarbage\n";
/// let mut reader = RecordReader::new(dump.as_bytes());
/// // Each item is io::Result<Result<LogRecord, TraceError>>.
/// let first = reader.next().unwrap().unwrap().unwrap();
/// assert_eq!(first.bytes, 555);
/// assert!(reader.next().unwrap().unwrap().is_err()); // the garbage line
/// assert!(reader.next().is_none());
/// ```
#[derive(Debug)]
pub struct RecordReader<R> {
    source: R,
    line_no: usize,
    buffer: String,
}

impl<R: std::io::BufRead> RecordReader<R> {
    /// Wraps a buffered source.
    pub fn new(source: R) -> Self {
        RecordReader {
            source,
            line_no: 0,
            buffer: String::new(),
        }
    }
}

impl<R: std::io::BufRead> Iterator for RecordReader<R> {
    type Item = std::io::Result<Result<LogRecord, TraceError>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buffer.clear();
            match self.source.read_line(&mut self.buffer) {
                Ok(0) => return None,
                Ok(_) => {
                    self.line_no += 1;
                    let line = self.buffer.trim_end_matches(['\n', '\r']);
                    if line.trim().is_empty() {
                        continue;
                    }
                    return Some(Ok(LogRecord::parse_line(line, self.line_no)));
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod reader_tests {
    use super::*;

    #[test]
    fn streams_good_and_bad_lines() {
        let dump = "\n1\t10\t20\t0\t5\taddr one\n\nbad line\n2\t30\t40\t1\t6\taddr two\n";
        let results: Vec<_> = RecordReader::new(dump.as_bytes())
            .map(|r| r.expect("io"))
            .collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(results[2].as_ref().unwrap().user_id, 2);
    }

    #[test]
    fn line_numbers_in_errors_count_nonblank_reads() {
        let dump = "x\ty\n";
        let err = RecordReader::new(dump.as_bytes())
            .next()
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, TraceError::BadFieldCount { line: 1, .. }));
    }

    #[test]
    fn matches_parse_lines_on_clean_dump() {
        let records = vec![
            LogRecord {
                user_id: 1,
                start_s: 5,
                end_s: 6,
                cell_id: 7,
                address: "BLK-2-2 Rd".into(),
                bytes: 9,
            };
            3
        ];
        let dump = to_lines(&records);
        let streamed: Vec<LogRecord> = RecordReader::new(dump.as_bytes())
            .map(|r| r.expect("io").expect("parse"))
            .collect();
        assert_eq!(streamed, records);
    }
}
