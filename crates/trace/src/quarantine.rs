//! Quarantine ingestion: tolerate bad records up to a policy
//! threshold instead of aborting.
//!
//! Real operator logs contain garbage (§2.2) — the question is never
//! *whether* lines are malformed but *how many*. The policy here fails
//! open for isolated noise (bad records are routed into a per-category
//! quarantine report and the run continues) and fails closed when the
//! bad fraction crosses a configurable threshold, which usually means
//! the feed itself is broken and every downstream number would be
//! garbage.

use towerlens_obs::LazyCounter;

use crate::error::TraceError;
use crate::record::LogRecord;

/// Records examined by policed ingestion, across all batches.
static INGESTED: LazyCounter = LazyCounter::new("trace.ingest.records");
/// Records routed into quarantine, across all batches.
static QUARANTINED: LazyCounter = LazyCounter::new("trace.quarantine.records");

/// How many offending raw lines the report keeps verbatim for
/// debugging.
pub const MAX_QUARANTINE_SAMPLES: usize = 5;

/// What to do when the bad-record fraction crosses the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowAction {
    /// Fail closed with [`TraceError::QuarantineOverflow`] (default):
    /// a feed this broken should not produce plausible-looking output.
    #[default]
    Fail,
    /// Keep quarantining and let the caller inspect the report — for
    /// salvage runs and diagnostics.
    Quarantine,
}

/// Tolerance policy for malformed records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Maximum tolerated `bad / total` fraction; crossing it triggers
    /// `on_overflow`.
    pub max_bad_fraction: f64,
    /// Behaviour past the threshold.
    pub on_overflow: OverflowAction,
}

impl Default for FaultPolicy {
    /// Tolerate up to 5% bad records, then fail closed.
    fn default() -> Self {
        FaultPolicy {
            max_bad_fraction: 0.05,
            on_overflow: OverflowAction::Fail,
        }
    }
}

impl FaultPolicy {
    /// A zero-tolerance policy: any bad record fails the run.
    pub fn strict() -> Self {
        FaultPolicy {
            max_bad_fraction: 0.0,
            on_overflow: OverflowAction::Fail,
        }
    }

    /// Whether `bad` out of `total` records stays within tolerance.
    pub fn within(&self, bad: usize, total: usize) -> bool {
        if total == 0 {
            return bad == 0;
        }
        bad as f64 / total as f64 <= self.max_bad_fraction
    }

    /// Applies the policy to a finished report: `Err` iff the report
    /// is over threshold and the policy fails closed.
    ///
    /// # Errors
    /// [`TraceError::QuarantineOverflow`] carrying the bad/total
    /// counts.
    pub fn enforce(&self, report: &QuarantineReport) -> Result<(), TraceError> {
        if self.on_overflow == OverflowAction::Fail && !self.within(report.bad(), report.total) {
            return Err(TraceError::QuarantineOverflow {
                bad: report.bad(),
                total: report.total,
            });
        }
        Ok(())
    }
}

/// Per-category tally of quarantined records, with a few verbatim
/// samples for debugging.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuarantineReport {
    /// Records examined (good + bad).
    pub total: usize,
    /// Lines with the wrong field count.
    pub bad_field_count: usize,
    /// Lines with an unparseable numeric field.
    pub bad_number: usize,
    /// Records ending before they start.
    pub negative_duration: usize,
    /// Records referencing a tower outside the known range.
    pub unknown_cell: usize,
    /// Up to [`MAX_QUARANTINE_SAMPLES`] rendered errors, in encounter
    /// order.
    pub samples: Vec<String>,
}

impl QuarantineReport {
    /// Routes one error into its category and keeps a sample.
    pub fn note(&mut self, err: &TraceError) {
        match err {
            TraceError::BadFieldCount { .. } => self.bad_field_count += 1,
            TraceError::BadNumber { .. } => self.bad_number += 1,
            TraceError::NegativeDuration { .. } => self.negative_duration += 1,
            TraceError::UnknownCell { .. } => self.unknown_cell += 1,
            // Non-record-level errors are not quarantinable; count
            // them with the unknown-cell bucket's neighbours would
            // lie, so they land in samples only.
            _ => {}
        }
        if self.samples.len() < MAX_QUARANTINE_SAMPLES {
            self.samples.push(err.to_string());
        }
    }

    /// Total quarantined records across all categories.
    pub fn bad(&self) -> usize {
        self.bad_field_count + self.bad_number + self.negative_duration + self.unknown_cell
    }

    /// Quarantined share of the examined records (`0.0` when empty).
    pub fn bad_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bad() as f64 / self.total as f64
        }
    }

    /// Whether nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.bad() == 0
    }

    /// Folds another report into this one (samples capped).
    pub fn merge(&mut self, other: &QuarantineReport) {
        self.total += other.total;
        self.bad_field_count += other.bad_field_count;
        self.bad_number += other.bad_number;
        self.negative_duration += other.negative_duration;
        self.unknown_cell += other.unknown_cell;
        for s in &other.samples {
            if self.samples.len() >= MAX_QUARANTINE_SAMPLES {
                break;
            }
            self.samples.push(s.clone());
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "quarantined {}/{} records ({:.2}%): {} bad field count, {} bad number, \
             {} negative duration, {} unknown cell",
            self.bad(),
            self.total,
            100.0 * self.bad_fraction(),
            self.bad_field_count,
            self.bad_number,
            self.negative_duration,
            self.unknown_cell,
        )
    }
}

/// Feeds a finished ingestion report into the process-wide metrics
/// registry: `trace.ingest.records` (records examined) and
/// `trace.quarantine.records` (records quarantined). Call once per
/// finished report — [`parse_lines_policed`] already does; streaming
/// ingesters that assemble their own report call it directly.
pub fn record_ingest_metrics(report: &QuarantineReport) {
    INGESTED.add(report.total as u64);
    QUARANTINED.add(report.bad() as u64);
}

/// Parses a multi-line dump under a tolerance policy: good records are
/// returned, bad lines are quarantined per category, and the policy
/// decides whether an excessive bad fraction fails the run.
///
/// ```
/// use towerlens_trace::quarantine::{parse_lines_policed, FaultPolicy};
///
/// let dump = "1\t10\t20\t0\t5\taddr\ngarbage\n";
/// // One bad line out of two: over a 5% threshold → fails closed.
/// assert!(parse_lines_policed(dump, &FaultPolicy::default()).is_err());
/// // A permissive threshold quarantines it and keeps the good record.
/// let lax = FaultPolicy { max_bad_fraction: 0.5, ..FaultPolicy::default() };
/// let (records, report) = parse_lines_policed(dump, &lax).unwrap();
/// assert_eq!(records.len(), 1);
/// assert_eq!(report.bad_field_count, 1);
/// ```
///
/// # Errors
/// [`TraceError::QuarantineOverflow`] when the bad fraction crosses
/// `policy.max_bad_fraction` and `policy.on_overflow` is
/// [`OverflowAction::Fail`].
pub fn parse_lines_policed(
    input: &str,
    policy: &FaultPolicy,
) -> Result<(Vec<LogRecord>, QuarantineReport), TraceError> {
    let mut records = Vec::new();
    let mut report = QuarantineReport::default();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        report.total += 1;
        match LogRecord::parse_line(line, i + 1) {
            Ok(r) => records.push(r),
            Err(e) => report.note(&e),
        }
    }
    record_ingest_metrics(&report);
    policy.enforce(&report)?;
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::to_lines;

    fn good(n: usize) -> String {
        let records: Vec<LogRecord> = (0..n)
            .map(|i| LogRecord {
                user_id: i as u64,
                start_s: 0,
                end_s: 600,
                cell_id: 0,
                address: "BLK-1-1 Rd".into(),
                bytes: 1,
            })
            .collect();
        to_lines(&records)
    }

    #[test]
    fn clean_input_yields_clean_report() {
        let (records, report) = parse_lines_policed(&good(10), &FaultPolicy::strict()).unwrap();
        assert_eq!(records.len(), 10);
        assert!(report.is_clean());
        assert_eq!(report.total, 10);
    }

    #[test]
    fn bad_lines_under_threshold_are_quarantined_by_category() {
        let mut dump = good(97);
        dump.push_str("only three\tfields\there\n"); // bad field count
        dump.push_str("x\t1\t2\t3\t4\taddr\n"); // bad number
        dump.push_str("1\t100\t50\t3\t4\taddr\n"); // negative duration
        let (records, report) = parse_lines_policed(&dump, &FaultPolicy::default()).unwrap();
        assert_eq!(records.len(), 97);
        assert_eq!(report.total, 100);
        assert_eq!(report.bad_field_count, 1);
        assert_eq!(report.bad_number, 1);
        assert_eq!(report.negative_duration, 1);
        assert_eq!(report.bad(), 3);
        assert_eq!(report.samples.len(), 3);
        assert!((report.bad_fraction() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn over_threshold_fails_closed_with_counts() {
        let mut dump = good(4);
        dump.push_str("garbage\n");
        let err = parse_lines_policed(&dump, &FaultPolicy::default()).unwrap_err();
        assert_eq!(err, TraceError::QuarantineOverflow { bad: 1, total: 5 });
        assert!(err.to_string().contains("20.0%"));
    }

    #[test]
    fn quarantine_overflow_action_keeps_going() {
        let mut dump = good(1);
        dump.push_str("garbage\ngarbage\ngarbage\n");
        let lax = FaultPolicy {
            max_bad_fraction: 0.0,
            on_overflow: OverflowAction::Quarantine,
        };
        let (records, report) = parse_lines_policed(&dump, &lax).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.bad(), 3);
    }

    #[test]
    fn threshold_is_exclusive_at_the_boundary() {
        // 1 bad of 20 = exactly 5%: not *past* the threshold.
        let mut dump = good(19);
        dump.push_str("garbage\n");
        assert!(parse_lines_policed(&dump, &FaultPolicy::default()).is_ok());
    }

    #[test]
    fn samples_are_capped() {
        let mut report = QuarantineReport::default();
        for i in 0..20 {
            report.note(&TraceError::NegativeDuration { line: i });
        }
        assert_eq!(report.samples.len(), MAX_QUARANTINE_SAMPLES);
        assert_eq!(report.negative_duration, 20);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = QuarantineReport {
            total: 10,
            unknown_cell: 2,
            samples: vec!["x".into()],
            ..QuarantineReport::default()
        };
        let b = QuarantineReport {
            total: 5,
            bad_number: 1,
            samples: vec!["y".into()],
            ..QuarantineReport::default()
        };
        a.merge(&b);
        assert_eq!(a.total, 15);
        assert_eq!(a.bad(), 3);
        assert_eq!(a.samples, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn summary_mentions_every_category() {
        let mut report = QuarantineReport {
            total: 8,
            ..QuarantineReport::default()
        };
        report.note(&TraceError::UnknownCell {
            cell_id: 99,
            count: 4,
        });
        let s = report.summary();
        assert!(s.contains("unknown cell"));
        assert!(s.contains("1/8"));
    }
}
