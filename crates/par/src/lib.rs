//! Deterministic data-parallel primitives over scoped std threads.
//!
//! Every helper here upholds one contract: **output is byte-identical
//! for any thread count**, including `1`. That holds because work is
//! partitioned into contiguous index ranges and each result is written
//! into a pre-sized slot addressed purely by item index — worker
//! scheduling can reorder *when* slots are written, never *where* or
//! *what*. Per-item side effects that must stay exact (hot-path
//! counters) go through the tally variants: each worker accumulates
//! into a private shard and the shards are merged in worker order
//! after the join, so totals are identical across thread counts
//! instead of depending on racy interleavings.
//!
//! No dependencies, no locks on the hot path; `0` means
//! `available_parallelism`, mirroring the vectorizer's convention.

use std::thread;

/// Resolves a thread-count knob: `0` means available parallelism,
/// anything else is taken literally (oversubscription is allowed and
/// useful for determinism tests on small machines).
#[must_use]
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Maps `f(index, &item)` over a slice in parallel, returning results
/// in item order. Byte-identical to the serial map for any `threads`
/// (0 = available parallelism): each worker owns a contiguous chunk of
/// pre-sized output slots addressed by item index.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_indexed_tally(items, threads, 0, |i, item, _| f(i, item)).0
}

/// As [`par_map_indexed`], but each worker also carries a private
/// tally shard of `tallies` slots; the shards are summed in worker
/// order after the join and returned alongside the results. Use this
/// to keep observability counters exact across thread counts: workers
/// bump their shard, the caller feeds the merged totals to the global
/// registry once.
pub fn par_map_indexed_tally<T, R, F>(
    items: &[T],
    threads: usize,
    tallies: usize,
    f: F,
) -> (Vec<R>, Vec<u64>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut [u64]) -> R + Sync,
{
    par_map_indexed_scratch(
        items,
        threads,
        tallies,
        || (),
        |(), i, item, tally| f(i, item, tally),
    )
}

/// As [`par_map_indexed_tally`], but each worker also owns a scratch
/// value built by `init`, handed to `f` for every item of that
/// worker's contiguous chunk. Use it to reuse buffers across a chunk's
/// items (e.g. a query server's per-request staging vectors) without
/// per-item allocation — determinism is unaffected as long as `f`'s
/// *output* does not depend on leftover scratch state, which reusable
/// buffers cleared per item satisfy by construction.
pub fn par_map_indexed_scratch<T, R, S, I, F>(
    items: &[T],
    threads: usize,
    tallies: usize,
    init: I,
    f: F,
) -> (Vec<R>, Vec<u64>)
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T, &mut [u64]) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len().max(1));
    let mut tally = vec![0u64; tallies];
    if workers <= 1 {
        let mut scratch = init();
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut scratch, i, item, &mut tally))
            .collect();
        return (out, tally);
    }

    let chunk = items.len().div_ceil(workers);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let shards = thread::scope(|scope| {
        let handles: Vec<_> = slots
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, out)| {
                let f = &f;
                let init = &init;
                scope.spawn(move || {
                    let base = c * chunk;
                    let mut shard = vec![0u64; tallies];
                    let mut scratch = init();
                    for (off, slot) in out.iter_mut().enumerate() {
                        let i = base + off;
                        *slot = Some(f(&mut scratch, i, &items[i], &mut shard));
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect::<Vec<_>>()
    });
    // Merge shards in worker order: u64 addition is exact and
    // commutative, but a fixed order keeps the merge principled and
    // trivially auditable.
    for shard in shards {
        for (slot, v) in tally.iter_mut().zip(shard) {
            *slot += v;
        }
    }
    let out = slots
        .into_iter()
        .map(|slot| slot.expect("every slot written"))
        .collect();
    (out, tally)
}

/// Fills a pre-sized buffer in parallel: the buffer is split into
/// contiguous chunks of `chunk` elements and `f(start, slice)` runs
/// once per chunk, where `start` is the absolute index of the chunk's
/// first element. Deterministic for any `threads` because chunk
/// boundaries depend only on `chunk`, never on scheduling.
///
/// `chunk = 0` is treated as "one chunk per worker"
/// (`out.len().div_ceil(workers)`).
pub fn par_fill<R, F>(out: &mut [R], threads: usize, chunk: usize, f: F)
where
    R: Send,
    F: Fn(usize, &mut [R]) + Sync,
{
    if out.is_empty() {
        return;
    }
    let workers = resolve_threads(threads).min(out.len());
    let chunk = if chunk == 0 {
        out.len().div_ceil(workers)
    } else {
        chunk
    };
    if workers <= 1 {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            f(c * chunk, slice);
        }
        return;
    }
    thread::scope(|scope| {
        // More chunks than workers is fine: spawned tasks are cheap
        // scoped threads, and small chunk counts dominate in practice.
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || f(c * chunk, slice));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_passes_nonzero_through() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn map_matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 4, 8, 16, 300] {
            let par = par_map_indexed(&items, threads, |i, v| v * 3 + i as u64);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn tallies_are_exact_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let mut reference = None;
        for threads in [1, 2, 5, 8, 64] {
            let (_, tally) = par_map_indexed_tally(&items, threads, 2, |i, v, t| {
                t[0] += 1;
                t[1] += v;
                i
            });
            assert_eq!(tally[0], 1000);
            let reference = reference.get_or_insert(tally.clone()).clone();
            assert_eq!(tally, reference, "threads={threads}");
        }
    }

    #[test]
    fn scratch_workers_reuse_buffers_without_changing_output() {
        // Each worker's scratch Vec persists across its chunk (observable
        // through capacity growth) while the mapped output stays
        // byte-identical to the serial run at every thread count.
        let items: Vec<u64> = (0..311).collect();
        let run = |threads| {
            par_map_indexed_scratch(
                &items,
                threads,
                1,
                Vec::<u64>::new,
                |scratch, i, v, tally| {
                    scratch.clear();
                    scratch.extend((0..(v % 7)).map(|x| x * v));
                    tally[0] += scratch.len() as u64;
                    scratch.iter().sum::<u64>() + i as u64
                },
            )
        };
        let (serial, serial_tally) = run(1);
        for threads in [2, 3, 8, 64] {
            let (par, tally) = run(threads);
            assert_eq!(par, serial, "threads={threads}");
            assert_eq!(tally, serial_tally, "threads={threads}");
        }
    }

    #[test]
    fn fill_writes_every_slot_identically() {
        let serial = {
            let mut buf = vec![0u64; 1023];
            par_fill(&mut buf, 1, 0, |start, slice| {
                for (off, v) in slice.iter_mut().enumerate() {
                    *v = (start + off) as u64 * 7;
                }
            });
            buf
        };
        for threads in [2, 3, 8, 17] {
            for chunk in [0, 1, 10, 100, 5000] {
                let mut buf = vec![0u64; 1023];
                par_fill(&mut buf, threads, chunk, |start, slice| {
                    for (off, v) in slice.iter_mut().enumerate() {
                        *v = (start + off) as u64 * 7;
                    }
                });
                assert_eq!(buf, serial, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<u32> = par_map_indexed(&[] as &[u32], 4, |_, v| *v);
        assert!(out.is_empty());
        let mut buf: Vec<u32> = Vec::new();
        par_fill(&mut buf, 4, 0, |_, _| panic!("no chunks expected"));
    }
}
