//! Property test for the determinism contract: `par_map_indexed` (and
//! the tally variant) must equal the serial map — results *and*
//! merged tallies — for arbitrary inputs, thread counts, and
//! chunkings. This is the guarantee the pipeline's golden and
//! chaos-resume tests lean on when `--threads` varies.

use proptest::prelude::*;
use towerlens_par::{par_fill, par_map_indexed, par_map_indexed_tally};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_matches_serial_map(
        items in prop::collection::vec(0u32..1_000_000, 0..200),
        threads in 1usize..=24,
    ) {
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &v)| u64::from(v).wrapping_mul(i as u64 + 1))
            .collect();
        let par = par_map_indexed(&items, threads, |i, &v| {
            u64::from(v).wrapping_mul(i as u64 + 1)
        });
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn tallies_match_serial_for_any_thread_count(
        items in prop::collection::vec(1u32..1000, 1..150),
        threads in 1usize..=24,
    ) {
        let (serial_out, serial_tally) =
            par_map_indexed_tally(&items, 1, 2, |i, &v, t| {
                t[0] += 1;
                t[1] += u64::from(v);
                i as u64 + u64::from(v)
            });
        let (out, tally) = par_map_indexed_tally(&items, threads, 2, |i, &v, t| {
            t[0] += 1;
            t[1] += u64::from(v);
            i as u64 + u64::from(v)
        });
        prop_assert_eq!(out, serial_out);
        prop_assert_eq!(tally, serial_tally);
        prop_assert_eq!(tally[0], items.len() as u64);
    }

    #[test]
    fn par_fill_matches_serial_for_any_chunking(
        len in 0usize..300,
        threads in 1usize..=16,
        chunk in 0usize..64,
    ) {
        let fill = |start: usize, slice: &mut [u64]| {
            for (off, v) in slice.iter_mut().enumerate() {
                *v = ((start + off) as u64).wrapping_mul(2_654_435_761);
            }
        };
        let mut serial = vec![0u64; len];
        par_fill(&mut serial, 1, chunk, fill);
        let mut par = vec![0u64; len];
        par_fill(&mut par, threads, chunk, fill);
        prop_assert_eq!(par, serial);
    }
}
