//! The thread-safe metrics registry and its metric kinds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonic counter. All operations are single atomic
/// instructions; totals are exact under any interleaving.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// `edges` are strictly increasing boundaries. An observation `v`
/// lands in the *underflow* bucket when `v < edges[0]`, in interior
/// bucket `i` when `edges[i] ≤ v < edges[i + 1]`, and in the
/// *overflow* bucket when `v ≥ edges.last()`. A histogram with one
/// edge therefore has no interior buckets at all — only the two
/// open-ended ones.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<u64>,
    underflow: AtomicU64,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given boundaries.
    ///
    /// # Panics
    /// When `edges` is empty or not strictly increasing — bucket
    /// layouts are compile-time decisions, not runtime data.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            underflow: AtomicU64::new(0),
            buckets: (1..edges.len()).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        // partition_point = count of edges ≤ v.
        let at = self.edges.partition_point(|&e| e <= v);
        let cell = match at {
            0 => &self.underflow,
            n if n == self.edges.len() => &self.overflow,
            i => &self.buckets[i - 1],
        };
        cell.fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The bucket boundaries.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// A consistent-enough copy of the current state. (Individual
    /// cells are read independently; quiesce writers for an exact
    /// snapshot, as the registry's users do.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.clone(),
            underflow: self.underflow.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.underflow.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.overflow.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket boundaries (as registered).
    pub edges: Vec<u64>,
    /// Observations below `edges[0]`.
    pub underflow: u64,
    /// Interior bucket counts (`edges.len() - 1` of them).
    pub buckets: Vec<u64>,
    /// Observations at or above the last edge.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over the given edges.
    pub fn empty(edges: &[u64]) -> Self {
        Histogram::new(edges).snapshot()
    }

    /// Merges two snapshots bucket-wise. Merging is associative and
    /// commutative (it is element-wise `u64` addition), so shard
    /// results can be combined in any order.
    ///
    /// Returns `None` when the bucket layouts differ.
    pub fn merge(&self, other: &HistogramSnapshot) -> Option<HistogramSnapshot> {
        if self.edges != other.edges {
            return None;
        }
        Some(HistogramSnapshot {
            edges: self.edges.clone(),
            underflow: self.underflow + other.underflow,
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            overflow: self.overflow + other.overflow,
            count: self.count + other.count,
            sum: self.sum + other.sum,
        })
    }
}

/// A wall-time accumulator: observation count plus total nanoseconds.
///
/// Only the count is serialized into metrics JSON (see the crate-level
/// determinism contract); the nanosecond total is for programmatic
/// consumers (`--timings`, the bench harness).
#[derive(Debug, Default)]
pub struct Timer {
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Timer {
    /// Records one duration.
    #[inline]
    pub fn observe(&self, wall: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Accumulated wall time in nanoseconds.
    pub total_ns: u64,
}

/// A thread-safe registry of named metrics.
///
/// Handles returned by the registration methods are `Arc`s; hold one
/// and the hot path never touches the registry lock again.
/// Registration is get-or-create: the first caller's configuration
/// (e.g. histogram edges) wins, later callers receive the existing
/// metric.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    timers: Mutex<BTreeMap<String, Arc<Timer>>>,
}

fn get_or_register<M>(
    map: &Mutex<BTreeMap<String, Arc<M>>>,
    name: &str,
    fresh: impl FnOnce() -> M,
) -> Arc<M> {
    let mut map = map.lock().expect("metric map poisoned");
    if let Some(m) = map.get(name) {
        return Arc::clone(m);
    }
    let m = Arc::new(fresh());
    map.insert(name.to_string(), Arc::clone(&m));
    m
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it at zero if new.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_register(&self.counters, name, Counter::default)
    }

    /// The gauge named `name`, registering it at zero if new.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_register(&self.gauges, name, Gauge::default)
    }

    /// The histogram named `name`, registering it over `edges` if new
    /// (an existing histogram keeps its original edges).
    pub fn histogram(&self, name: &str, edges: &[u64]) -> Arc<Histogram> {
        get_or_register(&self.histograms, name, || Histogram::new(edges))
    }

    /// The timer named `name`, registering it at zero if new.
    pub fn timer(&self, name: &str) -> Arc<Timer> {
        get_or_register(&self.timers, name, Timer::default)
    }

    /// Zeroes every metric's value while keeping all registrations
    /// (and every handed-out `Arc` handle) valid.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("counter map poisoned").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("gauge map poisoned").values() {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .values()
        {
            h.reset();
        }
        for t in self.timers.lock().expect("timer map poisoned").values() {
            t.reset();
        }
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// name within each kind.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("counter map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("gauge map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("histogram map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            timers: self
                .timers
                .lock()
                .expect("timer map poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], ready to serialize.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Timer states by name.
    pub timers: BTreeMap<String, TimerSnapshot>,
}

impl Snapshot {
    /// A counter's total, zero when unregistered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The snapshot as stable, sorted JSON.
    ///
    /// Deterministic by construction: `BTreeMap` iteration is sorted,
    /// every value is an integer, and timers serialize as their
    /// observation count only — wall-clock time never appears, so
    /// identical seeded runs dump byte-identical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string());
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            out.push_str(&v.to_string());
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            out.push_str("{\"edges\":[");
            push_list(out, h.edges.iter());
            out.push_str("],\"underflow\":");
            out.push_str(&h.underflow.to_string());
            out.push_str(",\"buckets\":[");
            push_list(out, h.buckets.iter());
            out.push_str("],\"overflow\":");
            out.push_str(&h.overflow.to_string());
            out.push_str(&format!(",\"count\":{},\"sum\":{}}}", h.count, h.sum));
        });
        out.push_str("},\"timers\":{");
        push_entries(&mut out, self.timers.iter(), |out, t| {
            out.push_str(&format!("{{\"count\":{}}}", t.count));
        });
        out.push_str("}}");
        out
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &V),
) {
    for (i, (name, value)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&crate::events::json_escape(name));
        out.push_str("\":");
        render(out, value);
    }
}

fn push_list<'a>(out: &mut String, values: impl Iterator<Item = &'a u64>) {
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry hot paths instrument against.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// A counter handle bound to the [`global`] registry lazily, so hot
/// paths pay one `OnceLock` load plus one atomic add per update.
///
/// ```
/// static EVALS: towerlens_obs::LazyCounter =
///     towerlens_obs::LazyCounter::new("demo.docs.evaluations");
/// EVALS.add(3);
/// assert!(EVALS.get() >= 3);
/// ```
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declares a counter by name; registration happens on first use.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn handle(&self) -> &Counter {
        self.cell.get_or_init(|| global().counter(self.name))
    }

    /// Adds `n` to the global counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    /// Adds 1 to the global counter.
    #[inline]
    pub fn inc(&self) {
        self.handle().inc();
    }

    /// The counter's current total.
    pub fn get(&self) -> u64 {
        self.handle().get()
    }
}

/// A histogram handle bound to the [`global`] registry lazily; the
/// histogram analogue of [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    edges: &'static [u64],
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declares a histogram by name and bucket layout; registration
    /// happens on first use.
    pub const fn new(name: &'static str, edges: &'static [u64]) -> Self {
        LazyHistogram {
            name,
            edges,
            cell: OnceLock::new(),
        }
    }

    /// Records one observation into the global histogram.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.cell
            .get_or_init(|| global().histogram(self.name, self.edges))
            .observe(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("t.a.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same metric.
        assert_eq!(r.counter("t.a.count").get(), 5);
        let g = r.gauge("t.a.gauge");
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_routes_to_the_right_buckets() {
        let h = Histogram::new(&[10, 100, 1_000]);
        for v in [0, 9] {
            h.observe(v); // underflow: v < 10
        }
        h.observe(10); // bucket 0: [10, 100)
        h.observe(99);
        h.observe(100); // bucket 1: [100, 1000)
        h.observe(1_000); // overflow: v ≥ 1000
        h.observe(u64::MAX / 4);
        let s = h.snapshot();
        assert_eq!(s.underflow, 2);
        assert_eq!(s.buckets, vec![2, 1]);
        assert_eq!(s.overflow, 2);
        assert_eq!(s.count, 7);
    }

    #[test]
    fn histogram_single_edge_has_no_interior_buckets() {
        let h = Histogram::new(&[50]);
        h.observe(49);
        h.observe(50);
        h.observe(51);
        let s = h.snapshot();
        assert_eq!(s.underflow, 1);
        assert!(s.buckets.is_empty());
        assert_eq!(s.overflow, 2);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let s = HistogramSnapshot::empty(&[1, 2, 3]);
        assert_eq!(s.underflow, 0);
        assert_eq!(s.buckets, vec![0, 0]);
        assert_eq!(s.overflow, 0);
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_edges_are_rejected() {
        let _ = Histogram::new(&[5, 5]);
    }

    #[test]
    fn merge_requires_matching_edges() {
        let a = HistogramSnapshot::empty(&[1, 2]);
        let b = HistogramSnapshot::empty(&[1, 3]);
        assert!(a.merge(&b).is_none());
        let c = a.merge(&a).unwrap();
        assert_eq!(c.count, 0);
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("t.z.last").add(2);
        r.counter("t.a.first").add(1);
        r.gauge("t.g").set(-4);
        r.histogram("t.h", &[10, 20]).observe(15);
        r.timer("t.t").observe(Duration::from_millis(3));
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"t.a.first\":1,\"t.z.last\":2},\
             \"gauges\":{\"t.g\":-4},\
             \"histograms\":{\"t.h\":{\"edges\":[10,20],\"underflow\":0,\
             \"buckets\":[1],\"overflow\":0,\"count\":1,\"sum\":15}},\
             \"timers\":{\"t.t\":{\"count\":1}}}"
        );
        // Timers serialize counts only: re-observing a different wall
        // time changes nothing but the count.
        r.timer("t.t").observe(Duration::from_millis(999));
        assert!(r.snapshot().to_json().contains("\"t.t\":{\"count\":2}"));
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_valid() {
        let r = Registry::new();
        let c = r.counter("t.reset.count");
        c.add(9);
        let h = r.histogram("t.reset.h", &[5]);
        h.observe(100);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc(); // the old handle still feeds the registry
        assert_eq!(r.snapshot().counter("t.reset.count"), 1);
    }

    #[test]
    fn timer_accumulates_nanoseconds() {
        let t = Timer::default();
        t.observe(Duration::from_micros(2));
        t.observe(Duration::from_micros(3));
        let s = t.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 5_000);
    }
}
