//! # towerlens-obs
//!
//! Dependency-free observability for the towerlens workspace: a
//! thread-safe [`Registry`] of named metrics plus a structured
//! [`SpanEvent`] record for per-stage execution traces.
//!
//! The registry holds four metric kinds, all lock-free on the hot
//! path (handles are `Arc`s over atomics; the registry lock is taken
//! only at registration and snapshot time):
//!
//! * [`Counter`] — a monotonic `u64` (records ingested, distance
//!   evaluations, butterflies).
//! * [`Gauge`] — a settable `i64` (current shard count, last run's
//!   cluster count).
//! * [`Histogram`] — fixed-bucket distribution of `u64` observations
//!   with explicit underflow/overflow buckets (record sizes, vector
//!   lengths).
//! * [`Timer`] — an observation count plus accumulated nanoseconds
//!   (per-stage wall time).
//!
//! Naming convention: `crate.subsystem.metric`, e.g.
//! `cluster.distance.evaluations`. Most names are compile-time
//! constants; the engine additionally registers one timer per stage
//! (`core.engine.stage.<name>`) at runtime. Snapshots sort by name,
//! so dumps are stable regardless of registration order.
//!
//! **Determinism contract.** [`Snapshot::to_json`] emits counters,
//! gauges, and histograms in full but serializes timers as their
//! observation *count* only — wall-clock nanoseconds never enter the
//! metrics JSON. Two runs over identical seeded inputs therefore
//! produce byte-identical metrics dumps; wall times travel separately
//! in the span log ([`spans_to_json`]) and the bench harness output,
//! where nondeterminism is expected.
//!
//! Hot paths instrument themselves against the process-wide
//! [`global`] registry through [`LazyCounter`] handles (one
//! `OnceLock` lookup, then a plain atomic add), so library APIs keep
//! their signatures. Unit tests needing exact isolation construct
//! their own [`Registry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod registry;

pub use events::{spans_to_json, SpanEvent};
pub use registry::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, LazyCounter, LazyHistogram, Registry,
    Snapshot, Timer, TimerSnapshot,
};
