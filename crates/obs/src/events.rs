//! Structured stage-span events.
//!
//! A [`SpanEvent`] is one stage execution as seen by the engine
//! runner: name, wave, final status, start/end offsets relative to
//! run start, the stage's cardinality cards (records ingested, bytes
//! processed, …), and the error message for failed stages. The CLI
//! dumps the span log with `--trace-events <path>`.
//!
//! Offsets are microseconds from run start rather than absolute
//! timestamps, so logs from different runs line up when diffed and
//! no wall-clock epoch leaks into the output.

/// One stage execution span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (e.g. `vectorize`).
    pub name: String,
    /// Scheduler wave the stage ran in.
    pub wave: u64,
    /// Final status label: `ran`, `cached`, `skipped`, `failed`, or
    /// `pruned`.
    pub status: String,
    /// Microseconds from run start to stage start.
    pub start_us: u64,
    /// Microseconds from run start to stage end (`start_us` for
    /// stages that did no work, e.g. pruned ones).
    pub end_us: u64,
    /// Cardinality cards attached by the stage (label, value).
    pub cards: Vec<(String, u64)>,
    /// Error message when `status` is `failed`.
    pub error: Option<String>,
    /// Execution attempts the stage consumed (1 for a clean run, +1
    /// per supervised retry; 0 for stages that did no work).
    pub attempts: u64,
}

impl SpanEvent {
    /// The span's wall time in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Serializes a span log as a stable JSON document:
/// `{"spans":[{...},{...}]}` in execution order.
pub fn spans_to_json(spans: &[SpanEvent]) -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"wave\":{},\"status\":\"{}\",\"start_us\":{},\"end_us\":{},\"attempts\":{}",
            json_escape(&s.name),
            s.wave,
            json_escape(&s.status),
            s.start_us,
            s.end_us,
            s.attempts
        ));
        out.push_str(",\"cards\":{");
        for (j, (label, value)) in s.cards.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(label), value));
        }
        out.push('}');
        if let Some(err) = &s.error {
            out.push_str(&format!(",\"error\":\"{}\"", json_escape(err)));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanEvent {
        SpanEvent {
            name: "vectorize".into(),
            wave: 1,
            status: "ran".into(),
            start_us: 120,
            end_us: 4_520,
            cards: vec![("records".into(), 960), ("bytes".into(), 61_440)],
            error: None,
            attempts: 1,
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(sample().duration_us(), 4_400);
    }

    #[test]
    fn spans_serialize_in_order_with_cards() {
        let failed = SpanEvent {
            name: "cluster".into(),
            wave: 2,
            status: "failed".into(),
            start_us: 4_520,
            end_us: 4_530,
            cards: vec![],
            error: Some("boom \"quoted\"".into()),
            attempts: 3,
        };
        let json = spans_to_json(&[sample(), failed]);
        assert_eq!(
            json,
            "{\"spans\":[\
             {\"name\":\"vectorize\",\"wave\":1,\"status\":\"ran\",\
             \"start_us\":120,\"end_us\":4520,\"attempts\":1,\
             \"cards\":{\"records\":960,\"bytes\":61440}},\
             {\"name\":\"cluster\",\"wave\":2,\"status\":\"failed\",\
             \"start_us\":4520,\"end_us\":4530,\"attempts\":3,\"cards\":{},\
             \"error\":\"boom \\\"quoted\\\"\"}\
             ]}"
        );
    }

    #[test]
    fn empty_log_is_valid_json() {
        assert_eq!(spans_to_json(&[]), "{\"spans\":[]}");
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd\x01"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
