//! Thread-safety contract of the metrics registry: concurrent writers
//! through shared handles lose nothing, and histogram snapshot merges
//! behave like an abelian monoid (order-independent and associative),
//! which is what lets per-shard snapshots be folded in any order.

use std::thread;
use std::time::Duration;

use towerlens_obs::{HistogramSnapshot, Registry};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 10_000;
const EDGES: &[u64] = &[10, 100, 1_000];

#[test]
fn eight_writer_threads_produce_exact_totals() {
    let registry = Registry::new();
    thread::scope(|s| {
        for t in 0..THREADS {
            let registry = &registry;
            s.spawn(move || {
                // Half the handles are grabbed inside the loop, half
                // outside, so both get-or-register contention and
                // plain atomic contention are exercised.
                let shared = registry.counter("test.shared");
                let own = registry.counter(&format!("test.thread_{t}"));
                let histogram = registry.histogram("test.latency", EDGES);
                for i in 0..PER_THREAD {
                    shared.add(2);
                    own.inc();
                    registry.gauge("test.inflight").add(1);
                    histogram.observe(i % 1_500);
                    registry.timer("test.step").observe(Duration::from_nanos(5));
                }
            });
        }
    });

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("test.shared"), THREADS * PER_THREAD * 2);
    for t in 0..THREADS {
        assert_eq!(snapshot.counter(&format!("test.thread_{t}")), PER_THREAD);
    }
    assert_eq!(
        snapshot.gauges["test.inflight"],
        (THREADS * PER_THREAD) as i64
    );

    let h = &snapshot.histograms["test.latency"];
    assert_eq!(h.count, THREADS * PER_THREAD);
    // Every thread observes the same i % 1500 sequence; recompute one
    // thread's routing single-threaded and scale up.
    let mut expected = HistogramSnapshot::empty(EDGES);
    let mut expected_sum = 0u64;
    for i in 0..PER_THREAD {
        let v = i % 1_500;
        expected_sum += v;
        match EDGES.iter().position(|&e| v < e) {
            Some(0) => expected.underflow += 1,
            Some(b) => expected.buckets[b - 1] += 1,
            None => expected.overflow += 1,
        }
    }
    assert_eq!(h.underflow, THREADS * expected.underflow);
    assert_eq!(
        h.buckets,
        expected
            .buckets
            .iter()
            .map(|&b| THREADS * b)
            .collect::<Vec<_>>()
    );
    assert_eq!(h.overflow, THREADS * expected.overflow);
    assert_eq!(h.sum, THREADS * expected_sum);

    let timer = &snapshot.timers["test.step"];
    assert_eq!(timer.count, THREADS * PER_THREAD);
    assert_eq!(timer.total_ns, THREADS * PER_THREAD * 5);
}

#[test]
fn concurrent_first_registration_yields_one_metric() {
    let registry = Registry::new();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let registry = &registry;
            s.spawn(move || {
                // All threads race to register the same name; every
                // one must land on the same underlying counter.
                registry.counter("test.raced").inc();
            });
        }
    });
    assert_eq!(registry.snapshot().counter("test.raced"), THREADS);
}

mod merge_properties {
    use super::EDGES;
    use proptest::prelude::*;
    use towerlens_obs::{Histogram, HistogramSnapshot};

    fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new(EDGES);
        for &v in values {
            h.observe(v);
        }
        h.snapshot()
    }

    fn observations() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..5_000, 0..40)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn merge_is_order_independent(a in observations(), b in observations()) {
            let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
            prop_assert_eq!(sa.merge(&sb).unwrap(), sb.merge(&sa).unwrap());
        }

        #[test]
        fn merge_is_associative(
            a in observations(),
            b in observations(),
            c in observations(),
        ) {
            let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
            let left = sa.merge(&sb).unwrap().merge(&sc).unwrap();
            let right = sa.merge(&sb.merge(&sc).unwrap()).unwrap();
            prop_assert_eq!(left, right);
        }

        #[test]
        fn merge_equals_merged_observation_stream(
            a in observations(),
            b in observations(),
        ) {
            // Shard-then-merge must equal observing everything on one
            // histogram — the whole point of mergeable snapshots.
            let merged = snapshot_of(&a).merge(&snapshot_of(&b)).unwrap();
            let combined: Vec<u64> = a.iter().chain(&b).copied().collect();
            prop_assert_eq!(merged, snapshot_of(&combined));
        }

        #[test]
        fn empty_is_the_identity(a in observations()) {
            let s = snapshot_of(&a);
            prop_assert_eq!(s.merge(&HistogramSnapshot::empty(EDGES)).unwrap(), s);
        }
    }
}
