//! The parallel aggregation phase.
//!
//! Towers are partitioned into shards; a cheap serial pass buckets
//! record indices by shard; scoped worker threads then aggregate each
//! shard independently (no shared mutable state, so no locks on the
//! hot path and bit-identical output for any worker count).

use towerlens_obs::{LazyCounter, LazyHistogram};
use towerlens_trace::error::TraceError;
use towerlens_trace::quarantine::{FaultPolicy, QuarantineReport};
use towerlens_trace::record::LogRecord;
use towerlens_trace::time::TraceWindow;

use crate::impute::{impute_outages, ImputeConfig, ImputeReport};
use crate::normalize::{normalize_matrix, NormalizedMatrix};

/// Records vectorized, across all runs.
static RECORDS: LazyCounter = LazyCounter::new("pipeline.vectorize.records");
/// Traffic bytes vectorized, across all runs.
static BYTES: LazyCounter = LazyCounter::new("pipeline.vectorize.bytes");
/// Per-record byte-size distribution (decade buckets).
static RECORD_BYTES: LazyHistogram = LazyHistogram::new(
    "pipeline.vectorize.record_bytes",
    &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000],
);
/// Outage bins repaired by imputation, across all runs.
static BINS_IMPUTED: LazyCounter = LazyCounter::new("pipeline.impute.bins_imputed");
/// Towers with at least one imputed bin, across all runs.
static TOWERS_AFFECTED: LazyCounter = LazyCounter::new("pipeline.impute.towers_affected");

/// Statistics of a vectorizer run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VectorizerReport {
    /// Records ingested.
    pub records: usize,
    /// Total bytes across all records (before window clipping).
    pub bytes: f64,
    /// Towers with at least one record.
    pub active_towers: usize,
    /// Towers dropped at normalisation (zero variance).
    pub dead_towers: usize,
    /// Outage-imputation statistics (all zero when imputation is off).
    pub imputation: ImputeReport,
}

/// Fault handling for a vectorizer run: what to do with records
/// referencing unknown towers, and whether to repair outages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VectorizerOptions {
    /// Tolerance for unknown-cell records: within tolerance they are
    /// quarantined; past it the run fails closed (per the policy).
    pub policy: FaultPolicy,
    /// Outage detection + imputation; `None` disables it.
    pub impute: Option<ImputeConfig>,
}

/// The vectorizer's full output.
#[derive(Debug, Clone)]
pub struct VectorizerOutput {
    /// Raw per-tower binned traffic (tower id × bin), bytes — after
    /// imputation when enabled.
    pub raw: Vec<Vec<f64>>,
    /// Z-scored vectors with provenance (kept/dropped/imputed).
    pub normalized: NormalizedMatrix,
    /// Run statistics.
    pub report: VectorizerReport,
    /// Records quarantined on the way in (empty for [`Vectorizer::run`],
    /// which predates the policy and rejects bad records outright).
    pub quarantine: QuarantineReport,
}

/// The parallel traffic vectorizer.
#[derive(Debug, Clone)]
pub struct Vectorizer {
    window: TraceWindow,
    threads: usize,
}

impl Vectorizer {
    /// Creates a vectorizer over a binning window using `threads`
    /// workers (`0` = available parallelism).
    pub fn new(window: TraceWindow, threads: usize) -> Self {
        Vectorizer { window, threads }
    }

    /// The binning window.
    pub fn window(&self) -> &TraceWindow {
        &self.window
    }

    /// Runs both phases over a record batch.
    ///
    /// ```
    /// use towerlens_pipeline::Vectorizer;
    /// use towerlens_trace::{LogRecord, TraceWindow};
    ///
    /// let window = TraceWindow::days(1);
    /// let records = vec![LogRecord {
    ///     user_id: 1,
    ///     start_s: window.start_s,
    ///     end_s: window.start_s + 600,
    ///     cell_id: 0,
    ///     address: "BLK-1-1 Rd".into(),
    ///     bytes: 1_000,
    /// }];
    /// let out = Vectorizer::new(window, 2).run(&records, 2)?;
    /// assert_eq!(out.raw[0].iter().sum::<f64>(), 1_000.0);
    /// assert_eq!(out.normalized.dropped, vec![1]); // silent tower dropped
    /// # Ok::<(), towerlens_trace::TraceError>(())
    /// ```
    ///
    /// # Errors
    /// * [`TraceError::EmptyWindow`] for a degenerate window,
    /// * [`TraceError::UnknownCell`] if any record references a tower
    ///   id ≥ `n_towers`,
    /// * [`TraceError::Normalization`] if aggregation produced
    ///   non-finite traffic (the cause is preserved in the message).
    pub fn run(
        &self,
        records: &[LogRecord],
        n_towers: usize,
    ) -> Result<VectorizerOutput, TraceError> {
        let raw = self.aggregate(records, n_towers)?;
        self.finish(raw, records, None, QuarantineReport::default())
    }

    /// Like [`Vectorizer::run`], but fault-tolerant: records
    /// referencing unknown towers are quarantined under
    /// `options.policy` instead of failing the run outright, and
    /// outage windows are detected and imputed when `options.impute`
    /// is set.
    ///
    /// # Errors
    /// * [`TraceError::QuarantineOverflow`] when the unknown-cell
    ///   fraction crosses the policy threshold and the policy fails
    ///   closed,
    /// * otherwise as for [`Vectorizer::run`].
    pub fn run_with(
        &self,
        records: &[LogRecord],
        n_towers: usize,
        options: &VectorizerOptions,
    ) -> Result<VectorizerOutput, TraceError> {
        let mut quarantine = QuarantineReport {
            total: records.len(),
            ..QuarantineReport::default()
        };
        let mut good: Vec<LogRecord> = Vec::with_capacity(records.len());
        for r in records {
            if (r.cell_id as usize) < n_towers {
                good.push(r.clone());
            } else {
                quarantine.note(&TraceError::UnknownCell {
                    cell_id: r.cell_id,
                    count: n_towers,
                });
            }
        }
        options.policy.enforce(&quarantine)?;
        let raw = self.aggregate(&good, n_towers)?;
        self.finish(raw, &good, options.impute.as_ref(), quarantine)
    }

    /// Shared back half of `run`/`run_with`: optional imputation, then
    /// normalisation with provenance threading.
    fn finish(
        &self,
        mut raw: Vec<Vec<f64>>,
        records: &[LogRecord],
        impute: Option<&ImputeConfig>,
        quarantine: QuarantineReport,
    ) -> Result<VectorizerOutput, TraceError> {
        let (masks, imputation) = match impute {
            Some(config) => impute_outages(&mut raw, &self.window, config),
            None => (vec![Vec::new(); raw.len()], ImputeReport::default()),
        };
        let mut normalized = normalize_matrix(&raw).map_err(|e| TraceError::Normalization {
            message: e.to_string(),
        })?;
        // Map per-tower masks into kept order so provenance follows
        // the vectors downstream.
        normalized.imputed = normalized
            .kept_ids
            .iter()
            .map(|&id| masks[id].clone())
            .collect();
        let active_towers = raw
            .iter()
            .filter(|row| row.iter().any(|&v| v > 0.0))
            .count();
        let mut total_bytes = 0u64;
        for r in records {
            total_bytes += r.bytes;
            RECORD_BYTES.observe(r.bytes);
        }
        RECORDS.add(records.len() as u64);
        BYTES.add(total_bytes);
        BINS_IMPUTED.add(imputation.bins_imputed as u64);
        TOWERS_AFFECTED.add(imputation.towers_affected as u64);
        let report = VectorizerReport {
            records: records.len(),
            bytes: total_bytes as f64,
            active_towers,
            dead_towers: normalized.dropped.len(),
            imputation,
        };
        Ok(VectorizerOutput {
            raw,
            normalized,
            report,
            quarantine,
        })
    }

    /// Phase one only: the parallel aggregation.
    ///
    /// # Errors
    /// As for [`Vectorizer::run`].
    pub fn aggregate(
        &self,
        records: &[LogRecord],
        n_towers: usize,
    ) -> Result<Vec<Vec<f64>>, TraceError> {
        if self.window.n_bins == 0 || self.window.bin_secs == 0 {
            return Err(TraceError::EmptyWindow);
        }
        // Validate cell ids up front so workers can't fail mid-flight.
        for r in records {
            if r.cell_id as usize >= n_towers {
                return Err(TraceError::UnknownCell {
                    cell_id: r.cell_id,
                    count: n_towers,
                });
            }
        }

        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let shards = threads.min(n_towers.max(1));

        let mut matrix = vec![vec![0.0f64; self.window.n_bins]; n_towers];
        if shards <= 1 {
            for r in records {
                let row = &mut matrix[r.cell_id as usize];
                self.window
                    .for_each_overlap(r.start_s, r.end_s, |bin, frac| {
                        row[bin] += r.bytes as f64 * frac;
                    });
            }
            return Ok(matrix);
        }

        // Bucket record indices by shard (shard = contiguous tower
        // range, so the output matrix can be split into disjoint
        // mutable chunks).
        let shard_size = n_towers.div_ceil(shards);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (i, r) in records.iter().enumerate() {
            buckets[r.cell_id as usize / shard_size].push(i);
        }

        let window = &self.window;
        std::thread::scope(|scope| {
            for (shard, (bucket, rows)) in buckets
                .iter()
                .zip(matrix.chunks_mut(shard_size))
                .enumerate()
            {
                scope.spawn(move || {
                    let base = shard * shard_size;
                    for &idx in bucket {
                        let r = &records[idx];
                        let row = &mut rows[r.cell_id as usize - base];
                        window.for_each_overlap(r.start_s, r.end_s, |bin, frac| {
                            row[bin] += r.bytes as f64 * frac;
                        });
                    }
                });
            }
        });
        Ok(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_trace::binning::aggregate as reference_aggregate;

    fn synth_records(n: usize, n_towers: u32, window: &TraceWindow) -> Vec<LogRecord> {
        (0..n as u64)
            .map(|i| {
                let span = window.end_s() - window.start_s;
                let start = window.start_s + (i * 48_271) % span;
                LogRecord {
                    user_id: i % 500,
                    start_s: start,
                    end_s: start + (i * 131) % 3_600,
                    cell_id: (i % n_towers as u64) as u32,
                    address: format!("BLK-{i}-0 Rd"),
                    bytes: 1 + (i * 2_654_435_761) % 1_000_000,
                }
            })
            .collect()
    }

    #[test]
    fn matches_reference_exactly() {
        let w = TraceWindow::days(3);
        let records = synth_records(5_000, 37, &w);
        let reference = reference_aggregate(&records, 37, &w).unwrap();
        for threads in [1, 2, 4, 8] {
            let v = Vectorizer::new(w, threads);
            let parallel = v.aggregate(&records, 37).unwrap();
            assert_eq!(parallel.len(), reference.len());
            for (tower, (a, b)) in parallel.iter().zip(&reference).enumerate() {
                for (bin, (x, y)) in a.iter().zip(b).enumerate() {
                    assert!(
                        (x - y).abs() < 1e-9,
                        "threads={threads} tower={tower} bin={bin}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_produces_normalized_output() {
        let w = TraceWindow::days(2);
        let records = synth_records(2_000, 10, &w);
        let out = Vectorizer::new(w, 4).run(&records, 12).unwrap();
        assert_eq!(out.raw.len(), 12);
        // Towers 10, 11 got no records → zero variance → dropped.
        assert_eq!(out.normalized.dropped, vec![10, 11]);
        assert_eq!(out.normalized.len(), 10);
        assert_eq!(out.report.records, 2_000);
        assert_eq!(out.report.active_towers, 10);
        assert_eq!(out.report.dead_towers, 2);
        for v in &out.normalized.vectors {
            let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn unknown_cell_rejected_before_spawning() {
        let w = TraceWindow::days(1);
        let mut records = synth_records(10, 4, &w);
        records[3].cell_id = 99;
        let v = Vectorizer::new(w, 4);
        assert_eq!(
            v.aggregate(&records, 4),
            Err(TraceError::UnknownCell {
                cell_id: 99,
                count: 4
            })
        );
    }

    #[test]
    fn empty_records_and_towers() {
        let w = TraceWindow::days(1);
        let v = Vectorizer::new(w, 2);
        let m = v.aggregate(&[], 3).unwrap();
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|row| row.iter().all(|&x| x == 0.0)));
        let m = v.aggregate(&[], 0).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn degenerate_window_rejected() {
        let w = TraceWindow {
            start_s: 0,
            bin_secs: 0,
            n_bins: 10,
        };
        assert_eq!(
            Vectorizer::new(w, 1).aggregate(&[], 1),
            Err(TraceError::EmptyWindow)
        );
    }

    #[test]
    fn run_with_quarantines_unknown_cells_under_threshold() {
        let w = TraceWindow::days(1);
        let mut records = synth_records(100, 4, &w);
        records[7].cell_id = 99; // 1% bad: under the default 5%
        let options = VectorizerOptions::default();
        let out = Vectorizer::new(w, 2)
            .run_with(&records, 4, &options)
            .unwrap();
        assert_eq!(out.quarantine.unknown_cell, 1);
        assert_eq!(out.quarantine.total, 100);
        assert_eq!(out.report.records, 99); // the bad record never aggregated
                                            // Strict run on the same batch fails outright.
        assert!(matches!(
            Vectorizer::new(w, 2).run(&records, 4),
            Err(TraceError::UnknownCell { cell_id: 99, .. })
        ));
    }

    #[test]
    fn run_with_fails_closed_past_threshold() {
        let w = TraceWindow::days(1);
        let mut records = synth_records(10, 4, &w);
        records[0].cell_id = 50;
        records[1].cell_id = 51; // 20% bad
        let err = Vectorizer::new(w, 2)
            .run_with(&records, 4, &VectorizerOptions::default())
            .unwrap_err();
        assert_eq!(err, TraceError::QuarantineOverflow { bad: 2, total: 10 });
    }

    #[test]
    fn run_with_imputes_blackouts_and_threads_provenance() {
        use crate::impute::ImputeConfig;

        let w = TraceWindow::days(7);
        // Dense coverage: one record per (tower, bin).
        let mut records = Vec::new();
        for tower in 0..3u32 {
            for bin in 0..w.n_bins {
                records.push(LogRecord {
                    user_id: tower as u64,
                    start_s: w.bin_start(bin),
                    end_s: w.bin_start(bin) + 600,
                    cell_id: tower,
                    address: format!("BLK-1-{tower} Rd"),
                    bytes: 1_000 + (bin % 7) as u64,
                });
            }
        }
        // Tower 1 goes dark for day 2 (drop its records).
        let dark = (2 * 144, 3 * 144);
        records.retain(|r| {
            r.cell_id != 1
                || w.bin_of(r.start_s)
                    .is_none_or(|b| b < dark.0 || b >= dark.1)
        });
        let options = VectorizerOptions {
            impute: Some(ImputeConfig::default()),
            ..VectorizerOptions::default()
        };
        let out = Vectorizer::new(w, 2)
            .run_with(&records, 3, &options)
            .unwrap();
        assert_eq!(out.report.imputation.towers_affected, 1);
        assert_eq!(out.report.imputation.bins_imputed, 144);
        // Provenance follows the kept order.
        let kept_pos = out
            .normalized
            .kept_ids
            .iter()
            .position(|&id| id == 1)
            .unwrap();
        assert_eq!(out.normalized.imputed[kept_pos].len(), 144);
        assert!(out.normalized.imputed[kept_pos]
            .iter()
            .all(|&b| b >= dark.0 && b < dark.1));
        for (i, mask) in out.normalized.imputed.iter().enumerate() {
            if i != kept_pos {
                assert!(mask.is_empty());
            }
        }
        // The blacked-out day was repaired with plausible traffic.
        assert!(out.raw[1][dark.0..dark.1].iter().all(|&v| v > 0.0));
    }

    #[test]
    fn run_with_matches_run_when_no_faults() {
        let w = TraceWindow::days(2);
        let records = synth_records(1_000, 8, &w);
        let v = Vectorizer::new(w, 4);
        let plain = v.run(&records, 8).unwrap();
        let policed = v
            .run_with(&records, 8, &VectorizerOptions::default())
            .unwrap();
        assert_eq!(plain.raw, policed.raw);
        assert_eq!(plain.normalized, policed.normalized);
        assert!(policed.quarantine.is_clean());
    }

    #[test]
    fn more_threads_than_towers_is_fine() {
        let w = TraceWindow::days(1);
        let records = synth_records(100, 2, &w);
        let out = Vectorizer::new(w, 16).aggregate(&records, 2).unwrap();
        let reference = reference_aggregate(&records, 2, &w).unwrap();
        assert_eq!(out, reference);
    }
}
