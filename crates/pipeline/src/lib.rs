//! # towerlens-pipeline
//!
//! The parallel *traffic vectorizer* — the stand-in for the paper's
//! Hadoop deployment (§3.2).
//!
//! The paper's vectorizer is "a parallel transformer, which takes the
//! time-domain traffic logs of thousands of cellular towers as its
//! input and converts each cell tower's logs into a time-domain
//! traffic vector" in two phases: **aggregation** (10-minute chunks)
//! and **normalisation** (z-score). This crate reproduces both phases
//! over scoped worker threads:
//!
//! 1. a single cheap pass partitions record indices by tower shard,
//! 2. workers aggregate their shards into dense per-tower rows
//!    (the semantics are defined by — and tested for exact equality
//!    against — the single-threaded reference in
//!    `towerlens_trace::binning`),
//! 3. workers z-score the rows; towers with zero variance (dead
//!    towers, which a z-score cannot represent) are dropped and
//!    reported, mirroring the paper's data cleaning.
//!
//! Output is bit-identical for any worker count.
//!
//! On top of the two phases, [`vectorizer::Vectorizer::run_with`]
//! adds fault tolerance: unknown-cell records are quarantined under a
//! [`towerlens_trace::quarantine::FaultPolicy`] instead of aborting,
//! and [`impute`] detects per-tower outage windows (long zero runs on
//! an otherwise-live tower) and repairs them from the tower's own
//! daily/weekly periodicity, threading imputed-bin provenance through
//! [`NormalizedMatrix::imputed`].
//!
//! Downstream of normalisation, [`feature`] names the representation
//! the clustering stage sees — the raw traffic vector or its 6-dim
//! spectral projection ([`FeatureSpace`]) — and [`matrix`] packs
//! operator-scale raw matrices into chunked f32 storage
//! ([`TowerMatrix`]) so 100k × 4,032 inputs fit in memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod feature;
pub mod impute;
pub mod matrix;
pub mod normalize;
pub mod vectorizer;

pub use feature::{principal_bins, spectral_project, FeatureSpace, SPECTRAL_AUTO_MIN};
pub use impute::{impute_outages, ImputeConfig, ImputeReport};
pub use matrix::TowerMatrix;
pub use normalize::{normalize_matrix, NormalizedMatrix};
pub use vectorizer::{Vectorizer, VectorizerOptions, VectorizerOutput, VectorizerReport};
