//! Phase-two normalisation: z-score every tower's row, dropping
//! towers whose traffic a z-score cannot represent.

use towerlens_dsp::normalize::zscore;
use towerlens_dsp::DspError;
use towerlens_obs::LazyCounter;

/// Towers z-scored and kept, across all normalisation passes.
static TOWERS_KEPT: LazyCounter = LazyCounter::new("pipeline.normalize.towers_kept");
/// Zero-variance towers dropped, across all normalisation passes.
static TOWERS_DROPPED: LazyCounter = LazyCounter::new("pipeline.normalize.towers_dropped");

/// A normalised traffic matrix with provenance: which original rows
/// survived.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedMatrix {
    /// Z-scored vectors, one per kept tower, in ascending tower id.
    pub vectors: Vec<Vec<f64>>,
    /// Original row index (tower id) of each kept vector.
    pub kept_ids: Vec<usize>,
    /// Tower ids dropped because their traffic had zero variance
    /// (dead or constant towers).
    pub dropped: Vec<usize>,
    /// Imputed-bin provenance: for each kept vector (same order as
    /// [`NormalizedMatrix::vectors`]), the ascending bin indices whose
    /// raw values were repaired by outage imputation before
    /// normalisation. All-empty when imputation is off.
    pub imputed: Vec<Vec<usize>>,
}

impl NormalizedMatrix {
    /// Number of kept vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// `true` when no tower survived.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Total imputed bins across all kept vectors.
    pub fn imputed_bins(&self) -> usize {
        self.imputed.iter().map(Vec::len).sum()
    }

    /// Packs the kept vectors into chunked f32 storage
    /// ([`crate::matrix::TowerMatrix`]) — the memory-bounded form of
    /// the raw feature space for studies too large to hold as
    /// `Vec<Vec<f64>>` (100k towers × 4,032 bins is 1.6 GB packed vs
    /// 3.2 GB plus per-row allocations unpacked).
    ///
    /// # Errors
    /// [`towerlens_cluster::ClusterError::EmptyInput`] when no tower
    /// survived normalisation; ragged rows cannot occur here (the
    /// vectorizer produces equal-length rows).
    pub fn compact(&self) -> Result<crate::matrix::TowerMatrix, towerlens_cluster::ClusterError> {
        crate::matrix::TowerMatrix::from_rows(&self.vectors)
    }
}

/// Z-scores every row of a raw traffic matrix.
///
/// Rows with zero variance are *dropped* (and listed in
/// [`NormalizedMatrix::dropped`]) rather than erroring: a real trace
/// contains registered-but-dead stations and the paper's cleaning step
/// removes them. Rows containing non-finite samples are an error —
/// that's corruption, not a dead tower.
///
/// # Errors
/// [`DspError::NonFinite`] or [`DspError::EmptyInput`] from row
/// validation.
pub fn normalize_matrix(raw: &[Vec<f64>]) -> Result<NormalizedMatrix, DspError> {
    let mut vectors = Vec::with_capacity(raw.len());
    let mut kept_ids = Vec::with_capacity(raw.len());
    let mut dropped = Vec::new();
    for (id, row) in raw.iter().enumerate() {
        match zscore(row) {
            Ok(v) => {
                vectors.push(v);
                kept_ids.push(id);
            }
            Err(DspError::ZeroVariance) => dropped.push(id),
            Err(e) => return Err(e),
        }
    }
    TOWERS_KEPT.add(kept_ids.len() as u64);
    TOWERS_DROPPED.add(dropped.len() as u64);
    let imputed = vec![Vec::new(); kept_ids.len()];
    Ok(NormalizedMatrix {
        vectors,
        kept_ids,
        dropped,
        imputed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_and_drops_dead_rows() {
        let raw = vec![
            vec![1.0, 2.0, 3.0],
            vec![5.0, 5.0, 5.0], // dead
            vec![0.0, 10.0, 0.0],
        ];
        let out = normalize_matrix(&raw).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.kept_ids, vec![0, 2]);
        assert_eq!(out.dropped, vec![1]);
        for v in &out.vectors {
            let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean.abs() < 1e-12);
        }
    }

    #[test]
    fn corruption_is_an_error_not_a_drop() {
        let raw = vec![vec![1.0, f64::NAN]];
        assert!(matches!(
            normalize_matrix(&raw),
            Err(DspError::NonFinite { .. })
        ));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let out = normalize_matrix(&[]).unwrap();
        assert!(out.is_empty());
        assert!(out.dropped.is_empty());
    }

    #[test]
    fn empty_row_is_an_error() {
        assert!(matches!(
            normalize_matrix(&[vec![]]),
            Err(DspError::EmptyInput)
        ));
    }
}
