//! Feature spaces: which representation of a tower the clustering
//! stage sees.
//!
//! The paper clusters raw 4,032-bin traffic vectors — fine at city
//! scale on a Hadoop deployment, but the O(n²) distance work over
//! 4,032 dimensions is what pinned our committed bench at 240 towers.
//! The paper's own §4 observation (the three principal frequency
//! components retain >94% of signal energy) licenses a 6-dim
//! alternative: each tower's `(amplitude, phase)` pair at the weekly,
//! daily and half-daily lines. [`FeatureSpace`] names the choice and
//! threads it from the CLI down to the cluster stage; a golden test in
//! `towerlens-core` pins the spectral space to the raw-space reference
//! by Adjusted Rand Index at small n.

use std::fmt;
use std::str::FromStr;

use towerlens_dsp::goertzel::{goertzel_feature_sharded, record_evaluations};
use towerlens_dsp::DspError;
use towerlens_trace::time::TraceWindow;

/// Tower count at which [`FeatureSpace::Auto`] switches from raw to
/// spectral clustering.
///
/// Below this the materialised raw-space path is cheap (a 2,048-tower
/// condensed matrix is 16 MiB) and stays bit-identical to the
/// pre-refactor pipeline; at or above it the O(n²·4032) distance work
/// dominates the study and the 6-dim spectral space takes over. The
/// paper's 9,600 towers land firmly on the spectral side.
pub const SPECTRAL_AUTO_MIN: usize = 2048;

/// The representation in which towers are clustered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeatureSpace {
    /// The full normalised traffic vector (4,032-dim at the paper
    /// window). The reference representation: every study below
    /// [`SPECTRAL_AUTO_MIN`] towers reproduces the pre-refactor
    /// pipeline bit for bit.
    Raw,
    /// The 6-dim spectral projection `(A_w, P_w, A_d, P_d, A_h, P_h)`
    /// at the window's principal bins — the representation that
    /// carries paper scale (9,600 towers) and beyond.
    Spectral,
    /// Decide per run: [`FeatureSpace::Spectral`] at or above
    /// [`SPECTRAL_AUTO_MIN`] towers, [`FeatureSpace::Raw`] below.
    #[default]
    Auto,
}

impl FeatureSpace {
    /// Resolves `Auto` against a tower count; `Raw` and `Spectral`
    /// return themselves.
    pub fn resolve(self, n_towers: usize) -> FeatureSpace {
        match self {
            FeatureSpace::Auto => {
                if n_towers >= SPECTRAL_AUTO_MIN {
                    FeatureSpace::Spectral
                } else {
                    FeatureSpace::Raw
                }
            }
            fixed => fixed,
        }
    }
}

impl fmt::Display for FeatureSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FeatureSpace::Raw => "raw",
            FeatureSpace::Spectral => "spectral",
            FeatureSpace::Auto => "auto",
        })
    }
}

impl FromStr for FeatureSpace {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "raw" => Ok(FeatureSpace::Raw),
            "spectral" => Ok(FeatureSpace::Spectral),
            "auto" => Ok(FeatureSpace::Auto),
            other => Err(format!(
                "unknown feature space '{other}' (expected raw, spectral or auto)"
            )),
        }
    }
}

/// The three principal frequency bins of a window — `(week, day,
/// half-day)` — or `None` when the window does not span a whole number
/// of weeks (the weekly line then has no integer bin to sit on).
pub fn principal_bins(window: &TraceWindow) -> Option<[usize; 3]> {
    let total_secs = window.n_bins as u64 * window.bin_secs;
    const WEEK_SECS: u64 = 7 * 86_400;
    let weeks = total_secs / WEEK_SECS;
    if weeks == 0 || !total_secs.is_multiple_of(WEEK_SECS) {
        return None;
    }
    let w = weeks as usize;
    Some([w, 7 * w, 14 * w])
}

/// Projects every tower vector onto the 6-dim spectral feature space
/// `(A_w, P_w, A_d, P_d, A_h, P_h)` at the given principal bins.
///
/// Amplitudes are normalised by the vector length so they are
/// comparable across window lengths — the same convention as the
/// feature extraction in `towerlens-core`. Fanned out over towers via
/// `towerlens_par` (`threads == 0` means available parallelism); every
/// tower lands in its own output slot and Goertzel evaluations are
/// tallied in worker-private shards merged once at the end, so both
/// the projection and the `dsp.goertzel.evaluations` counter are
/// bit-identical for every thread count.
///
/// # Errors
/// [`DspError::BinOutOfRange`] if a bin is not below a vector's
/// length, [`DspError::EmptyInput`] for an empty vector.
pub fn spectral_project(
    vectors: &[Vec<f64>],
    bins: [usize; 3],
    threads: usize,
) -> Result<Vec<Vec<f64>>, DspError> {
    let [kw, kd, kh] = bins;
    let (out, tallies) =
        towerlens_par::par_map_indexed_tally(vectors, threads, 1, |_, v, shard| {
            let n = v.len() as f64;
            let (aw, pw) = goertzel_feature_sharded(v, kw, &mut shard[0])?;
            let (ad, pd) = goertzel_feature_sharded(v, kd, &mut shard[0])?;
            let (ah, ph) = goertzel_feature_sharded(v, kh, &mut shard[0])?;
            Ok::<Vec<f64>, DspError>(vec![aw / n, pw, ad / n, pd, ah / n, ph])
        });
    record_evaluations(tallies[0]);
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_by_tower_count() {
        assert_eq!(FeatureSpace::Auto.resolve(240), FeatureSpace::Raw);
        assert_eq!(
            FeatureSpace::Auto.resolve(SPECTRAL_AUTO_MIN - 1),
            FeatureSpace::Raw
        );
        assert_eq!(
            FeatureSpace::Auto.resolve(SPECTRAL_AUTO_MIN),
            FeatureSpace::Spectral
        );
        assert_eq!(FeatureSpace::Auto.resolve(9_600), FeatureSpace::Spectral);
        // Fixed choices ignore the count.
        assert_eq!(FeatureSpace::Raw.resolve(1_000_000), FeatureSpace::Raw);
        assert_eq!(FeatureSpace::Spectral.resolve(3), FeatureSpace::Spectral);
    }

    #[test]
    fn parses_and_displays_round_trip() {
        for space in [
            FeatureSpace::Raw,
            FeatureSpace::Spectral,
            FeatureSpace::Auto,
        ] {
            assert_eq!(space.to_string().parse::<FeatureSpace>(), Ok(space));
        }
        assert!("fourier".parse::<FeatureSpace>().is_err());
    }

    #[test]
    fn principal_bins_need_whole_weeks() {
        assert_eq!(principal_bins(&TraceWindow::days(7)), Some([1, 7, 14]));
        assert_eq!(principal_bins(&TraceWindow::days(14)), Some([2, 14, 28]));
        assert_eq!(principal_bins(&TraceWindow::paper()), Some([4, 28, 56]));
        assert_eq!(principal_bins(&TraceWindow::days(5)), None);
    }

    #[test]
    fn projection_is_six_dim_and_thread_invariant() {
        let window = TraceWindow::days(7);
        let bins = principal_bins(&window).unwrap();
        let n = window.n_bins;
        let vectors: Vec<Vec<f64>> = (0..9)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        let x = i as f64 / n as f64 * std::f64::consts::TAU;
                        (x * 7.0 + t as f64).sin() + 0.25 * (x * 14.0).cos()
                    })
                    .collect()
            })
            .collect();
        let reference = spectral_project(&vectors, bins, 1).unwrap();
        assert_eq!(reference.len(), vectors.len());
        assert!(reference.iter().all(|f| f.len() == 6));
        // The daily line dominates these synthetic towers.
        assert!(reference[0][2] > reference[0][0]);
        for threads in [2usize, 8] {
            let par = spectral_project(&vectors, bins, threads).unwrap();
            for (a, b) in reference.iter().zip(&par) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn projection_rejects_out_of_range_bins() {
        let vectors = vec![vec![1.0, 2.0, 3.0, 4.0]];
        assert!(matches!(
            spectral_project(&vectors, [1, 7, 14], 1),
            Err(DspError::BinOutOfRange { .. })
        ));
    }
}
