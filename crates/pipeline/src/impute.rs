//! Outage detection and periodicity-based imputation.
//!
//! A tower that goes dark mid-window reports zero traffic for the
//! duration of the outage. Left alone, those zero runs drag the
//! tower's mean down and reshape its z-scored vector, which silently
//! moves the tower between clusters (§3). The paper's own finding —
//! traffic is dominated by daily and weekly periodicity (§5, the
//! k=28/k=4 frequency structure) — gives the repair rule: a missing
//! bin is best estimated by the *median of the same time-of-day bin on
//! other days*, preferring same-day-of-week (weekly lag) candidates
//! over plain daily ones.
//!
//! Detection is conservative: only zero runs of at least
//! [`ImputeConfig::min_run`] consecutive bins on a tower that
//! otherwise carries traffic count as outages; isolated zero bins are
//! legitimate quiet periods (3am residential traffic really is near
//! zero), and an all-zero tower is dead, not dark — it stays zero and
//! is dropped at normalisation as before.

use towerlens_trace::time::TraceWindow;

/// Configuration of the outage imputer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImputeConfig {
    /// Minimum consecutive zero bins to classify as an outage
    /// (default 6 bins = one hour).
    pub min_run: usize,
    /// Minimum number of weekly-lag candidates before the weekly
    /// median is trusted over the daily one (default 2).
    pub min_weekly_candidates: usize,
}

impl Default for ImputeConfig {
    fn default() -> Self {
        ImputeConfig {
            min_run: 6,
            min_weekly_candidates: 2,
        }
    }
}

/// Per-run imputation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImputeReport {
    /// Towers with at least one imputed bin.
    pub towers_affected: usize,
    /// Bins imputed across all towers.
    pub bins_imputed: usize,
    /// Outage bins left at zero because no periodic candidate existed.
    pub bins_unrepaired: usize,
}

/// Median of a non-empty slice (even length averages the middle two).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite traffic"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Finds `[start, end)` spans of consecutive zeros of length ≥
/// `min_run`.
fn zero_runs(row: &[f64], min_run: usize) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start = None;
    for (i, &v) in row.iter().enumerate() {
        if v == 0.0 {
            start.get_or_insert(i);
        } else if let Some(s) = start.take() {
            if i - s >= min_run {
                runs.push((s, i));
            }
        }
    }
    if let Some(s) = start {
        if row.len() - s >= min_run {
            runs.push((s, row.len()));
        }
    }
    runs
}

/// Detects per-tower outage windows in a raw traffic matrix and
/// imputes them in place from the tower's own periodic structure.
///
/// Returns the per-tower imputed-bin masks (ascending bin indices;
/// one entry per input row, empty for untouched towers) so provenance
/// can follow the data through normalisation into the stage reports,
/// plus summary statistics.
pub fn impute_outages(
    matrix: &mut [Vec<f64>],
    window: &TraceWindow,
    config: &ImputeConfig,
) -> (Vec<Vec<usize>>, ImputeReport) {
    let per_day = (towerlens_trace::time::DAY_SECS / window.bin_secs.max(1)) as usize;
    let mut masks = vec![Vec::new(); matrix.len()];
    let mut report = ImputeReport::default();
    if per_day == 0 {
        return (masks, report);
    }
    for (tower, row) in matrix.iter_mut().enumerate() {
        if row.iter().all(|&v| v == 0.0) {
            continue; // dead tower, not an outage
        }
        let runs = zero_runs(row, config.min_run);
        if runs.is_empty() {
            continue;
        }
        // Outage membership, so candidates never come from another
        // outage bin of the same tower.
        let mut in_outage = vec![false; row.len()];
        for &(s, e) in &runs {
            for flag in &mut in_outage[s..e] {
                *flag = true;
            }
        }
        let mut repairs: Vec<(usize, f64)> = Vec::new();
        for &(s, e) in &runs {
            for bin in s..e {
                let day = bin / per_day;
                let mut weekly = Vec::new();
                let mut daily = Vec::new();
                // Same time-of-day bin on every other day.
                let mut candidate = bin % per_day;
                while candidate < row.len() {
                    let c_day = candidate / per_day;
                    if candidate != bin && !in_outage[candidate] && row[candidate] > 0.0 {
                        if c_day.abs_diff(day).is_multiple_of(7) {
                            weekly.push(row[candidate]);
                        }
                        daily.push(row[candidate]);
                    }
                    candidate += per_day;
                }
                let value = if weekly.len() >= config.min_weekly_candidates {
                    Some(median(&mut weekly))
                } else if !daily.is_empty() {
                    Some(median(&mut daily))
                } else {
                    None
                };
                match value {
                    Some(v) => repairs.push((bin, v)),
                    None => report.bins_unrepaired += 1,
                }
            }
        }
        if !repairs.is_empty() {
            report.towers_affected += 1;
            report.bins_imputed += repairs.len();
            for &(bin, v) in &repairs {
                row[bin] = v;
                masks[tower].push(bin);
            }
        }
    }
    (masks, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_trace::time::BINS_PER_DAY;

    /// A 14-day periodic tower: value depends on time of day and
    /// weekday/weekend, so weekly structure is present.
    fn periodic_row(window: &TraceWindow) -> Vec<f64> {
        (0..window.n_bins)
            .map(|b| {
                let tod = window.bin_in_day(b) as f64;
                let weekend = if window.is_weekend_bin(b) { 0.5 } else { 1.0 };
                weekend * (100.0 + tod)
            })
            .collect()
    }

    #[test]
    fn outage_is_repaired_with_weekly_median() {
        let w = TraceWindow::days(21);
        let mut matrix = vec![periodic_row(&w)];
        let truth = matrix[0].clone();
        // Black out Tuesday of week 2 (day index 8), whole day.
        let start = 8 * BINS_PER_DAY;
        let end = start + BINS_PER_DAY;
        for v in &mut matrix[0][start..end] {
            *v = 0.0;
        }
        let (masks, report) = impute_outages(&mut matrix, &w, &ImputeConfig::default());
        assert_eq!(report.towers_affected, 1);
        assert_eq!(report.bins_imputed, BINS_PER_DAY);
        assert_eq!(report.bins_unrepaired, 0);
        assert_eq!(masks[0], (start..end).collect::<Vec<_>>());
        // Weekly-lag candidates (Tuesdays of weeks 1 and 3) agree with
        // the truth exactly, so the repair is exact.
        for bin in start..end {
            assert!(
                (matrix[0][bin] - truth[bin]).abs() < 1e-12,
                "bin {bin}: {} vs {}",
                matrix[0][bin],
                truth[bin]
            );
        }
    }

    #[test]
    fn short_zero_runs_are_left_alone() {
        let w = TraceWindow::days(7);
        let mut matrix = vec![periodic_row(&w)];
        // A 3-bin dip: legitimate quiet, not an outage.
        matrix[0][10] = 0.0;
        matrix[0][11] = 0.0;
        matrix[0][12] = 0.0;
        let snapshot = matrix[0].clone();
        let (masks, report) = impute_outages(&mut matrix, &w, &ImputeConfig::default());
        assert_eq!(report.bins_imputed, 0);
        assert!(masks[0].is_empty());
        assert_eq!(matrix[0], snapshot);
    }

    #[test]
    fn dead_towers_are_not_imputed() {
        let w = TraceWindow::days(7);
        let mut matrix = vec![vec![0.0; w.n_bins], periodic_row(&w)];
        let (masks, report) = impute_outages(&mut matrix, &w, &ImputeConfig::default());
        assert_eq!(report.towers_affected, 0);
        assert!(masks[0].is_empty());
        assert!(matrix[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn falls_back_to_daily_median_when_weekly_candidates_scarce() {
        // One week only: a blacked-out day has zero weekly-lag peers,
        // so the daily median must kick in.
        let w = TraceWindow::days(7);
        let mut matrix = vec![periodic_row(&w)];
        let start = 2 * BINS_PER_DAY; // Wednesday
        for v in &mut matrix[0][start..start + BINS_PER_DAY] {
            *v = 0.0;
        }
        let (masks, report) = impute_outages(&mut matrix, &w, &ImputeConfig::default());
        assert_eq!(report.bins_imputed, BINS_PER_DAY);
        assert_eq!(masks[0].len(), BINS_PER_DAY);
        // Every repaired bin took the median over the other six days.
        for v in &matrix[0][start..start + BINS_PER_DAY] {
            assert!(*v > 0.0);
        }
    }

    #[test]
    fn unrepairable_bins_stay_zero_and_are_counted() {
        // Same bin-of-day is zero on *every* day: no candidates.
        let w = TraceWindow::days(7);
        let mut row = periodic_row(&w);
        for day in 0..7 {
            for off in 0..6 {
                row[day * BINS_PER_DAY + off] = 0.0;
            }
        }
        let mut matrix = vec![row];
        let (masks, report) = impute_outages(&mut matrix, &w, &ImputeConfig::default());
        assert_eq!(report.bins_imputed, 0);
        assert_eq!(report.bins_unrepaired, 6 * 7);
        assert!(masks[0].is_empty());
        for day in 0..7 {
            assert_eq!(matrix[0][day * BINS_PER_DAY], 0.0);
        }
    }

    #[test]
    fn imputation_is_deterministic() {
        let w = TraceWindow::days(14);
        let make = || {
            let mut m = vec![periodic_row(&w), periodic_row(&w)];
            for v in &mut m[0][100..160] {
                *v = 0.0;
            }
            m
        };
        let mut a = make();
        let mut b = make();
        let ra = impute_outages(&mut a, &w, &ImputeConfig::default());
        let rb = impute_outages(&mut b, &w, &ImputeConfig::default());
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
