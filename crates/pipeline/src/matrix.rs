//! Chunked f32 storage for large tower-feature matrices.
//!
//! The raw path at operator scale is a memory problem before it is a
//! compute problem: 100k towers × 4,032 bins is 3.2 GB as `Vec<Vec<f64>>`
//! (plus one heap allocation per tower). [`TowerMatrix`] stores the
//! same rows as f32 in fixed-size chunks — 1.6 GB for the same input,
//! no allocation larger than [`CHUNK_BYTES`], and no per-row
//! allocations — so 100k × 4032 fits comfortably in memory.
//!
//! The matrix implements [`FeatureView`], so it plugs straight into
//! the matrix-free clustering path
//! (`towerlens_cluster::agglomerative_points_on_demand`'s underlying
//! [`OnDemandMetric`](towerlens_cluster::OnDemandMetric)): distances
//! are accumulated in f64 over the widened f32 coordinates, serially
//! per pair, so they are deterministic for any thread count. Note the
//! f32 round-trip means distances differ from the f64 reference in the
//! low bits — this storage trades that precision for 2× capacity,
//! which is why the default raw path below paper scale keeps f64
//! vectors.

use towerlens_cluster::{ClusterError, FeatureView};

/// Upper bound on a single chunk allocation (16 MiB — large enough to
/// amortise bookkeeping, small enough that the allocator never needs a
/// gigabyte-contiguous region).
pub const CHUNK_BYTES: usize = 16 << 20;

/// A dense row-major tower × feature matrix in chunked f32 storage.
#[derive(Debug, Clone, PartialEq)]
pub struct TowerMatrix {
    dim: usize,
    rows: usize,
    rows_per_chunk: usize,
    chunks: Vec<Vec<f32>>,
}

impl TowerMatrix {
    /// An empty matrix whose rows will have `dim` features.
    pub fn new(dim: usize) -> Self {
        let rows_per_chunk = (CHUNK_BYTES / (std::mem::size_of::<f32>() * dim.max(1))).max(1);
        TowerMatrix {
            dim,
            rows: 0,
            rows_per_chunk,
            chunks: Vec::new(),
        }
    }

    /// Packs a slice of f64 rows (all of length `dim`) into chunked
    /// f32 storage.
    ///
    /// # Errors
    /// [`ClusterError::EmptyInput`] for zero rows,
    /// [`ClusterError::DimensionMismatch`] if a row's length differs
    /// from the first row's.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, ClusterError> {
        let first = rows.first().ok_or(ClusterError::EmptyInput)?;
        let mut m = TowerMatrix::new(first.len());
        for row in rows {
            m.push_row(row)?;
        }
        Ok(m)
    }

    /// Appends one row, rounding each coordinate to f32.
    ///
    /// # Errors
    /// [`ClusterError::DimensionMismatch`] if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), ClusterError> {
        if row.len() != self.dim {
            return Err(ClusterError::DimensionMismatch {
                expected: self.dim,
                actual: row.len(),
                index: self.rows,
            });
        }
        if self.rows.is_multiple_of(self.rows_per_chunk) {
            let capacity = self.rows_per_chunk * self.dim;
            self.chunks.push(Vec::with_capacity(capacity));
        }
        let chunk = self.chunks.last_mut().expect("chunk just ensured");
        chunk.extend(row.iter().map(|&v| v as f32));
        self.rows += 1;
        Ok(())
    }

    /// Number of rows (towers).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` when no rows have been stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Features per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a contiguous f32 slice.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        let chunk = &self.chunks[i / self.rows_per_chunk];
        let start = (i % self.rows_per_chunk) * self.dim;
        &chunk[start..start + self.dim]
    }

    /// Bytes of feature storage currently held (excludes the
    /// constant-size bookkeeping).
    pub fn storage_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

impl FeatureView for TowerMatrix {
    fn len(&self) -> usize {
        self.rows
    }

    fn distance(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (self.row(i), self.row(j));
        let mut acc = 0.0f64;
        for (&x, &y) in a.iter().zip(b) {
            let d = f64::from(x) - f64::from(y);
            acc += d * d;
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_cluster::{agglomerative_points_on_demand, Engine, Linkage};
    use towerlens_cluster::{agglomerative_source, OnDemandMetric};

    fn rows(n: usize, dim: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| ((i * dim + d) as f64 * 0.137).sin() * 3.0 + (i % 3) as f64 * 10.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn round_trips_rows_across_chunk_boundaries() {
        // dim large enough that a chunk holds few rows would need MiB
        // of data; instead shrink indirectly by using many rows and
        // checking chunking math stays consistent.
        let data = rows(1000, 40);
        let m = TowerMatrix::from_rows(&data).unwrap();
        assert_eq!(m.len(), 1000);
        assert_eq!(m.dim(), 40);
        for (i, row) in data.iter().enumerate() {
            let stored = m.row(i);
            assert_eq!(stored.len(), 40);
            for (a, b) in row.iter().zip(stored) {
                assert_eq!((*a as f32).to_bits(), b.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn rejects_ragged_rows_with_indices() {
        let mut m = TowerMatrix::new(3);
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(
            m.push_row(&[1.0]).unwrap_err(),
            ClusterError::DimensionMismatch {
                expected: 3,
                actual: 1,
                index: 1
            }
        );
        assert!(TowerMatrix::from_rows(&[]).is_err());
    }

    #[test]
    fn storage_is_f32_sized() {
        let data = rows(256, 64);
        let m = TowerMatrix::from_rows(&data).unwrap();
        // One partial chunk: capacity was reserved for the whole
        // chunk's rows, but the total must stay below the f64 cost of
        // the same data once more than half a chunk is filled.
        assert!(m.storage_bytes() >= 256 * 64 * 4);
    }

    #[test]
    fn clusters_like_the_f64_path_on_f32_exact_data() {
        // Coordinates chosen exactly representable in f32, so the f64
        // and f32 views agree bit-for-bit and so must the dendrograms.
        let data: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i % 5) as f64 * 0.5, (i / 5) as f64 * 2.0, i as f64])
            .collect();
        let m = TowerMatrix::from_rows(&data).unwrap();
        let via_f64 =
            agglomerative_points_on_demand(&data, Linkage::Average, Engine::NnChain).unwrap();
        let via_f32 =
            agglomerative_source(OnDemandMetric::new(&m), Linkage::Average, Engine::NnChain)
                .unwrap();
        for (a, b) in via_f64.merges().iter().zip(via_f32.merges()) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }
}
