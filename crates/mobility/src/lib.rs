//! # towerlens-mobility
//!
//! The human-activity traffic model: the substitution for the paper's
//! 150,000 real subscribers.
//!
//! Two generators share one behavioural core ([`profiles`]):
//!
//! * [`synth`] — the *fast path*: synthesises each tower's binned
//!   traffic vector directly from the ground-truth function mixture at
//!   the tower (`city.function_mix`), scaled and noised. This is what
//!   the paper-scale experiments run on (9,600 towers × 4,032 bins in
//!   seconds).
//! * [`agents`] — the *log path*: an agent population with home/work
//!   anchors and daily schedules emits individual connection records
//!   (with deliberate duplicate/conflict injection), exercising the
//!   full preprocessing pipeline (clean → geocode → bin) end-to-end.
//!
//! The behavioural core encodes only mechanisms the paper attributes
//! traffic to: the sleep cycle (valley at 4–5 AM), the commute (8 AM /
//! 6 PM rushes through transport hubs), office hours (weekday-only
//! midday load), evening leisure (weekday 6 PM, weekend 12:30 PM), and
//! the resident evening peak (9:30 PM, high overnight floor). Cluster
//! labels, spectral lines, and convex-combination structure are never
//! injected — they must *emerge* through the analysis pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod config;
pub mod profiles;
pub mod synth;

pub use agents::{AgentConfig, AgentPopulation};
pub use config::SynthConfig;
pub use profiles::{intensity, profile_vector};
pub use synth::{synthesize_city, tower_vector};
