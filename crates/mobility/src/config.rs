//! Configuration for the fast traffic synthesizer.

use serde::{Deserialize, Serialize};

/// Parameters of the direct per-tower traffic synthesis.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SynthConfig {
    /// RNG seed (per-tower streams are derived from it, so results
    /// don't depend on iteration order or thread count).
    pub seed: u64,
    /// Mean per-bin byte volume of a tower at intensity 1.0.
    pub base_bytes_per_bin: f64,
    /// σ of the log-normal per-tower scale factor (towers serve very
    /// different subscriber counts — the "large variation of traffic
    /// … because the absolute traffic depends on the number of mobile
    /// users served" the paper calls out).
    pub tower_scale_sigma: f64,
    /// σ of the log-normal *per-bin* multiplicative noise.
    pub bin_noise_sigma: f64,
    /// σ of the log-normal *per-day* multiplicative noise (bursty
    /// days).
    pub day_noise_sigma: f64,
    /// Number of worker threads for city-wide synthesis
    /// (0 = available parallelism).
    pub threads: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 42,
            base_bytes_per_bin: 1.0e6,
            tower_scale_sigma: 0.8,
            bin_noise_sigma: 0.06,
            day_noise_sigma: 0.02,
            threads: 0,
        }
    }
}

impl SynthConfig {
    /// A noise-free configuration (canonical profiles only) — useful
    /// for tests that need exact shapes.
    pub fn noiseless(seed: u64) -> Self {
        SynthConfig {
            seed,
            tower_scale_sigma: 0.0,
            bin_noise_sigma: 0.0,
            day_noise_sigma: 0.0,
            ..SynthConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SynthConfig::default();
        assert!(c.base_bytes_per_bin > 0.0);
        assert!(c.bin_noise_sigma > 0.0);
        let n = SynthConfig::noiseless(7);
        assert_eq!(n.seed, 7);
        assert_eq!(n.bin_noise_sigma, 0.0);
        assert_eq!(n.tower_scale_sigma, 0.0);
    }
}
