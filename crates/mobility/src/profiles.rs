//! Canonical activity-demand profiles for the four pure urban
//! functions.
//!
//! Each profile maps *(minute of day, weekend?)* to a demand intensity
//! in `[0, ~1.1]`, built from circular Gaussian bumps over the
//! 24-hour clock plus a floor. The calibration constants target the
//! paper's measured time-domain characteristics (§4, Tables 4–5,
//! Fig 10):
//!
//! | function      | weekday peak | weekend peak | valley | P/V ratio | wd/we amount |
//! |---------------|--------------|--------------|--------|-----------|--------------|
//! | resident      | 21:30        | 21:30        | ~4:30  | ≈9        | ≈1.0         |
//! | transport     | 8:00 & 18:00 | 18:00        | ~4:00  | ≈130      | ≈1.5         |
//! | office        | 10:30        | 12:00        | ~4:30  | ≈23       | ≈1.8         |
//! | entertainment | 18:00        | 12:30        | ~4:30  | ≈32       | ≈1.0         |
//!
//! These are *inputs* borrowed from common urban rhythm (commute
//! times, office hours), not the paper's outputs: the five clusters,
//! the three spectral lines, their amplitude/phase geometry and the
//! convex hull structure are all downstream discoveries.

use towerlens_city::zone::PoiKind;
use towerlens_trace::time::TraceWindow;

/// Minutes per day.
pub const DAY_MIN: f64 = 1_440.0;

/// A circular Gaussian bump on the 24-hour clock: peak height `amp`
/// at `center_h` (hours), width `sigma_h` (hours).
#[inline]
fn bump(minute: f64, amp: f64, center_h: f64, sigma_h: f64) -> f64 {
    let center = center_h * 60.0;
    let sigma = sigma_h * 60.0;
    let mut d = (minute - center).abs() % DAY_MIN;
    if d > DAY_MIN / 2.0 {
        d = DAY_MIN - d;
    }
    amp * (-(d * d) / (2.0 * sigma * sigma)).exp()
}

/// Demand intensity of one pure urban function at a minute of day.
///
/// `minute` is wrapped into `[0, 1440)`; `weekend` selects the
/// weekend variant of the schedule.
pub fn intensity(kind: PoiKind, minute: f64, weekend: bool) -> f64 {
    let m = minute.rem_euclid(DAY_MIN);
    match kind {
        PoiKind::Resident => {
            // High overnight floor, morning shoulder, broad evening
            // peak. The widths matter: residential demand is smooth,
            // which keeps its half-day (k = 2/day) harmonic modest —
            // transport's double rush must own that component
            // (Fig 16(c)).
            let day = 0.10
                + bump(m, 0.32, 7.5, 1.4)
                + bump(m, 0.95, 21.5, 2.6)
                + bump(m, 0.22, 15.5, 2.0)
                + bump(m, 0.30, 0.5, 1.6);
            if weekend {
                day + bump(m, 0.34, 13.0, 3.5)
            } else {
                day + bump(m, 0.25, 13.0, 3.5)
            }
        }
        PoiKind::Transport => {
            // The small 23:00 bump is the post-midnight wind-down of
            // late travellers; it pushes the valley to ~4 AM, where
            // the paper finds it.
            // The midday saddle is kept broad and low: a narrow midday
            // bump sits in anti-phase with the two rushes at the
            // half-day harmonic and would erode the double-hump
            // signature.
            if weekend {
                0.006
                    + bump(m, 0.25, 9.5, 1.3)
                    + bump(m, 0.50, 18.0, 1.5)
                    + bump(m, 0.20, 13.5, 3.2)
                    + bump(m, 0.035, 23.0, 2.0)
            } else {
                0.006
                    + bump(m, 1.00, 8.0, 0.8)
                    + bump(m, 0.92, 18.0, 1.0)
                    + bump(m, 0.22, 13.0, 3.2)
                    + bump(m, 0.035, 23.0, 2.0)
            }
        }
        PoiKind::Office => {
            if weekend {
                0.040 + bump(m, 0.64, 12.0, 2.6) + bump(m, 0.030, 22.0, 2.2)
            } else {
                0.042
                    + bump(m, 0.85, 10.5, 1.6)
                    + bump(m, 0.78, 14.5, 2.0)
                    + bump(m, 0.25, 18.0, 1.2)
                    + bump(m, 0.020, 22.5, 1.8)
            }
        }
        PoiKind::Entertainment => {
            if weekend {
                0.028 + bump(m, 0.95, 12.5, 1.8) + bump(m, 0.55, 18.0, 2.0)
            } else {
                0.030 + bump(m, 0.35, 12.5, 1.5) + bump(m, 1.00, 18.0, 2.2)
            }
        }
    }
}

/// Demand intensity for a *mixture* of the four pure functions.
pub fn mixture_intensity(mix: &[f64; 4], minute: f64, weekend: bool) -> f64 {
    PoiKind::ALL
        .iter()
        .map(|&k| mix[k.index()] * intensity(k, minute, weekend))
        .sum()
}

/// Per-bin intensities of the four pure functions over a window,
/// sampled at the bin midpoints — the tower-independent part of
/// synthesis, computed once and shared across every tower instead of
/// re-evaluating ~18 Gaussian bumps per bin per tower.
#[derive(Debug, Clone)]
pub struct IntensityTable {
    /// One `[resident, transport, office, entertainment]` row per bin.
    values: Vec<[f64; 4]>,
}

impl IntensityTable {
    /// Samples the four pure profiles at every bin midpoint of the
    /// window.
    pub fn of(window: &TraceWindow) -> Self {
        let values = (0..window.n_bins)
            .map(|bin| {
                let (h, m) = window.time_of_day(bin);
                let minute = h as f64 * 60.0 + m as f64 + window.bin_secs as f64 / 120.0;
                let weekend = window.is_weekend_bin(bin);
                let mut row = [0.0; 4];
                for &k in PoiKind::ALL.iter() {
                    row[k.index()] = intensity(k, minute, weekend);
                }
                row
            })
            .collect();
        IntensityTable { values }
    }

    /// Number of bins covered.
    pub fn n_bins(&self) -> usize {
        self.values.len()
    }

    /// Mixture intensity at a bin. Bit-identical to
    /// [`mixture_intensity`] at the bin midpoint: the per-kind values
    /// are the same `intensity` evaluations and the weighted sum folds
    /// in the same `PoiKind::ALL` order.
    #[inline]
    pub fn mixture(&self, mix: &[f64; 4], bin: usize) -> f64 {
        let row = &self.values[bin];
        PoiKind::ALL
            .iter()
            .map(|&k| mix[k.index()] * row[k.index()])
            .sum()
    }
}

/// The canonical noise-free profile vector of a pure function over a
/// binning window (one intensity sample per bin, taken at the bin
/// midpoint).
pub fn profile_vector(kind: PoiKind, window: &TraceWindow) -> Vec<f64> {
    mixture_profile_vector(&pure_mix(kind), window)
}

/// The canonical noise-free profile vector of a mixture over a
/// window.
pub fn mixture_profile_vector(mix: &[f64; 4], window: &TraceWindow) -> Vec<f64> {
    (0..window.n_bins)
        .map(|bin| {
            let (h, m) = window.time_of_day(bin);
            let minute = h as f64 * 60.0 + m as f64 + window.bin_secs as f64 / 120.0;
            mixture_intensity(mix, minute, window.is_weekend_bin(bin))
        })
        .collect()
}

/// The unit mixture putting all weight on one pure function.
pub fn pure_mix(kind: PoiKind) -> [f64; 4] {
    let mut mix = [0.0; 4];
    mix[kind.index()] = 1.0;
    mix
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Argmax minute of a profile sampled per minute.
    fn peak_minute(kind: PoiKind, weekend: bool) -> f64 {
        (0..1440)
            .map(|m| (m as f64, intensity(kind, m as f64, weekend)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
    }

    fn valley_minute(kind: PoiKind, weekend: bool) -> f64 {
        (0..1440)
            .map(|m| (m as f64, intensity(kind, m as f64, weekend)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
    }

    fn daily_amount(kind: PoiKind, weekend: bool) -> f64 {
        (0..1440)
            .map(|m| intensity(kind, m as f64, weekend))
            .sum::<f64>()
    }

    fn peak_valley_ratio(kind: PoiKind, weekend: bool) -> f64 {
        let peak = intensity(kind, peak_minute(kind, weekend), weekend);
        let valley = intensity(kind, valley_minute(kind, weekend), weekend);
        peak / valley
    }

    #[test]
    fn peak_times_match_paper_table5() {
        // Resident: 21:30 both.
        for weekend in [false, true] {
            let p = peak_minute(PoiKind::Resident, weekend) / 60.0;
            assert!((20.8..=22.2).contains(&p), "resident peak {p}h");
        }
        // Transport weekday morning rush dominates; weekend 18:00.
        let p = peak_minute(PoiKind::Transport, false) / 60.0;
        assert!((7.5..=8.5).contains(&p), "transport wd peak {p}h");
        let p = peak_minute(PoiKind::Transport, true) / 60.0;
        assert!((17.3..=18.7).contains(&p), "transport we peak {p}h");
        // Office: 10:30 weekday, 12:00 weekend.
        let p = peak_minute(PoiKind::Office, false) / 60.0;
        assert!((10.0..=11.2).contains(&p), "office wd peak {p}h");
        let p = peak_minute(PoiKind::Office, true) / 60.0;
        assert!((11.5..=12.5).contains(&p), "office we peak {p}h");
        // Entertainment: 18:00 weekday, 12:30 weekend.
        let p = peak_minute(PoiKind::Entertainment, false) / 60.0;
        assert!((17.3..=18.7).contains(&p), "entertainment wd peak {p}h");
        let p = peak_minute(PoiKind::Entertainment, true) / 60.0;
        assert!((12.0..=13.0).contains(&p), "entertainment we peak {p}h");
    }

    #[test]
    fn transport_has_double_hump_on_weekdays() {
        // Both rush peaks must be local maxima well above midday.
        let at = |h: f64| intensity(PoiKind::Transport, h * 60.0, false);
        assert!(at(8.0) > at(13.0) * 2.0);
        assert!(at(18.0) > at(13.0) * 2.0);
        assert!(at(13.0) > at(4.0) * 5.0, "midday saddle above valley");
    }

    #[test]
    fn valleys_in_early_morning() {
        for kind in PoiKind::ALL {
            for weekend in [false, true] {
                let v = valley_minute(kind, weekend) / 60.0;
                assert!(
                    (2.0..=6.0).contains(&v),
                    "{kind:?} weekend={weekend} valley at {v}h"
                );
            }
        }
    }

    #[test]
    fn peak_valley_ratios_match_paper_order() {
        // Paper Fig 10(b)/Table 4: transport ≈130 ≫ entertainment ≈32
        // > office ≈23 > resident ≈9.
        let r_res = peak_valley_ratio(PoiKind::Resident, false);
        let r_tra = peak_valley_ratio(PoiKind::Transport, false);
        let r_off = peak_valley_ratio(PoiKind::Office, false);
        let r_ent = peak_valley_ratio(PoiKind::Entertainment, false);
        assert!((6.0..=13.0).contains(&r_res), "resident {r_res}");
        assert!((90.0..=180.0).contains(&r_tra), "transport {r_tra}");
        assert!((16.0..=32.0).contains(&r_off), "office {r_off}");
        assert!((24.0..=45.0).contains(&r_ent), "entertainment {r_ent}");
        assert!(r_tra > r_ent && r_ent > r_off && r_off > r_res);
    }

    #[test]
    fn weekday_weekend_amount_ratios_match_fig10a() {
        let ratio = |kind| daily_amount(kind, false) / daily_amount(kind, true);
        let r_res = ratio(PoiKind::Resident);
        let r_tra = ratio(PoiKind::Transport);
        let r_off = ratio(PoiKind::Office);
        let r_ent = ratio(PoiKind::Entertainment);
        assert!((0.85..=1.15).contains(&r_res), "resident {r_res}");
        assert!((1.30..=1.70).contains(&r_tra), "transport {r_tra}");
        assert!((1.55..=2.05).contains(&r_off), "office {r_off}");
        assert!((0.85..=1.15).contains(&r_ent), "entertainment {r_ent}");
    }

    #[test]
    fn resident_stays_high_overnight() {
        // Fig 3: residential towers "remain high across night" relative
        // to business towers, which "get close to zero".
        let res_night = intensity(PoiKind::Resident, 23.5 * 60.0, false);
        let off_night = intensity(PoiKind::Office, 23.5 * 60.0, false);
        assert!(res_night > 5.0 * off_night, "{res_night} vs {off_night}");
    }

    #[test]
    fn mixture_is_linear() {
        let mix = [0.25, 0.25, 0.25, 0.25];
        for m in (0..1440).step_by(97) {
            let direct = mixture_intensity(&mix, m as f64, false);
            let manual: f64 = PoiKind::ALL
                .iter()
                .map(|&k| 0.25 * intensity(k, m as f64, false))
                .sum();
            assert!((direct - manual).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_vector_length_and_periodicity() {
        let w = TraceWindow::paper();
        let v = profile_vector(PoiKind::Office, &w);
        assert_eq!(v.len(), 4_032);
        // Monday (day 0) and Tuesday (day 1) are identical weekdays.
        for b in 0..144 {
            assert!((v[b] - v[144 + b]).abs() < 1e-12);
        }
        // Saturday (day 5) differs from Monday.
        let diff: f64 = (0..144).map(|b| (v[b] - v[5 * 144 + b]).abs()).sum();
        assert!(diff > 1.0);
        // Week 1 equals week 2 exactly (the k=28·j harmonics come from
        // this periodicity).
        for b in 0..1_008 {
            assert!((v[b] - v[1_008 + b]).abs() < 1e-12);
        }
    }

    #[test]
    fn intensity_table_matches_direct_evaluation_bitwise() {
        let w = TraceWindow::days(9); // spans weekdays and a weekend
        let table = IntensityTable::of(&w);
        assert_eq!(table.n_bins(), w.n_bins);
        let mix = [0.1, 0.2, 0.3, 0.4];
        for bin in 0..w.n_bins {
            let (h, m) = w.time_of_day(bin);
            let minute = h as f64 * 60.0 + m as f64 + w.bin_secs as f64 / 120.0;
            let direct = mixture_intensity(&mix, minute, w.is_weekend_bin(bin));
            assert_eq!(
                table.mixture(&mix, bin).to_bits(),
                direct.to_bits(),
                "bin {bin}"
            );
        }
    }

    #[test]
    fn intensity_wraps_minutes() {
        let a = intensity(PoiKind::Resident, 10.0, false);
        let b = intensity(PoiKind::Resident, 10.0 + DAY_MIN, false);
        let c = intensity(PoiKind::Resident, 10.0 - DAY_MIN, false);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn intensities_are_positive_and_bounded() {
        for kind in PoiKind::ALL {
            for weekend in [false, true] {
                for m in 0..1440 {
                    let v = intensity(kind, m as f64, weekend);
                    assert!(v > 0.0, "{kind:?} {m} {weekend}: {v}");
                    assert!(v < 1.5, "{kind:?} {m} {weekend}: {v}");
                }
            }
        }
    }
}
