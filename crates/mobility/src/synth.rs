//! Fast per-tower traffic synthesis.
//!
//! For each tower, the demand intensity is the *mixture* of the four
//! canonical profiles weighted by the ground-truth function mix at the
//! tower's location, times a per-tower log-normal scale, a per-day
//! log-normal factor, and per-bin log-normal noise:
//!
//! ```text
//! traffic[b] = scale · day_factor[day(b)] · noise[b]
//!              · Σ_i mix_i · intensity_i(time(b), weekend(b)) · base
//! ```
//!
//! Each tower's random stream is seeded from `(config.seed, tower_id)`
//! so the output is identical regardless of thread count or iteration
//! order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use towerlens_city::city::City;
use towerlens_trace::time::TraceWindow;

use crate::config::SynthConfig;
use crate::profiles::IntensityTable;

/// Synthesises one tower's traffic vector.
///
/// `mix` is the function mixture at the tower (must sum to ~1),
/// `tower_id` seeds the tower's private noise stream.
pub fn tower_vector(
    mix: &[f64; 4],
    window: &TraceWindow,
    config: &SynthConfig,
    tower_id: usize,
) -> Vec<f64> {
    tower_vector_with(&IntensityTable::of(window), mix, window, config, tower_id)
}

/// [`tower_vector`] against a precomputed [`IntensityTable`] for the
/// window, so batch callers pay the profile sampling once per window
/// instead of once per tower. Bit-identical to [`tower_vector`].
pub fn tower_vector_with(
    table: &IntensityTable,
    mix: &[f64; 4],
    window: &TraceWindow,
    config: &SynthConfig,
    tower_id: usize,
) -> Vec<f64> {
    debug_assert_eq!(table.n_bins(), window.n_bins);
    let mut rng = tower_rng(config.seed, tower_id);
    let scale = config.base_bytes_per_bin * lognormal(&mut rng, config.tower_scale_sigma);
    let n_days = window.n_bins * window.bin_secs as usize / 86_400 + 1;
    let day_factors: Vec<f64> = (0..n_days)
        .map(|_| lognormal(&mut rng, config.day_noise_sigma))
        .collect();
    (0..window.n_bins)
        .map(|bin| {
            let base = table.mixture(mix, bin);
            let day = day_factors[window.day_of_bin(bin)];
            let noise = lognormal(&mut rng, config.bin_noise_sigma);
            scale * day * noise * base
        })
        .collect()
}

/// Synthesises the whole city: one traffic vector per tower, in tower
/// id order. Parallelised over towers via [`towerlens_par`]; each
/// tower draws from its own seeded stream and lands in its own slot,
/// so the output is independent of `config.threads`.
pub fn synthesize_city(city: &City, window: &TraceWindow, config: &SynthConfig) -> Vec<Vec<f64>> {
    let mixes: Vec<[f64; 4]> = city
        .towers()
        .iter()
        .map(|t| city.function_mix(&t.position))
        .collect();
    let table = IntensityTable::of(window);
    towerlens_par::par_map_indexed(&mixes, config.threads, |id, mix| {
        tower_vector_with(&table, mix, window, config, id)
    })
}

/// Derives a tower's private RNG from the global seed (SplitMix-style
/// mixing so adjacent ids decorrelate).
pub(crate) fn tower_rng(seed: u64, tower_id: usize) -> StdRng {
    let mut z = seed ^ (tower_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Log-normal sample with median 1: `exp(σ·Z)`. σ = 0 always yields
/// exactly 1 (and still consumes one draw, keeping streams aligned
/// across configs).
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    if sigma == 0.0 {
        1.0
    } else {
        (sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_city::config::CityConfig;
    use towerlens_city::generate::generate;
    use towerlens_city::zone::PoiKind;

    use crate::profiles::{mixture_profile_vector, pure_mix};

    #[test]
    fn deterministic_per_tower() {
        let w = TraceWindow::days(7);
        let cfg = SynthConfig::default();
        let mix = pure_mix(PoiKind::Office);
        let a = tower_vector(&mix, &w, &cfg, 17);
        let b = tower_vector(&mix, &w, &cfg, 17);
        assert_eq!(a, b);
        let c = tower_vector(&mix, &w, &cfg, 18);
        assert_ne!(a, c);
    }

    #[test]
    fn noiseless_vector_matches_canonical_profile() {
        let w = TraceWindow::days(7);
        let cfg = SynthConfig::noiseless(1);
        let mix = pure_mix(PoiKind::Resident);
        let v = tower_vector(&mix, &w, &cfg, 0);
        let canon = mixture_profile_vector(&mix, &w);
        for (a, b) in v.iter().zip(&canon) {
            let expected = b * cfg.base_bytes_per_bin;
            assert!((a - expected).abs() < 1e-6 * expected.max(1.0));
        }
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let city = generate(&CityConfig::tiny(3)).unwrap();
        let w = TraceWindow::days(2);
        let serial = synthesize_city(
            &city,
            &w,
            &SynthConfig {
                threads: 1,
                ..SynthConfig::default()
            },
        );
        let parallel = synthesize_city(
            &city,
            &w,
            &SynthConfig {
                threads: 4,
                ..SynthConfig::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn traffic_is_positive_and_scaled() {
        let city = generate(&CityConfig::tiny(5)).unwrap();
        let w = TraceWindow::days(1);
        let m = synthesize_city(&city, &w, &SynthConfig::default());
        assert_eq!(m.len(), city.towers().len());
        for row in &m {
            assert_eq!(row.len(), w.n_bins);
            assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn office_tower_quieter_at_night_than_resident_tower() {
        let w = TraceWindow::days(5); // Mon–Fri
        let cfg = SynthConfig::noiseless(0);
        let office = tower_vector(&pure_mix(PoiKind::Office), &w, &cfg, 0);
        let resident = tower_vector(&pure_mix(PoiKind::Resident), &w, &cfg, 0);
        // 23:30 bin of day 0 (bin 141) relative to each tower's own peak.
        let night = 141;
        let o_rel = office[night] / office.iter().cloned().fold(0.0, f64::max);
        let r_rel = resident[night] / resident.iter().cloned().fold(0.0, f64::max);
        assert!(r_rel > 3.0 * o_rel, "resident {r_rel} vs office {o_rel}");
    }

    #[test]
    fn tower_scales_vary_lognormally() {
        let w = TraceWindow::days(1);
        let cfg = SynthConfig {
            bin_noise_sigma: 0.0,
            day_noise_sigma: 0.0,
            ..SynthConfig::default()
        };
        let mix = pure_mix(PoiKind::Office);
        let totals: Vec<f64> = (0..200)
            .map(|id| tower_vector(&mix, &w, &cfg, id).iter().sum())
            .collect();
        let max = totals.iter().cloned().fold(0.0f64, f64::max);
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        // σ=0.8 lognormal across 200 draws spans well over 10×.
        assert!(max / min > 10.0, "spread {}", max / min);
    }
}
