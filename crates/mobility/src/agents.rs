//! Agent-based connection-log generation (the "log path").
//!
//! A population of subscribers with home/work anchors executes daily
//! schedules — sleep at home, commute through a transport hub, work at
//! the office, optional evening/weekend leisure — and every data
//! session becomes a [`LogRecord`] at the tower serving the current
//! activity. A configurable fraction of records is emitted twice
//! (redundant logs) or re-emitted with a corrupted byte count
//! (conflict logs), reproducing the dirtiness the paper's
//! preprocessing handles.
//!
//! This path is slower than [`crate::synth`] but exercises the whole
//! ingest pipeline: cleaning → geocoding → binning.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use towerlens_city::city::City;
use towerlens_city::zone::RegionKind;
use towerlens_trace::record::LogRecord;
use towerlens_trace::time::{TraceWindow, DAY_SECS};

/// Parameters of the agent population.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of subscribers.
    pub n_agents: usize,
    /// Fraction of agents that commute to work on weekdays.
    pub worker_fraction: f64,
    /// Mean data sessions per active hour.
    pub sessions_per_hour: f64,
    /// Mean session duration in seconds (exponential).
    pub mean_session_secs: f64,
    /// Mean bytes per session (log-normal around this median).
    pub mean_session_bytes: f64,
    /// Probability a record is duplicated verbatim.
    pub duplicate_rate: f64,
    /// Probability a record is re-emitted with a conflicting byte
    /// count.
    pub conflict_rate: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            seed: 42,
            n_agents: 1_000,
            worker_fraction: 0.62,
            sessions_per_hour: 1.2,
            mean_session_secs: 420.0,
            mean_session_bytes: 2.0e6,
            duplicate_rate: 0.01,
            conflict_rate: 0.005,
        }
    }
}

/// One subscriber's anchors.
#[derive(Debug, Clone, Copy)]
struct Agent {
    home: usize,
    work: usize,
    hub: usize,
    leisure: usize,
    is_worker: bool,
}

/// A generated population bound to a city.
#[derive(Debug)]
pub struct AgentPopulation {
    agents: Vec<Agent>,
    config: AgentConfig,
}

/// One block of an agent's day: where they are and how chatty their
/// device is (activity factor scales the session rate).
struct Block {
    tower: usize,
    start_s: u64,
    end_s: u64,
    activity: f64,
}

impl AgentPopulation {
    /// Samples a population over the city's towers. Home anchors come
    /// from resident/comprehensive towers, work anchors from
    /// office/comprehensive, commute hubs from transport towers,
    /// leisure anchors from entertainment towers; kinds missing from
    /// the city fall back to any tower.
    pub fn generate(city: &City, config: AgentConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pick_pool = |kinds: &[RegionKind]| -> Vec<usize> {
            let mut pool: Vec<usize> = kinds.iter().flat_map(|&k| city.towers_of_kind(k)).collect();
            if pool.is_empty() {
                pool = (0..city.towers().len()).collect();
            }
            pool
        };
        let homes = pick_pool(&[RegionKind::Resident, RegionKind::Comprehensive]);
        let works = pick_pool(&[RegionKind::Office, RegionKind::Comprehensive]);
        let hubs = pick_pool(&[RegionKind::Transport]);
        let leisures = pick_pool(&[RegionKind::Entertainment, RegionKind::Comprehensive]);

        let agents = (0..config.n_agents)
            .map(|_| Agent {
                home: homes[rng.gen_range(0..homes.len())],
                work: works[rng.gen_range(0..works.len())],
                hub: hubs[rng.gen_range(0..hubs.len())],
                leisure: leisures[rng.gen_range(0..leisures.len())],
                is_worker: rng.gen_range(0.0..1.0) < config.worker_fraction,
            })
            .collect();
        AgentPopulation { agents, config }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// `true` when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Emits the connection logs of the whole population over the
    /// window (records are unsorted, as operator logs are).
    pub fn emit_logs(&self, city: &City, window: &TraceWindow) -> Vec<LogRecord> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let mut out = Vec::new();
        let first_day = (window.start_s / DAY_SECS) as usize;
        let days = window.n_bins * window.bin_secs as usize / DAY_SECS as usize;
        for (agent_id, agent) in self.agents.iter().enumerate() {
            for day in 0..days {
                // Window day 0 is a Monday (see `TraceWindow`).
                let weekend = day % 7 >= 5;
                let day_start = (first_day + day) as u64 * DAY_SECS;
                for block in self.day_blocks(agent, day_start, weekend, &mut rng) {
                    self.emit_block_sessions(agent_id as u64, &block, city, &mut rng, &mut out);
                }
            }
        }
        out
    }

    /// Builds one agent-day of schedule blocks.
    fn day_blocks(
        &self,
        agent: &Agent,
        day_start: u64,
        weekend: bool,
        rng: &mut StdRng,
    ) -> Vec<Block> {
        let h = |hours: f64| -> u64 { day_start + (hours * 3_600.0) as u64 };
        let jitter = |rng: &mut StdRng| rng.gen_range(-600i64..600);
        let j = |rng: &mut StdRng, hours: f64| -> u64 {
            (h(hours) as i64 + jitter(rng)).max(day_start as i64) as u64
        };
        let mut blocks = Vec::new();
        if agent.is_worker && !weekend {
            let leave = j(rng, 7.7);
            let arrive_work = j(rng, 8.6);
            let leave_work = j(rng, 17.7);
            let arrive_home = j(rng, 18.6);
            blocks.push(Block {
                tower: agent.home,
                start_s: day_start,
                end_s: leave,
                activity: 0.7,
            });
            blocks.push(Block {
                tower: agent.hub,
                start_s: leave,
                end_s: arrive_work,
                activity: 2.5, // people stare at phones while commuting
            });
            blocks.push(Block {
                tower: agent.work,
                start_s: arrive_work,
                end_s: leave_work,
                activity: 1.0,
            });
            blocks.push(Block {
                tower: agent.hub,
                start_s: leave_work,
                end_s: arrive_home,
                activity: 2.5,
            });
            if rng.gen_range(0.0..1.0) < 0.3 {
                let leisure_end = j(rng, 20.5);
                blocks.push(Block {
                    tower: agent.leisure,
                    start_s: arrive_home,
                    end_s: leisure_end,
                    activity: 1.8,
                });
                blocks.push(Block {
                    tower: agent.home,
                    start_s: leisure_end,
                    end_s: day_start + DAY_SECS,
                    activity: 1.6, // evening peak at home
                });
            } else {
                blocks.push(Block {
                    tower: agent.home,
                    start_s: arrive_home,
                    end_s: day_start + DAY_SECS,
                    activity: 1.6,
                });
            }
        } else {
            // Weekend / non-worker: mostly home, midday leisure trip.
            let go_out = rng.gen_range(0.0..1.0) < 0.55;
            if go_out {
                let leave = j(rng, 11.0);
                let back = j(rng, 14.5);
                blocks.push(Block {
                    tower: agent.home,
                    start_s: day_start,
                    end_s: leave,
                    activity: 0.9,
                });
                blocks.push(Block {
                    tower: agent.leisure,
                    start_s: leave,
                    end_s: back,
                    activity: 2.0,
                });
                blocks.push(Block {
                    tower: agent.home,
                    start_s: back,
                    end_s: day_start + DAY_SECS,
                    activity: 1.3,
                });
            } else {
                blocks.push(Block {
                    tower: agent.home,
                    start_s: day_start,
                    end_s: day_start + DAY_SECS,
                    activity: 1.1,
                });
            }
        }
        blocks
    }

    /// Poisson-samples the sessions of one block and appends records
    /// (plus injected duplicates/conflicts).
    fn emit_block_sessions(
        &self,
        user_id: u64,
        block: &Block,
        city: &City,
        rng: &mut StdRng,
        out: &mut Vec<LogRecord>,
    ) {
        if block.end_s <= block.start_s {
            return;
        }
        let hours = (block.end_s - block.start_s) as f64 / 3_600.0;
        let mean = self.config.sessions_per_hour * block.activity * hours;
        let count = poisson(rng, mean);
        let tower = &city.towers()[block.tower];
        for _ in 0..count {
            let start_s = rng.gen_range(block.start_s..block.end_s);
            let dur = exponential(rng, self.config.mean_session_secs) as u64;
            let end_s = (start_s + dur).min(block.end_s);
            let bytes = (self.config.mean_session_bytes * lognormal_unit(rng, 1.0)).max(1.0) as u64;
            let record = LogRecord {
                user_id,
                start_s,
                end_s,
                cell_id: tower.id as u32,
                address: tower.address.clone(),
                bytes,
            };
            if rng.gen_range(0.0..1.0) < self.config.duplicate_rate {
                out.push(record.clone());
            }
            if rng.gen_range(0.0..1.0) < self.config.conflict_rate {
                let mut conflicting = record.clone();
                conflicting.bytes = conflicting.bytes / 2 + 1;
                out.push(conflicting);
            }
            out.push(record);
        }
    }
}

fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        return (mean + mean.sqrt() * z).round().max(0.0) as usize;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k;
        }
    }
}

fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Log-normal with median 1 and shape σ.
fn lognormal_unit(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use towerlens_city::config::CityConfig;
    use towerlens_city::generate::generate;
    use towerlens_trace::clean::clean_records;

    fn small_setup() -> (City, AgentPopulation) {
        let city = generate(&CityConfig::tiny(9)).unwrap();
        let pop = AgentPopulation::generate(
            &city,
            AgentConfig {
                n_agents: 60,
                ..AgentConfig::default()
            },
        );
        (city, pop)
    }

    #[test]
    fn deterministic() {
        let (city, pop) = small_setup();
        let w = TraceWindow::days(2);
        let a = pop.emit_logs(&city, &w);
        let b = pop.emit_logs(&city, &w);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn records_reference_valid_towers_and_times() {
        let (city, pop) = small_setup();
        let w = TraceWindow::days(3);
        let logs = pop.emit_logs(&city, &w);
        for r in &logs {
            assert!((r.cell_id as usize) < city.towers().len());
            assert!(r.end_s >= r.start_s);
            assert!(r.bytes >= 1);
            assert!(!r.address.is_empty());
        }
    }

    #[test]
    fn injects_duplicates_and_conflicts() {
        let city = generate(&CityConfig::tiny(9)).unwrap();
        let pop = AgentPopulation::generate(
            &city,
            AgentConfig {
                n_agents: 80,
                duplicate_rate: 0.2,
                conflict_rate: 0.2,
                ..AgentConfig::default()
            },
        );
        let logs = pop.emit_logs(&city, &TraceWindow::days(2));
        let (_, report) = clean_records(&logs);
        assert!(report.duplicates_removed > 0, "{report:?}");
        assert!(report.conflicts_resolved > 0, "{report:?}");
    }

    #[test]
    fn clean_rates_are_zero_when_disabled() {
        let city = generate(&CityConfig::tiny(9)).unwrap();
        let pop = AgentPopulation::generate(
            &city,
            AgentConfig {
                n_agents: 60,
                duplicate_rate: 0.0,
                conflict_rate: 0.0,
                ..AgentConfig::default()
            },
        );
        let logs = pop.emit_logs(&city, &TraceWindow::days(2));
        let (kept, report) = clean_records(&logs);
        // Exact duplicates can still arise by coincidence (same user,
        // tower, second) but must be very rare.
        assert!(report.duplicates_removed + report.conflicts_resolved < logs.len() / 100);
        assert_eq!(kept.len(), report.kept);
    }

    #[test]
    fn workers_visit_transport_hubs_on_weekdays() {
        let (city, pop) = small_setup();
        // Monday only.
        let logs = pop.emit_logs(&city, &TraceWindow::days(1));
        let hub_ids: std::collections::HashSet<usize> = city
            .towers_of_kind(RegionKind::Transport)
            .into_iter()
            .collect();
        let hub_traffic = logs
            .iter()
            .filter(|r| hub_ids.contains(&(r.cell_id as usize)))
            .count();
        assert!(hub_traffic > 0, "no commute traffic on a Monday");
    }

    #[test]
    fn weekend_hub_traffic_lower_than_weekday() {
        let (city, pop) = small_setup();
        let logs = pop.emit_logs(&city, &TraceWindow::days(7));
        let hub_ids: std::collections::HashSet<usize> = city
            .towers_of_kind(RegionKind::Transport)
            .into_iter()
            .collect();
        let w = TraceWindow::days(7);
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        for r in &logs {
            if !hub_ids.contains(&(r.cell_id as usize)) {
                continue;
            }
            if let Some(bin) = w.bin_of(r.start_s) {
                if w.is_weekend_bin(bin) {
                    weekend += 1;
                } else {
                    weekday += 1;
                }
            }
        }
        // 5 weekdays vs 2 weekend days, and weekday days are busier
        // per-day at hubs.
        assert!(
            weekday as f64 / 5.0 > weekend as f64 / 2.0,
            "weekday {weekday} weekend {weekend}"
        );
    }

    #[test]
    fn empty_population() {
        let city = generate(&CityConfig::tiny(9)).unwrap();
        let pop = AgentPopulation::generate(
            &city,
            AgentConfig {
                n_agents: 0,
                ..AgentConfig::default()
            },
        );
        assert!(pop.is_empty());
        assert!(pop.emit_logs(&city, &TraceWindow::days(1)).is_empty());
    }
}
