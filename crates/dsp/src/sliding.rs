//! Sliding-window Goertzel: incremental single-bin DFT maintenance.
//!
//! The batch pipeline evaluates the three principal spectral lines of
//! a finished 4,032-bin traffic vector with [`crate::goertzel`]. A
//! streaming ingester cannot afford an O(N) re-evaluation per arriving
//! record, so this module maintains the same bins *incrementally*:
//!
//! * [`SlidingGoertzel::update`] amends a bin in place when one sample
//!   of the window changes by `delta` — `X_k += delta·e^{−iω_k m}`,
//!   O(bins) per touched sample, the dominant operation for a
//!   fixed-epoch traffic window that fills in as records arrive;
//! * [`SlidingGoertzel::push`] slides the window one sample (drop the
//!   oldest, append the newest) using the sliding-DFT recurrence
//!   `X_k' = e^{iω_k}·(X_k − x_old + x_new)`, valid because
//!   `e^{−iω_k N} = 1` for integer bins.
//!
//! Both are exact in exact arithmetic; in floating point they drift by
//! one rounding per step. The bank therefore recomputes each bin from
//! scratch (the same recurrence as [`crate::goertzel`], so the rescue
//! agrees with the batch kernel) every `rescue_every` operations,
//! bounding the drift to ≤ 1e-9 relative error — the contract pinned
//! by the property tests in `tests/sliding_goertzel.rs`.

use crate::complex::Complex;
use crate::error::DspError;
use crate::goertzel::goertzel;

/// An incrementally-maintained bank of DFT bins over one fixed-length
/// real window.
#[derive(Debug, Clone)]
pub struct SlidingGoertzel {
    /// The window samples, index 0 = oldest.
    window: Vec<f64>,
    /// The maintained bins, parallel to `phasors`.
    bins: Vec<usize>,
    /// Current bin values `X_k`.
    values: Vec<Complex>,
    /// `e^{iω_k}` per bin, precomputed.
    step: Vec<Complex>,
    /// Operations since the last exact recompute, per the rescue
    /// schedule.
    ops: usize,
    /// Exact-recompute period (operations between rescues).
    rescue_every: usize,
}

impl SlidingGoertzel {
    /// Builds a bank over an initial window, evaluating each bin from
    /// scratch. The default rescue period is the window length — one
    /// full slide between exact recomputes.
    ///
    /// # Errors
    /// * [`DspError::EmptyInput`] for an empty window,
    /// * [`DspError::BinOutOfRange`] for a bin ≥ the window length,
    /// * [`DspError::NonFinite`] for NaN/∞ samples.
    pub fn new(window: Vec<f64>, bins: &[usize]) -> Result<Self, DspError> {
        let n = window.len();
        if n == 0 {
            return Err(DspError::EmptyInput);
        }
        let mut values = Vec::with_capacity(bins.len());
        let mut step = Vec::with_capacity(bins.len());
        for &k in bins {
            values.push(goertzel(&window, k)?);
            step.push(Complex::cis(std::f64::consts::TAU * k as f64 / n as f64));
        }
        Ok(SlidingGoertzel {
            window,
            bins: bins.to_vec(),
            values,
            step,
            ops: 0,
            rescue_every: n,
        })
    }

    /// Overrides the exact-recompute period (`0` disables rescues —
    /// only the property tests measuring raw drift want that).
    pub fn with_rescue_every(mut self, period: usize) -> Self {
        self.rescue_every = period;
        self
    }

    /// The window length `N`.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty (never true for a constructed
    /// bank — [`SlidingGoertzel::new`] rejects empty windows).
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The maintained bin indices.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// The current window samples (oldest first).
    pub fn window(&self) -> &[f64] {
        &self.window
    }

    /// The current value of the `i`-th maintained bin.
    pub fn value(&self, i: usize) -> Complex {
        self.values[i]
    }

    /// Amplitude of the `i`-th maintained bin, `|X_k|`.
    pub fn amplitude(&self, i: usize) -> f64 {
        self.values[i].abs()
    }

    /// Adds `delta` to the window sample at offset `m` (0 = oldest)
    /// and amends every maintained bin in place:
    /// `X_k += delta·e^{−iω_k m}`.
    ///
    /// # Errors
    /// [`DspError::BinOutOfRange`] when `m` is outside the window
    /// (reported with the window length, the same convention as the
    /// batch kernel's bin check).
    pub fn update(&mut self, m: usize, delta: f64) -> Result<(), DspError> {
        let n = self.window.len();
        if m >= n {
            return Err(DspError::BinOutOfRange { bin: m, len: n });
        }
        self.window[m] += delta;
        for (i, &k) in self.bins.iter().enumerate() {
            let omega = std::f64::consts::TAU * k as f64 / n as f64;
            self.values[i] += Complex::cis(-omega * m as f64) * delta;
        }
        self.bump();
        Ok(())
    }

    /// Slides the window one sample: drops the oldest, appends
    /// `x_new`, and advances every bin with the sliding-DFT
    /// recurrence `X_k' = e^{iω_k}·(X_k − x_old + x_new)`.
    pub fn push(&mut self, x_new: f64) {
        let x_old = self.window[0];
        self.window.remove(0);
        self.window.push(x_new);
        for (i, &step) in self.step.iter().enumerate() {
            self.values[i] = step * (self.values[i] - Complex::real(x_old) + Complex::real(x_new));
        }
        self.bump();
    }

    /// Recomputes every bin from scratch with the batch kernel,
    /// zeroing the accumulated floating-point drift. Called
    /// automatically every `rescue_every` operations; public so
    /// callers with their own cadence (e.g. a snapshot boundary) can
    /// force exactness.
    pub fn rescue(&mut self) {
        for (i, &k) in self.bins.iter().enumerate() {
            // The window was validated at construction and only
            // mutated through finite deltas; a non-finite sample here
            // means the *caller* fed one in, and the amended value
            // already carries the NaN, so keeping it is faithful.
            if let Ok(v) = goertzel(&self.window, k) {
                self.values[i] = v;
            }
        }
        self.ops = 0;
    }

    fn bump(&mut self) {
        if self.rescue_every == 0 {
            return;
        }
        self.ops += 1;
        if self.ops >= self.rescue_every {
            self.rescue();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                1.5 + (4.0 * t + phase).cos() + 0.4 * (28.0 * t).sin()
            })
            .collect()
    }

    #[test]
    fn construction_matches_batch_kernel_exactly() {
        let x = signal(252, 0.3);
        let bank = SlidingGoertzel::new(x.clone(), &[1, 4, 28]).unwrap();
        for (i, &k) in [1usize, 4, 28].iter().enumerate() {
            assert_eq!(bank.value(i), goertzel(&x, k).unwrap());
        }
    }

    #[test]
    fn update_amends_towards_the_batch_value() {
        let x = signal(144, 0.0);
        let mut bank = SlidingGoertzel::new(x.clone(), &[4]).unwrap();
        let mut reference = x;
        for (m, d) in [(0usize, 3.0), (71, -1.5), (143, 0.25)] {
            bank.update(m, d).unwrap();
            reference[m] += d;
        }
        let exact = goertzel(&reference, 4).unwrap();
        assert!((bank.value(0) - exact).abs() < 1e-9 * (exact.abs() + 1.0));
    }

    #[test]
    fn push_follows_a_moving_signal() {
        let n = 96;
        let stream: Vec<f64> = (0..3 * n)
            .map(|i| (std::f64::consts::TAU * 7.0 * i as f64 / n as f64).sin() + 0.1 * i as f64)
            .collect();
        let mut bank = SlidingGoertzel::new(stream[..n].to_vec(), &[7]).unwrap();
        for &x in &stream[n..] {
            bank.push(x);
        }
        let tail = &stream[stream.len() - n..];
        let exact = goertzel(tail, 7).unwrap();
        assert_eq!(bank.window(), tail);
        assert!((bank.value(0) - exact).abs() < 1e-9 * (exact.abs() + 1.0));
    }

    #[test]
    fn rescue_restores_bitwise_agreement() {
        let x = signal(100, 1.0);
        let mut bank = SlidingGoertzel::new(x, &[4, 28])
            .unwrap()
            .with_rescue_every(0);
        for i in 0..50 {
            bank.update(i, 0.5).unwrap();
        }
        bank.rescue();
        for (i, &k) in [4usize, 28].iter().enumerate() {
            assert_eq!(bank.value(i), goertzel(bank.window(), k).unwrap());
        }
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(
            SlidingGoertzel::new(vec![], &[0]).unwrap_err(),
            DspError::EmptyInput
        );
        assert_eq!(
            SlidingGoertzel::new(vec![1.0, 2.0], &[2]).unwrap_err(),
            DspError::BinOutOfRange { bin: 2, len: 2 }
        );
        let mut bank = SlidingGoertzel::new(vec![1.0, 2.0, 3.0], &[1]).unwrap();
        assert_eq!(
            bank.update(3, 1.0).unwrap_err(),
            DspError::BinOutOfRange { bin: 3, len: 3 }
        );
    }
}
