//! Error types for the DSP crate.
//!
//! Library code never panics on user input; every fallible public API
//! returns `Result<_, DspError>`.

/// Errors produced by the DSP substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// The input signal was empty where a non-empty one is required.
    EmptyInput,
    /// Two inputs that must have the same length did not.
    LengthMismatch {
        /// Length of the first operand.
        expected: usize,
        /// Length of the offending operand.
        actual: usize,
    },
    /// A frequency-bin index was out of range for the transform length.
    BinOutOfRange {
        /// The requested bin.
        bin: usize,
        /// The transform length.
        len: usize,
    },
    /// The signal has zero variance, so z-score normalisation is
    /// undefined (a dead tower that never carried traffic).
    ZeroVariance,
    /// The signal contained a NaN or infinite sample.
    NonFinite {
        /// Index of the first non-finite sample.
        index: usize,
    },
}

impl std::fmt::Display for DspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            DspError::BinOutOfRange { bin, len } => {
                write!(
                    f,
                    "frequency bin {bin} out of range for length-{len} transform"
                )
            }
            DspError::ZeroVariance => {
                write!(
                    f,
                    "signal has zero variance; z-score normalisation undefined"
                )
            }
            DspError::NonFinite { index } => {
                write!(f, "non-finite sample at index {index}")
            }
        }
    }
}

impl std::error::Error for DspError {}

/// Validates that every sample is finite.
///
/// Shared guard used by the public entry points of this crate.
pub(crate) fn check_finite(signal: &[f64]) -> Result<(), DspError> {
    for (i, &x) in signal.iter().enumerate() {
        if !x.is_finite() {
            return Err(DspError::NonFinite { index: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DspError::LengthMismatch {
            expected: 4032,
            actual: 4031,
        };
        assert!(e.to_string().contains("4032"));
        assert!(e.to_string().contains("4031"));
    }

    #[test]
    fn check_finite_flags_first_bad_index() {
        assert_eq!(
            check_finite(&[1.0, f64::NAN, f64::INFINITY]),
            Err(DspError::NonFinite { index: 1 })
        );
        assert_eq!(check_finite(&[0.0, -1.0, 1e300]), Ok(()));
    }
}
