//! Direct O(N²) discrete Fourier transform.
//!
//! This is the reference implementation the FFT is validated against
//! (and the fallback used for prime-length sub-transforms inside the
//! mixed-radix FFT). The definition matches the paper:
//!
//! ```text
//! X[k] = Σ_{n=0}^{N-1} x[n] · e^{-2πikn/N}
//! ```
//!
//! (The paper indexes from 1; we index from 0, which only shifts a
//! global phase convention and none of the amplitude/phase *relations*
//! the analysis relies on.)

use crate::complex::Complex;

/// Computes the forward DFT of a complex signal by direct summation.
///
/// O(N²); intended for reference testing, short signals, and prime-size
/// base cases. Returns an empty vector for empty input.
pub fn dft_direct(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let step = -std::f64::consts::TAU / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                // Reduce k*j modulo n before the float multiply so the
                // phase argument stays small and accurate for large N.
                let idx = (k * j) % n;
                acc += xj * Complex::cis(step * idx as f64);
            }
            acc
        })
        .collect()
}

/// Computes the inverse DFT by direct summation (includes the 1/N
/// factor).
pub fn idft_direct(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let step = std::f64::consts::TAU / n as f64;
    let scale = 1.0 / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &xj) in x.iter().enumerate() {
                let idx = (k * j) % n;
                acc += xj * Complex::cis(step * idx as f64);
            }
            acc.scale(scale)
        })
        .collect()
}

/// Convenience: forward DFT of a real signal.
pub fn dft_direct_real(x: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    dft_direct(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, eps: f64) {
        assert!(
            (a - b).abs() < eps,
            "expected {b} got {a} (|diff|={})",
            (a - b).abs()
        );
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(dft_direct(&[]).is_empty());
        assert!(idft_direct(&[]).is_empty());
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = vec![Complex::real(1.0); 8];
        let spec = dft_direct(&x);
        assert_close(spec[0], Complex::real(8.0), 1e-12);
        for (k, c) in spec.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-12, "bin {k} leaked {}", c.abs());
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        // x[n] = cos(2π·3n/32) has energy only at k = 3 and k = 29.
        let n = 32;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 3.0 * i as f64 / n as f64).cos())
            .collect();
        let spec = dft_direct_real(&x);
        assert!((spec[3].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[29].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, c) in spec.iter().enumerate() {
            if k != 3 && k != 29 {
                assert!(c.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex> = (0..13)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let back = idft_direct(&dft_direct(&x));
        for (a, b) in back.iter().zip(&x) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn real_signal_spectrum_has_conjugate_symmetry() {
        let x: Vec<f64> = (0..21).map(|i| (i as f64 * 0.31).sin() + 0.2).collect();
        let spec = dft_direct_real(&x);
        let n = spec.len();
        for k in 1..n {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert_close(a, b, 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..16).map(|i| Complex::real(i as f64)).collect();
        let b: Vec<Complex> = (0..16).map(|i| Complex::real((i as f64).cos())).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = dft_direct(&a);
        let fb = dft_direct(&b);
        let fsum = dft_direct(&sum);
        for k in 0..16 {
            assert_close(fsum[k], fa[k] + fb[k], 1e-9);
        }
    }
}
