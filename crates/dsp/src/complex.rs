//! A minimal complex-number type.
//!
//! Only the operations the FFT and the spectral analysis actually need
//! are implemented; keeping the surface small keeps the crate easy to
//! audit (the `smoltcp` philosophy: simplicity over generality).

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number in Cartesian form, `re + i·im`, backed by `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `e^{iθ}` — the unit phasor with phase `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Complex { re: cos, im: sin }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Complex {
            re: r * cos,
            im: r * sin,
        }
    }

    /// The complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// The modulus `|z| = sqrt(re² + im²)`.
    ///
    /// Uses `hypot` which is robust against intermediate overflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus `|z|²`, cheaper than [`Complex::abs`] when
    /// only relative magnitudes matter (e.g. energy computations).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase) in `(-π, π]`, matching the paper's
    /// `P = arg X[k]` feature.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        let c = a + b - b;
        assert!((c.re - a.re).abs() < EPS && (c.im - a.im).abs() < EPS);
    }

    #[test]
    fn mul_matches_expansion() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, -4.0);
        // (3+2i)(1-4i) = 3 -12i + 2i -8i² = 11 - 10i
        let p = a * b;
        assert!((p.re - 11.0).abs() < EPS);
        assert!((p.im + 10.0).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, -4.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-10 && (q.im - a.im).abs() < 1e-10);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::TAU / 16.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn conj_negates_phase() {
        let z = Complex::from_polar(1.0, 1.1);
        assert!((z.conj().arg() + 1.1).abs() < EPS);
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex::new(1.0, 0.0).arg()).abs() < EPS);
        assert!((Complex::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((Complex::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
        assert!((Complex::new(0.0, -1.0).arg() + std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn norm_sqr_is_abs_squared() {
        let z = Complex::new(-3.0, 4.0);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!((z.abs() - 5.0).abs() < EPS);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
