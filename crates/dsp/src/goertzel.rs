//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! The frequency-domain features of §5 need only *three* bins per
//! tower (week, day, half-day). A full FFT computes all `N` bins in
//! O(N log N); Goertzel computes one bin in O(N) with two
//! multiply-adds per sample — ~3·O(N) for the three features, with no
//! twiddle table and no allocation. The benchmark suite ablates the
//! two approaches; the pipeline exposes both.
//!
//! Recurrence for bin `k` (ω = 2πk/N):
//!
//! ```text
//! s[n] = x[n] + 2·cos(ω)·s[n−1] − s[n−2]
//! X[k] = (s[N−1] − e^{−iω}·s[N−2]) · e^{iω}
//! ```

use towerlens_obs::LazyCounter;

use crate::complex::Complex;
use crate::error::{check_finite, DspError};

/// Single-bin evaluations performed, across all calls.
static EVALUATIONS: LazyCounter = LazyCounter::new("dsp.goertzel.evaluations");

/// Evaluates a single DFT bin of a real signal.
///
/// Matches `fft_real(x)[k]` up to floating-point error.
///
/// # Errors
/// * [`DspError::EmptyInput`] for an empty signal,
/// * [`DspError::BinOutOfRange`] for `k ≥ N`,
/// * [`DspError::NonFinite`] for NaN/∞ samples.
pub fn goertzel(x: &[f64], k: usize) -> Result<Complex, DspError> {
    let mut tally = 0u64;
    let out = goertzel_sharded(x, k, &mut tally);
    EVALUATIONS.add(tally);
    out
}

/// As [`goertzel`], but the evaluation count lands in the caller's
/// `tally` shard instead of the global registry. Data-parallel callers
/// give each worker its own shard and feed the merged total to
/// [`record_evaluations`] once, so the counter stays *exactly* equal
/// across thread counts instead of depending on racy interleavings.
///
/// # Errors
/// As for [`goertzel`].
pub fn goertzel_sharded(x: &[f64], k: usize, tally: &mut u64) -> Result<Complex, DspError> {
    let n = x.len();
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if k >= n {
        return Err(DspError::BinOutOfRange { bin: k, len: n });
    }
    check_finite(x)?;
    *tally += 1;
    let omega = std::f64::consts::TAU * k as f64 / n as f64;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for &sample in x {
        let s = sample + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // y[N−1] = s[N−1] − e^{−iω}·s[N−2] equals e^{iω(N−1)}·X[k], and
    // e^{iωN} = 1, so X[k] = y·e^{iω}.
    let y = Complex::new(s_prev, 0.0) - Complex::cis(-omega) * s_prev2;
    Ok(y * Complex::cis(omega))
}

/// Evaluates several bins at once (still O(N) per bin but in one pass
/// over the bin list; the signal is traversed once per bin).
///
/// # Errors
/// As for [`goertzel`]; the first failing bin aborts.
pub fn goertzel_bins(x: &[f64], bins: &[usize]) -> Result<Vec<Complex>, DspError> {
    bins.iter().map(|&k| goertzel(x, k)).collect()
}

/// Amplitude and phase of one bin via Goertzel — the §5 feature pair
/// `(A_k, P_k)` without a full transform.
///
/// # Errors
/// As for [`goertzel`].
pub fn goertzel_feature(x: &[f64], k: usize) -> Result<(f64, f64), DspError> {
    let c = goertzel(x, k)?;
    Ok((c.abs(), c.arg()))
}

/// [`goertzel_feature`] with sharded counting — see
/// [`goertzel_sharded`].
///
/// # Errors
/// As for [`goertzel`].
pub fn goertzel_feature_sharded(
    x: &[f64],
    k: usize,
    tally: &mut u64,
) -> Result<(f64, f64), DspError> {
    let c = goertzel_sharded(x, k, tally)?;
    Ok((c.abs(), c.arg()))
}

/// Credits `n` sharded evaluations to the global
/// `dsp.goertzel.evaluations` counter. Pair with
/// [`goertzel_sharded`] / [`goertzel_feature_sharded`].
pub fn record_evaluations(n: u64) {
    EVALUATIONS.add(n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_real;

    fn paper_like(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                2.0 + (4.0 * t).cos() + 0.6 * (28.0 * t + 0.8).cos() + 0.3 * (56.0 * t).sin()
            })
            .collect()
    }

    #[test]
    fn matches_fft_on_paper_bins() {
        let x = paper_like(4_032);
        let spec = fft_real(&x);
        for k in [0usize, 1, 4, 28, 56, 100, 2_016, 4_031] {
            let g = goertzel(&x, k).unwrap();
            assert!(
                (g - spec[k]).abs() < 1e-6 * (spec[k].abs() + 1.0),
                "bin {k}: goertzel {g} vs fft {}",
                spec[k]
            );
        }
    }

    #[test]
    fn matches_fft_on_awkward_lengths() {
        for n in [7usize, 97, 144, 1_008] {
            let x = paper_like(n);
            let spec = fft_real(&x);
            for (k, &expected) in spec.iter().enumerate().take(n.min(12)) {
                let g = goertzel(&x, k).unwrap();
                assert!(
                    (g - expected).abs() < 1e-7 * (expected.abs() + n as f64),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let g = goertzel(&x, 0).unwrap();
        assert!((g.re - 10.0).abs() < 1e-12);
        assert!(g.im.abs() < 1e-12);
    }

    #[test]
    fn feature_pair_matches_spectrum() {
        let x = paper_like(1_008);
        let (amp, phase) = goertzel_feature(&x, 28).unwrap();
        // cos(28t + 0.8)·0.6 ⇒ |X| = 0.6·N/2, arg = 0.8.
        assert!((amp - 0.6 * 1_008.0 / 2.0).abs() < 1e-6);
        assert!((phase - 0.8).abs() < 1e-9);
    }

    #[test]
    fn batch_matches_singles() {
        let x = paper_like(252);
        let batch = goertzel_bins(&x, &[1, 4, 28]).unwrap();
        for (i, &k) in [1usize, 4, 28].iter().enumerate() {
            let single = goertzel(&x, k).unwrap();
            assert_eq!(batch[i], single);
        }
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(goertzel(&[], 0).unwrap_err(), DspError::EmptyInput);
        assert_eq!(
            goertzel(&[1.0, 2.0], 2).unwrap_err(),
            DspError::BinOutOfRange { bin: 2, len: 2 }
        );
        assert!(matches!(
            goertzel(&[f64::NAN], 0).unwrap_err(),
            DspError::NonFinite { .. }
        ));
    }
}
