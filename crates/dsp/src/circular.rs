//! Circular statistics for phase angles.
//!
//! DFT phases live on the circle `(−π, π]`; an arithmetic mean of
//! phases near ±π is meaningless (e.g. mean of `{+3.1, −3.1}` should be
//! ≈π, not 0). Fig 16 reports means and standard deviations of phases
//! per cluster, so we provide proper circular versions, plus the
//! angular distance used when reasoning about the paper's "π apart"
//! observation (office vs resident at k = 4).

/// Circular mean of a set of angles (radians), computed as the argument
/// of the resultant vector. `None` for an empty slice or when the
/// resultant is (numerically) zero — i.e. the angles are uniformly
/// spread and no direction is meaningful.
pub fn circular_mean(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    let r = (s * s + c * c).sqrt() / angles.len() as f64;
    if r < 1e-12 {
        return None;
    }
    Some(s.atan2(c))
}

/// Mean resultant length `R ∈ [0, 1]`: 1 means all angles coincide,
/// 0 means they cancel out. `None` for empty input.
pub fn resultant_length(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    Some((s * s + c * c).sqrt() / angles.len() as f64)
}

/// Circular standard deviation `sqrt(−2·ln R)`; `None` for empty input.
/// Returns `+∞` when `R = 0`.
pub fn circular_stddev(angles: &[f64]) -> Option<f64> {
    let r = resultant_length(angles)?;
    if r == 0.0 {
        return Some(f64::INFINITY);
    }
    Some((-2.0 * r.ln()).sqrt())
}

/// Shortest angular distance between two angles, in `[0, π]`.
pub fn angular_distance(a: f64, b: f64) -> f64 {
    let mut d = (a - b).rem_euclid(std::f64::consts::TAU);
    if d > std::f64::consts::PI {
        d = std::f64::consts::TAU - d;
    }
    d
}

/// Wraps an angle into `(−π, π]`.
pub fn wrap_angle(a: f64) -> f64 {
    let mut w = a.rem_euclid(std::f64::consts::TAU);
    if w > std::f64::consts::PI {
        w -= std::f64::consts::TAU;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn mean_near_wraparound() {
        // Angles straddling ±π must average to ≈π, not 0.
        let m = circular_mean(&[PI - 0.05, -PI + 0.05]).unwrap();
        assert!(angular_distance(m, PI) < 1e-9, "got {m}");
    }

    #[test]
    fn mean_of_identical_angles() {
        let m = circular_mean(&[0.7, 0.7, 0.7]).unwrap();
        assert!((m - 0.7).abs() < 1e-12);
    }

    #[test]
    fn uniform_spread_has_no_mean() {
        let angles: Vec<f64> = (0..4).map(|k| k as f64 * TAU / 4.0).collect();
        assert_eq!(circular_mean(&angles), None);
    }

    #[test]
    fn resultant_length_extremes() {
        assert!((resultant_length(&[1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        let spread: Vec<f64> = vec![0.0, PI];
        assert!(resultant_length(&spread).unwrap() < 1e-12);
        assert_eq!(resultant_length(&[]), None);
    }

    #[test]
    fn stddev_grows_with_spread() {
        let tight = circular_stddev(&[0.0, 0.1, -0.1]).unwrap();
        let loose = circular_stddev(&[0.0, 1.0, -1.0]).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn angular_distance_symmetric_and_bounded() {
        assert!((angular_distance(0.0, PI) - PI).abs() < 1e-12);
        assert!((angular_distance(PI - 0.1, -PI + 0.1) - 0.2).abs() < 1e-9);
        assert_eq!(angular_distance(1.0, 1.0), 0.0);
        assert!((angular_distance(FRAC_PI_2, -FRAC_PI_2) - PI).abs() < 1e-12);
    }

    #[test]
    fn wrap_into_range() {
        assert!((wrap_angle(TAU + 0.3) - 0.3).abs() < 1e-12);
        assert!((wrap_angle(-TAU - 0.3) + 0.3).abs() < 1e-12);
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-9);
        let w = wrap_angle(-PI);
        assert!((w - PI).abs() < 1e-12 || (w + PI).abs() < 1e-12);
    }

    #[test]
    fn paper_phase_opposition_detectable() {
        // Office phases ≈ 1.35, resident/entertainment ≈ −1.65: the
        // paper calls these "about π away"; angular_distance agrees.
        let d = angular_distance(1.35, -1.65);
        assert!((d - 3.0).abs() < 1e-12);
        assert!((d - PI).abs() < 0.2);
    }
}
