//! Normalisation primitives.
//!
//! The traffic vectorizer z-scores every tower's vector ("to eliminate
//! their differences in amplitude", §3.2); the POI validation min-max
//! normalises each POI type before averaging (§3.3.2). Both live here.

use crate::error::{check_finite, DspError};

/// Z-score (standard-score) normalisation: `(x − μ)/σ`.
///
/// Uses the population standard deviation (divide by `N`), matching the
/// usual "zero-score normalisation" of the paper.
///
/// # Errors
/// * [`DspError::EmptyInput`] for an empty slice,
/// * [`DspError::NonFinite`] if a sample is NaN/∞,
/// * [`DspError::ZeroVariance`] if all samples are equal (a tower that
///   never carried traffic cannot be z-scored; callers drop such
///   towers, as the paper's cleaning step drops degenerate logs).
pub fn zscore(x: &[f64]) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    check_finite(x)?;
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    if var == 0.0 {
        return Err(DspError::ZeroVariance);
    }
    let sd = var.sqrt();
    Ok(x.iter().map(|v| (v - mean) / sd).collect())
}

/// Min-max normalisation onto `[0, 1]`.
///
/// A constant slice maps to all zeros (there is no spread to express),
/// which matches how the POI table treats a type that never occurs.
///
/// # Errors
/// * [`DspError::EmptyInput`] / [`DspError::NonFinite`] as for
///   [`zscore`].
pub fn minmax(x: &[f64]) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    check_finite(x)?;
    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi == lo {
        return Ok(vec![0.0; x.len()]);
    }
    let span = hi - lo;
    Ok(x.iter().map(|v| (v - lo) / span).collect())
}

/// Normalises by the maximum value (used for the per-tower profiles of
/// Figs 3–5, which "normalize traffic measured on each cellular tower
/// by its maximum"). A non-positive maximum yields all zeros.
pub fn by_max(x: &[f64]) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    check_finite(x)?;
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi <= 0.0 {
        return Ok(vec![0.0; x.len()]);
    }
    Ok(x.iter().map(|v| v / hi).collect())
}

/// Scales a vector so it sums to one (probability simplex); an all-zero
/// vector is returned unchanged. Used for POI share pie charts (Fig 9)
/// and NTF-IDF.
pub fn to_shares(x: &[f64]) -> Vec<f64> {
    let total: f64 = x.iter().sum();
    if total == 0.0 {
        return x.to_vec();
    }
    x.iter().map(|v| v / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_has_zero_mean_unit_variance() {
        let x = [3.0, 7.0, 1.0, 9.0, 4.0, 4.0];
        let z = zscore(&x).unwrap();
        let n = z.len() as f64;
        let mean = z.iter().sum::<f64>() / n;
        let var = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_is_shift_and_scale_invariant() {
        let x = [3.0, 7.0, 1.0, 9.0];
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v + 100.0).collect();
        let zx = zscore(&x).unwrap();
        let zy = zscore(&y).unwrap();
        for (a, b) in zx.iter().zip(&zy) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_rejects_constant() {
        assert_eq!(zscore(&[2.0; 5]).unwrap_err(), DspError::ZeroVariance);
    }

    #[test]
    fn minmax_bounds_and_endpoints() {
        let x = [5.0, -1.0, 3.0];
        let m = minmax(&x).unwrap();
        assert_eq!(m[0], 1.0);
        assert_eq!(m[1], 0.0);
        assert!((m[2] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_constant_is_zero() {
        assert_eq!(minmax(&[4.0; 3]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn by_max_peaks_at_one() {
        let m = by_max(&[2.0, 8.0, 4.0]).unwrap();
        assert_eq!(m, vec![0.25, 1.0, 0.5]);
    }

    #[test]
    fn by_max_of_dead_tower_is_zero() {
        assert_eq!(by_max(&[0.0, 0.0]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn shares_sum_to_one() {
        let s = to_shares(&[1.0, 3.0]);
        assert_eq!(s, vec![0.25, 0.75]);
        assert_eq!(to_shares(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(zscore(&[]).is_err());
        assert!(minmax(&[]).is_err());
        assert!(by_max(&[]).is_err());
    }
}
