//! Frequency-spectrum analysis of real-valued traffic signals.
//!
//! Wraps a forward DFT of a *real* signal and provides the operations
//! Section 5 of the paper performs on it:
//!
//! * amplitude `A_k = |X[k]|` and phase `P_k = arg X[k]` per bin,
//! * sparse reconstruction keeping a chosen set of bins (and, because
//!   the time signal is real, their conjugate mirrors `N−k`),
//! * energy accounting — total energy, per-bin energy and the *lost
//!   energy fraction* of a reconstruction (the paper reports <6% when
//!   keeping k ∈ {0, 4, 28, 56}),
//! * dominant-bin search over the first half of the spectrum.

use crate::complex::Complex;
use crate::error::{check_finite, DspError};
use crate::fft::{plan_for, FftPlan};

/// The DFT of a real signal, together with the signal it came from.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// The original time-domain samples.
    signal: Vec<f64>,
    /// Full complex spectrum, length `N`.
    bins: Vec<Complex>,
}

impl Spectrum {
    /// Computes the spectrum of a real signal.
    ///
    /// ```
    /// use towerlens_dsp::Spectrum;
    ///
    /// // A pure daily tone over one "week" of 10-minute bins.
    /// let n = 1008;
    /// let signal: Vec<f64> = (0..n)
    ///     .map(|i| (std::f64::consts::TAU * 7.0 * i as f64 / n as f64).cos())
    ///     .collect();
    /// let spectrum = Spectrum::of(&signal)?;
    /// assert_eq!(spectrum.dominant_bins(1), vec![7]);
    /// # Ok::<(), towerlens_dsp::DspError>(())
    /// ```
    ///
    /// # Errors
    /// * [`DspError::EmptyInput`] if `signal` is empty.
    /// * [`DspError::NonFinite`] if any sample is NaN/∞.
    pub fn of(signal: &[f64]) -> Result<Self, DspError> {
        Self::of_with_plan(signal, &plan_for(signal.len()))
    }

    /// Computes the spectrum using a caller-provided plan (the pipeline
    /// transforms 9,600 equal-length vectors, so the plan is shared).
    pub fn of_with_plan(signal: &[f64], plan: &FftPlan) -> Result<Self, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        check_finite(signal)?;
        let bins = plan.forward_real(signal);
        Ok(Spectrum {
            signal: signal.to_vec(),
            bins,
        })
    }

    /// Transform length `N`.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Always `false` (construction rejects empty signals); provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The raw complex bins.
    pub fn bins(&self) -> &[Complex] {
        &self.bins
    }

    /// The original time-domain signal.
    pub fn signal(&self) -> &[f64] {
        &self.signal
    }

    /// Amplitude `|X[k]|` of one bin.
    pub fn amplitude(&self, k: usize) -> Result<f64, DspError> {
        self.bin(k).map(Complex::abs)
    }

    /// Phase `arg X[k] ∈ (−π, π]` of one bin.
    pub fn phase(&self, k: usize) -> Result<f64, DspError> {
        self.bin(k).map(Complex::arg)
    }

    /// The complex value of one bin.
    pub fn bin(&self, k: usize) -> Result<Complex, DspError> {
        self.bins.get(k).copied().ok_or(DspError::BinOutOfRange {
            bin: k,
            len: self.bins.len(),
        })
    }

    /// All amplitudes, `|X[0]| … |X[N−1]|`.
    pub fn amplitudes(&self) -> Vec<f64> {
        self.bins.iter().map(|c| c.abs()).collect()
    }

    /// Amplitudes normalised by `N`, which makes a unit-amplitude
    /// cosine read ~0.5 in its bin regardless of length. The paper's
    /// Fig 15 axes ("amplitude of one day" ∈ [0, 1]) use z-scored
    /// signals, for which this scaling gives comparable magnitudes
    /// across towers.
    pub fn normalized_amplitude(&self, k: usize) -> Result<f64, DspError> {
        Ok(self.amplitude(k)? / self.bins.len() as f64)
    }

    /// Time-domain energy `Σ x[n]²`.
    pub fn signal_energy(&self) -> f64 {
        self.signal.iter().map(|x| x * x).sum()
    }

    /// Reconstructs the time-domain signal keeping only the listed bins
    /// *and their conjugate mirrors* (`N − k`), zeroing everything else
    /// — exactly the paper's `X̂r[k]` construction.
    ///
    /// Bin 0 (DC) has no distinct mirror; listing it keeps it once.
    ///
    /// # Errors
    /// [`DspError::BinOutOfRange`] if any bin ≥ `N`.
    pub fn reconstruct_from_bins(&self, keep: &[usize]) -> Result<Vec<f64>, DspError> {
        self.reconstruct_from_bins_with_plan(keep, &plan_for(self.bins.len()))
    }

    /// [`Spectrum::reconstruct_from_bins`] with a caller-provided plan,
    /// so batch callers (one reconstruction per tower) don't rebuild
    /// the twiddle table every time.
    pub fn reconstruct_from_bins_with_plan(
        &self,
        keep: &[usize],
        plan: &FftPlan,
    ) -> Result<Vec<f64>, DspError> {
        let n = self.bins.len();
        let mut sparse = vec![Complex::ZERO; n];
        for &k in keep {
            if k >= n {
                return Err(DspError::BinOutOfRange { bin: k, len: n });
            }
            sparse[k] = self.bins[k];
            let mirror = (n - k) % n;
            sparse[mirror] = self.bins[mirror];
        }
        Ok(plan.inverse(&sparse).iter().map(|c| c.re).collect())
    }

    /// The fraction of signal energy lost by a sparse reconstruction,
    /// `(Σx² − Σxr²)/Σx²` as defined in §5.1. Returns 0 for an
    /// all-zero signal.
    pub fn lost_energy_fraction(&self, keep: &[usize]) -> Result<f64, DspError> {
        let total = self.signal_energy();
        if total == 0.0 {
            return Ok(0.0);
        }
        let recon = self.reconstruct_from_bins(keep)?;
        let kept: f64 = recon.iter().map(|x| x * x).sum();
        Ok((total - kept) / total)
    }

    /// Finds the `count` bins with the largest amplitude among
    /// `1 ..= N/2` (DC excluded; mirrors excluded), descending by
    /// amplitude. This is how Fig 12(a)'s "three peaks" are located
    /// programmatically.
    pub fn dominant_bins(&self, count: usize) -> Vec<usize> {
        let half = self.bins.len() / 2;
        let mut idx: Vec<usize> = (1..=half.min(self.bins.len().saturating_sub(1))).collect();
        idx.sort_by(|&a, &b| {
            self.bins[b]
                .abs()
                .partial_cmp(&self.bins[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(count);
        idx
    }
}

/// Computes, for a set of equal-length spectra, the per-bin variance of
/// *normalised* amplitude across the set (Fig 13: which frequencies
/// vary most across towers — i.e. carry discriminating information).
///
/// # Errors
/// * [`DspError::EmptyInput`] if `spectra` is empty.
/// * [`DspError::LengthMismatch`] if lengths differ.
pub fn amplitude_variance_across(spectra: &[Spectrum]) -> Result<Vec<f64>, DspError> {
    let first = spectra.first().ok_or(DspError::EmptyInput)?;
    let n = first.len();
    for s in spectra {
        if s.len() != n {
            return Err(DspError::LengthMismatch {
                expected: n,
                actual: s.len(),
            });
        }
    }
    let m = spectra.len() as f64;
    let mut variance = vec![0.0; n];
    for (k, var) in variance.iter_mut().enumerate() {
        let mean: f64 = spectra
            .iter()
            .map(|s| s.bins[k].abs() / n as f64)
            .sum::<f64>()
            / m;
        *var = spectra
            .iter()
            .map(|s| {
                let a = s.bins[k].abs() / n as f64;
                (a - mean) * (a - mean)
            })
            .sum::<f64>()
            / m;
    }
    Ok(variance)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Signal with exactly the paper's structure: weekly (k=4), daily
    /// (k=28) and half-daily (k=56) tones over N=4032 plus DC.
    fn paper_like_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                3.0 + 0.4 * (4.0 * t).cos()
                    + 1.0 * (28.0 * t + 1.0).cos()
                    + 0.5 * (56.0 * t - 0.5).cos()
            })
            .collect()
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert_eq!(Spectrum::of(&[]).unwrap_err(), DspError::EmptyInput);
        assert_eq!(
            Spectrum::of(&[1.0, f64::NAN]).unwrap_err(),
            DspError::NonFinite { index: 1 }
        );
    }

    #[test]
    fn dominant_bins_find_paper_peaks() {
        let x = paper_like_signal(4032);
        let spec = Spectrum::of(&x).unwrap();
        let mut top = spec.dominant_bins(3);
        top.sort_unstable();
        assert_eq!(top, vec![4, 28, 56]);
    }

    #[test]
    fn sparse_reconstruction_of_pure_structure_is_exact() {
        let x = paper_like_signal(1008);
        let spec = Spectrum::of(&x).unwrap();
        // At N=1008 the tones still sit at integer bins 4/28/56.
        let recon = spec.reconstruct_from_bins(&[0, 4, 28, 56]).unwrap();
        for (a, b) in recon.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        let lost = spec.lost_energy_fraction(&[0, 4, 28, 56]).unwrap();
        assert!(lost.abs() < 1e-12);
    }

    #[test]
    fn lost_energy_with_noise_is_small_but_positive() {
        let n = 1008;
        let mut x = paper_like_signal(n);
        // Deterministic pseudo-noise.
        for (i, v) in x.iter_mut().enumerate() {
            *v += 0.05 * ((i * 2654435761) % 1000) as f64 / 1000.0;
        }
        let spec = Spectrum::of(&x).unwrap();
        let lost = spec.lost_energy_fraction(&[0, 4, 28, 56]).unwrap();
        assert!(lost > 0.0, "noise must cost energy");
        assert!(lost < 0.06, "structure dominates: lost={lost}");
    }

    #[test]
    fn amplitude_and_phase_match_construction() {
        let n = 1008;
        let x = paper_like_signal(n);
        let spec = Spectrum::of(&x).unwrap();
        // cos(28t + 1.0) ⇒ X[28] = (N/2)·e^{+i·1.0}
        assert!((spec.amplitude(28).unwrap() - n as f64 / 2.0).abs() < 1e-6);
        assert!((spec.phase(28).unwrap() - 1.0).abs() < 1e-9);
        assert!((spec.phase(56).unwrap() + 0.5).abs() < 1e-9);
    }

    #[test]
    fn bin_out_of_range_is_error() {
        let spec = Spectrum::of(&[1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            spec.amplitude(3),
            Err(DspError::BinOutOfRange { bin: 3, len: 3 })
        ));
        assert!(spec.reconstruct_from_bins(&[7]).is_err());
    }

    #[test]
    fn dc_only_reconstruction_is_the_mean() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let spec = Spectrum::of(&x).unwrap();
        let recon = spec.reconstruct_from_bins(&[0]).unwrap();
        for v in recon {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn variance_across_highlights_differing_bins() {
        // Two signals that differ only in their k=2 component.
        let n = 64;
        let mk = |amp: f64| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let t = std::f64::consts::TAU * i as f64 / n as f64;
                    (1.0 * t).cos() + amp * (2.0 * t).cos()
                })
                .collect()
        };
        let spectra = vec![
            Spectrum::of(&mk(0.1)).unwrap(),
            Spectrum::of(&mk(0.9)).unwrap(),
        ];
        let var = amplitude_variance_across(&spectra).unwrap();
        let argmax = (1..n / 2)
            .max_by(|&a, &b| var[a].partial_cmp(&var[b]).unwrap())
            .unwrap();
        assert_eq!(argmax, 2);
        assert!(var[1] < 1e-12, "shared component has no variance");
    }

    #[test]
    fn variance_across_checks_lengths() {
        let a = Spectrum::of(&[1.0; 8]).unwrap();
        let b = Spectrum::of(&[1.0; 9]).unwrap();
        assert!(matches!(
            amplitude_variance_across(&[a, b]),
            Err(DspError::LengthMismatch { .. })
        ));
        assert!(matches!(
            amplitude_variance_across(&[]),
            Err(DspError::EmptyInput)
        ));
    }
}
