//! Summary statistics and empirical distributions.
//!
//! Small, dependency-free helpers used throughout the analysis: means,
//! variances, extrema with argmax/argmin (peak/valley detection in §4),
//! and the empirical CDF used for Fig 6(b).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(x: &[f64]) -> Option<f64> {
    if x.is_empty() {
        None
    } else {
        Some(x.iter().sum::<f64>() / x.len() as f64)
    }
}

/// Population variance; `None` for an empty slice.
pub fn variance(x: &[f64]) -> Option<f64> {
    let m = mean(x)?;
    Some(x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn stddev(x: &[f64]) -> Option<f64> {
    variance(x).map(f64::sqrt)
}

/// Index and value of the maximum; `None` for empty input. Ties return
/// the first occurrence. NaN samples are skipped.
pub fn argmax(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Index and value of the minimum; `None` for empty input. Ties return
/// the first occurrence. NaN samples are skipped.
pub fn argmin(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation of the sorted
/// sample; `None` for empty input or out-of-range `q`.
pub fn quantile(x: &[f64], q: f64) -> Option<f64> {
    if x.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let w = pos - lo as f64;
        Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
    }
}

/// An empirical cumulative distribution function over a sample.
///
/// Fig 6(b) plots, for each cluster, the CDF of member-to-centroid
/// distances; this type evaluates `F(t) = P(X ≤ t)` and exposes the
/// sorted support for plotting.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of a sample (NaNs are dropped).
    pub fn new(sample: &[f64]) -> Self {
        let mut sorted: Vec<f64> = sample.iter().cloned().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ecdf { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F(t) = (#samples ≤ t)/n`; 0 for an empty sample.
    pub fn eval(&self, t: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= t);
        count as f64 / self.sorted.len() as f64
    }

    /// The smallest `t` with `F(t) ≥ p` (generalised inverse);
    /// `None` if empty or `p` outside `(0, 1]`.
    pub fn inverse(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&p) || p == 0.0 {
            return None;
        }
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted.get(idx).copied()
    }

    /// The sorted support values (for serialising the curve).
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }
}

/// Pearson correlation of two equal-length samples; `None` if lengths
/// differ, inputs are shorter than 2, or either side is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[2.0, 4.0]), Some(1.0));
        assert_eq!(stddev(&[2.0, 4.0]), Some(1.0));
    }

    #[test]
    fn argmax_argmin_first_tie_wins() {
        let x = [1.0, 5.0, 5.0, 0.0, 0.0];
        assert_eq!(argmax(&x), Some((1, 5.0)));
        assert_eq!(argmin(&x), Some((3, 0.0)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_skips_nan() {
        let x = [f64::NAN, 2.0, 1.0];
        assert_eq!(argmax(&x), Some((1, 2.0)));
    }

    #[test]
    fn quantile_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&x, 0.0), Some(1.0));
        assert_eq!(quantile(&x, 1.0), Some(4.0));
        assert_eq!(quantile(&x, 0.5), Some(2.5));
        assert_eq!(quantile(&x, 2.0), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn ecdf_step_function() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.inverse(0.75), Some(2.0));
        assert_eq!(e.inverse(1.0), Some(3.0));
        assert_eq!(e.inverse(0.0), None);
    }

    #[test]
    fn ecdf_drops_nans() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let z = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&x, &[1.0]), None);
    }
}
