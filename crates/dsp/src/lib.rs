//! # towerlens-dsp
//!
//! Signal-processing substrate for the towerlens workspace.
//!
//! The IMC'15 paper analyses per-tower traffic vectors of length
//! `N = 4032` (28 days of 10-minute bins) in the frequency domain. This
//! crate provides everything that analysis needs, built from scratch:
//!
//! * [`Complex`] — minimal complex arithmetic,
//! * [`mod@fft`] — a mixed-radix Cooley–Tukey FFT that handles arbitrary
//!   composite lengths (4032 = 2⁶·3²·7), with an O(N²) direct DFT used
//!   for prime factors and as a reference implementation,
//! * [`spectrum`] — amplitude/phase extraction, band selection and
//!   time-domain reconstruction from a sparse set of components
//!   (the paper's k ∈ {0, 4, 28, 56} reconstruction), energy accounting,
//! * [`normalize`] — z-score and min-max normalisation used by the
//!   traffic vectorizer and the POI validation,
//! * [`sliding`] — incrementally-maintained Goertzel bins (in-place
//!   amendment and sliding-DFT window advance with periodic exact
//!   rescue) for the streaming ingestion daemon,
//! * [`stats`] — summary statistics and empirical CDFs,
//! * [`circular`] — circular statistics for phase angles (Fig 16 needs
//!   means/standard deviations of phases, which are only meaningful in
//!   the circular sense).
//!
//! Design follows the guidance in the repo's networking guides: simple,
//! allocation-conscious, no panics on user input (fallible APIs return
//! [`DspError`]), and extensively tested (unit + property tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circular;
pub mod complex;
pub mod dft;
pub mod error;
pub mod fft;
pub mod goertzel;
pub mod normalize;
pub mod sliding;
pub mod spectrum;
pub mod stats;

pub use complex::Complex;
pub use error::DspError;
pub use fft::{fft, ifft, FftPlan};
pub use goertzel::{goertzel, goertzel_bins, goertzel_feature};
pub use sliding::SlidingGoertzel;
pub use spectrum::Spectrum;
