//! Mixed-radix Cooley–Tukey FFT for arbitrary composite lengths.
//!
//! The traffic vectors in the paper have length `N = 4032 = 2⁶·3²·7`,
//! which is *not* a power of two, so a classic radix-2 FFT does not
//! apply. We implement the general Cooley–Tukey decomposition: for
//! `N = p·m` (with `p` the smallest prime factor of `N`),
//!
//! ```text
//! X[q·m + r] = Σ_{j=0}^{p-1} e^{-2πi·j·(q·m+r)/N} · Y_j[r]
//! ```
//!
//! where `Y_j` is the length-`m` DFT of the decimated sequence
//! `x[j], x[j+p], x[j+2p], …`. Prime factors terminate the recursion
//! in a direct O(p²) DFT, so *any* length is handled correctly; lengths
//! with small prime factors (like 4032) are handled quickly.
//!
//! [`FftPlan`] precomputes the factorisation and per-stage twiddle
//! tables so the per-tower transforms in the pipeline don't repeatedly
//! call `sin`/`cos` 9,600 times over.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use towerlens_obs::LazyCounter;

use crate::complex::Complex;
use crate::dft::dft_direct;

/// Forward transforms executed, across all plans.
static TRANSFORMS: LazyCounter = LazyCounter::new("dsp.fft.transforms");
/// Butterfly-level work: N × (number of factorisation stages) per
/// transform, added once per call rather than per butterfly.
static BUTTERFLIES: LazyCounter = LazyCounter::new("dsp.fft.butterflies");

/// Process-wide plan cache, keyed by transform length. A handful of
/// lengths occur in practice (4032 plus whatever tests exercise) and a
/// plan is O(N) memory, so entries are never evicted.
static PLAN_CACHE: OnceLock<Mutex<BTreeMap<usize, Arc<FftPlan>>>> = OnceLock::new();

/// Returns the shared plan for length-`n` transforms, building and
/// caching it on first use. This is what the one-shot helpers and the
/// spectrum constructors use, so per-tower callers no longer pay the
/// O(N) `sin`/`cos` twiddle-table construction on every transform.
pub fn plan_for(n: usize) -> Arc<FftPlan> {
    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = cache.lock().expect("fft plan cache poisoned");
    map.entry(n)
        .or_insert_with(|| Arc::new(FftPlan::new(n)))
        .clone()
}

/// Reusable work buffers for repeated transforms: batch callers hold
/// one of these so per-signal transforms allocate only their output.
#[derive(Debug, Default)]
pub struct FftScratch {
    /// Complex staging copy of a real input signal.
    time: Vec<Complex>,
    /// Ping-pong buffer for the mixed-radix recursion.
    work: Vec<Complex>,
}

/// Returns the prime factorisation of `n` in non-decreasing order.
///
/// `factorize(4032)` → `[2, 2, 2, 2, 2, 2, 3, 3, 7]`. `n = 0` and
/// `n = 1` return an empty vector.
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// A reusable FFT plan for a fixed transform length.
///
/// Construction is O(N) in memory (one twiddle table of the N-th roots
/// of unity); each execution is O(N log N) for smooth lengths.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    factors: Vec<usize>,
    /// `twiddles[j] = e^{-2πi·j/N}` for the forward transform.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for length-`n` transforms.
    pub fn new(n: usize) -> Self {
        let step = if n == 0 {
            0.0
        } else {
            -std::f64::consts::TAU / n as f64
        };
        let twiddles = (0..n).map(|j| Complex::cis(step * j as f64)).collect();
        FftPlan {
            n,
            factors: factorize(n),
            twiddles,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The prime factorisation the recursion follows.
    pub fn factors(&self) -> &[usize] {
        &self.factors
    }

    /// Forward transform of a complex signal.
    ///
    /// # Panics
    /// Never panics; if `x.len() != self.len()` the input is transformed
    /// with a freshly derived plan of the right size (the documented
    /// fast path only applies when lengths match).
    pub fn forward(&self, x: &[Complex]) -> Vec<Complex> {
        if x.len() != self.n {
            return plan_for(x.len()).forward(x);
        }
        if self.n == 0 {
            return Vec::new();
        }
        TRANSFORMS.inc();
        BUTTERFLIES.add((self.n * self.factors.len().max(1)) as u64);
        let mut out = vec![Complex::ZERO; self.n];
        let mut work = vec![Complex::ZERO; self.n];
        self.rec(x, &mut out, &mut work, 1, &self.factors);
        out
    }

    /// Forward transform of a real signal.
    pub fn forward_real(&self, x: &[f64]) -> Vec<Complex> {
        self.forward_real_with(x, &mut FftScratch::default())
    }

    /// Forward transform of a real signal reusing caller-held scratch
    /// buffers, so a batch of transforms allocates only its outputs.
    /// Bit-identical to [`FftPlan::forward_real`].
    pub fn forward_real_with(&self, x: &[f64], scratch: &mut FftScratch) -> Vec<Complex> {
        if x.len() != self.n {
            return plan_for(x.len()).forward_real_with(x, scratch);
        }
        if self.n == 0 {
            return Vec::new();
        }
        TRANSFORMS.inc();
        BUTTERFLIES.add((self.n * self.factors.len().max(1)) as u64);
        scratch.time.clear();
        scratch.time.extend(x.iter().map(|&v| Complex::real(v)));
        scratch.work.resize(self.n, Complex::ZERO);
        let mut out = vec![Complex::ZERO; self.n];
        self.rec(&scratch.time, &mut out, &mut scratch.work, 1, &self.factors);
        out
    }

    /// Inverse transform (includes the 1/N factor).
    pub fn inverse(&self, spec: &[Complex]) -> Vec<Complex> {
        if spec.len() != self.n {
            return plan_for(spec.len()).inverse(spec);
        }
        if self.n == 0 {
            return Vec::new();
        }
        // IFFT via the conjugation identity: ifft(X) = conj(fft(conj(X)))/N.
        let conj: Vec<Complex> = spec.iter().map(|c| c.conj()).collect();
        let fwd = self.forward(&conj);
        let scale = 1.0 / self.n as f64;
        fwd.iter().map(|c| c.conj().scale(scale)).collect()
    }

    /// Recursive mixed-radix step.
    ///
    /// Transforms the strided view `x[0], x[stride], x[2·stride], …` of
    /// length `factors.product()` into `out`. `stride` doubles as the
    /// twiddle-table step: the strided sub-signal of stride `s` has
    /// fundamental root `e^{-2πi·s/N}`, which is `twiddles[s]`.
    ///
    /// `work` is a ping-pong buffer the same length as `out`: the
    /// sub-transforms land in `work` (using the matching `out` region
    /// as *their* ping-pong space) and the combine pass writes every
    /// `out` slot, so no per-level allocation is needed and the
    /// arithmetic — hence the output bits — is unchanged.
    fn rec(
        &self,
        x: &[Complex],
        out: &mut [Complex],
        work: &mut [Complex],
        stride: usize,
        factors: &[usize],
    ) {
        let n = out.len();
        debug_assert!(x.len() > (n - 1) * stride, "strided view out of bounds");
        debug_assert_eq!(work.len(), n, "work buffer must match output length");
        match factors {
            [] => {
                if n == 1 {
                    out[0] = x[0];
                }
            }
            [_] if n <= 4 => {
                // Tiny base case: direct DFT over the strided view.
                let view: Vec<Complex> = (0..n).map(|i| x[i * stride]).collect();
                let spec = dft_direct(&view);
                out.copy_from_slice(&spec);
            }
            [p, rest @ ..] if rest.is_empty() && n == *p => {
                // Prime base case.
                let view: Vec<Complex> = (0..n).map(|i| x[i * stride]).collect();
                let spec = dft_direct(&view);
                out.copy_from_slice(&spec);
            }
            [p, rest @ ..] => {
                let p = *p;
                let m = n / p;
                // Sub-transforms: Y_j = DFT_m of x[j·stride + i·p·stride].
                for (j, (sub_out, sub_work)) in work
                    .chunks_exact_mut(m)
                    .zip(out.chunks_exact_mut(m))
                    .enumerate()
                {
                    self.rec(&x[j * stride..], sub_out, sub_work, stride * p, rest);
                }
                // Combine: X[q·m + r] = Σ_j twiddle(j·(q·m+r)·stride) · Y_j[r].
                for q in 0..p {
                    for r in 0..m {
                        let k = q * m + r;
                        let mut acc = Complex::ZERO;
                        for (j, chunk) in work.chunks_exact(m).enumerate() {
                            let idx = (j * k * stride) % self.n;
                            acc += chunk[r] * self.twiddles[idx];
                        }
                        out[k] = acc;
                    }
                }
            }
        }
    }
}

/// One-shot forward FFT of a complex signal.
///
/// Runs on the shared per-length plan from [`plan_for`], so repeated
/// one-shot calls at the same length reuse one twiddle table.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    plan_for(x.len()).forward(x)
}

/// One-shot forward FFT of a real signal.
pub fn fft_real(x: &[f64]) -> Vec<Complex> {
    plan_for(x.len()).forward_real(x)
}

/// One-shot inverse FFT (includes the 1/N factor).
pub fn ifft(spec: &[Complex]) -> Vec<Complex> {
    plan_for(spec.len()).inverse(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_direct, dft_direct_real};

    fn assert_spectra_close(a: &[Complex], b: &[Complex], eps: f64) {
        assert_eq!(a.len(), b.len());
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < eps,
                "bin {k}: fft={x} direct={y} |diff|={}",
                (*x - *y).abs()
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn factorize_small_numbers() {
        assert_eq!(factorize(0), Vec::<usize>::new());
        assert_eq!(factorize(1), Vec::<usize>::new());
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(12), vec![2, 2, 3]);
        assert_eq!(factorize(97), vec![97]); // prime
        assert_eq!(factorize(4032), vec![2, 2, 2, 2, 2, 2, 3, 3, 7]);
    }

    #[test]
    fn matches_direct_dft_for_many_lengths() {
        // Mix of powers of two, odd composites, primes, and the paper's
        // sub-lengths.
        for n in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 21, 28, 36, 63, 97, 128, 144,
        ] {
            let x = ramp(n);
            assert_spectra_close(&fft(&x), &dft_direct(&x), 1e-8 * (n as f64 + 1.0));
        }
    }

    #[test]
    fn matches_direct_dft_at_paper_length() {
        let n = 4032;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (std::f64::consts::TAU * 4.0 * t / n as f64).sin()
                    + 0.5 * (std::f64::consts::TAU * 28.0 * t / n as f64).cos()
            })
            .collect();
        let fast = fft_real(&x);
        let slow = dft_direct_real(&x);
        // Spot-check the paper's key bins plus a few others; a full
        // comparison at N=4032 via O(N²) direct DFT is done once here
        // and is still fast enough.
        for k in [0usize, 1, 4, 27, 28, 29, 56, 2016, 4031] {
            assert!(
                (fast[k] - slow[k]).abs() < 1e-6,
                "bin {k} mismatch: {} vs {}",
                fast[k],
                slow[k]
            );
        }
    }

    #[test]
    fn roundtrip_at_paper_length() {
        let n = 4032;
        let x = ramp(n);
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn parseval_holds() {
        // Σ|x[n]|² = (1/N)·Σ|X[k]|²
        let n = 252; // 2²·3²·7
        let x = ramp(n);
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn pure_tone_at_bin_28() {
        let n = 4032;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 28.0 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x);
        assert!((spec[28].abs() - n as f64 / 2.0).abs() < 1e-6);
        assert!((spec[n - 28].abs() - n as f64 / 2.0).abs() < 1e-6);
        let leak: f64 = spec
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != 28 && *k != n - 28)
            .map(|(_, c)| c.abs())
            .fold(0.0, f64::max);
        assert!(leak < 1e-6, "max leakage {leak}");
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = FftPlan::new(96);
        let a = ramp(96);
        let first = plan.forward(&a);
        let second = plan.forward(&a);
        assert_spectra_close(&first, &second, 1e-15);
    }

    #[test]
    fn mismatched_length_falls_back() {
        let plan = FftPlan::new(64);
        let x = ramp(48);
        let spec = plan.forward(&x);
        assert_spectra_close(&spec, &dft_direct(&x), 1e-8);
    }

    #[test]
    fn zero_length_is_ok() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    fn cached_plan_and_scratch_paths_are_bit_identical() {
        let x: Vec<f64> = (0..4032).map(|i| (i as f64 * 0.013).sin() + 2.0).collect();
        let fresh = FftPlan::new(4032).forward_real(&x);
        let cached = plan_for(4032).forward_real(&x);
        let mut scratch = FftScratch::default();
        let with_scratch = plan_for(4032).forward_real_with(&x, &mut scratch);
        // Second use of the same scratch must not disturb the result.
        let with_scratch_again = plan_for(4032).forward_real_with(&x, &mut scratch);
        for k in 0..4032 {
            assert_eq!(fresh[k].re.to_bits(), cached[k].re.to_bits(), "bin {k}");
            assert_eq!(fresh[k].im.to_bits(), cached[k].im.to_bits(), "bin {k}");
            assert_eq!(
                fresh[k].re.to_bits(),
                with_scratch[k].re.to_bits(),
                "bin {k}"
            );
            assert_eq!(
                with_scratch[k].re.to_bits(),
                with_scratch_again[k].re.to_bits(),
                "bin {k}"
            );
        }
        // The cache hands back the same table, not a rebuild.
        assert!(Arc::ptr_eq(&plan_for(4032), &plan_for(4032)));
    }
}
