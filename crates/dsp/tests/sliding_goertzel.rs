//! Property tests pinning the sliding-window Goertzel bank to the
//! from-scratch batch kernel: after any interleaving of window slides
//! and in-place amendments, across window sizes and tower counts, the
//! maintained bins agree with a fresh [`towerlens_dsp::goertzel`]
//! evaluation of the same window to ≤ 1e-9 relative error.

use proptest::prelude::*;
use towerlens_dsp::goertzel::goertzel;
use towerlens_dsp::sliding::SlidingGoertzel;

/// Relative agreement bound between the incremental and batch values.
const TOL: f64 = 1e-9;

fn assert_close(bank: &SlidingGoertzel, context: &str) {
    for (i, &k) in bank.bins().to_vec().iter().enumerate() {
        let exact = goertzel(bank.window(), k).expect("batch kernel");
        let err = (bank.value(i) - exact).abs();
        let scale = exact.abs() + 1.0;
        assert!(
            err <= TOL * scale,
            "{context}: bin {k} drifted {err:.3e} (scale {scale:.3e})"
        );
    }
}

/// One operation on the bank, decoded from a random word.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Slide the window by one sample.
    Push(f64),
    /// Amend one in-window sample by a delta.
    Update { m: usize, delta: f64 },
}

fn decode_op(word: u64, n: usize) -> Op {
    // Deterministic decode: low bit picks the op, the rest shape it.
    // Deltas and samples stay in a plausible traffic-bin range.
    let magnitude = ((word >> 8) % 10_000) as f64 / 10.0;
    let sign = if word & 2 == 0 { 1.0 } else { -1.0 };
    if word & 1 == 0 {
        Op::Push(sign * magnitude)
    } else {
        Op::Update {
            m: ((word >> 3) as usize) % n,
            delta: sign * magnitude,
        }
    }
}

/// Whole-week-like sizes (the serve path uses 144·days) plus awkward
/// small ones.
const WINDOW_SIZES: [usize; 6] = [16, 48, 97, 144, 288, 1_008];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central contract: any interleaving of slides and
    /// amendments stays within 1e-9 of the batch kernel, with the
    /// default rescue schedule running.
    #[test]
    fn interleaved_ops_track_batch_kernel(
        size_i in 0usize..WINDOW_SIZES.len(),
        seed in 0u64..1_000,
        words in prop::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let n = WINDOW_SIZES[size_i];
        let initial: Vec<f64> = (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                20.0 + 10.0 * (t + seed as f64).cos()
            })
            .collect();
        // The serve path's principal-line shape: fundamental, 7th and
        // 14th harmonics (clipped into range for tiny windows).
        let bins: Vec<usize> = [1usize, 7, 14]
            .iter()
            .map(|&k| k % n)
            .collect();
        let mut bank = SlidingGoertzel::new(initial, &bins).unwrap();
        for (step, &w) in words.iter().enumerate() {
            match decode_op(w, n) {
                Op::Push(x) => bank.push(x),
                Op::Update { m, delta } => bank.update(m, delta).unwrap(),
            }
            // The bound must hold at *every* step, not just the end —
            // a consumer classifies from live values mid-stream.
            if step % 16 == 0 {
                assert_close(&bank, &format!("n={n} step={step}"));
            }
        }
        assert_close(&bank, &format!("n={n} final"));
    }

    /// Many towers, one bank each (the serve sharding layout): banks
    /// are independent — interleaving updates across towers changes
    /// nothing.
    #[test]
    fn per_tower_banks_are_independent(
        n_towers in 2usize..12,
        words in prop::collection::vec(0u64..u64::MAX, 1..120),
    ) {
        let n = 96usize;
        let make = |t: usize| {
            let w: Vec<f64> = (0..n).map(|i| (i * (t + 1)) as f64 % 17.0).collect();
            SlidingGoertzel::new(w, &[1, 7, 14]).unwrap()
        };
        let mut interleaved: Vec<SlidingGoertzel> = (0..n_towers).map(make).collect();
        let mut sequential: Vec<SlidingGoertzel> = (0..n_towers).map(make).collect();
        // Interleaved: round-robin across towers in word order.
        for (i, &w) in words.iter().enumerate() {
            let t = i % n_towers;
            match decode_op(w, n) {
                Op::Push(x) => interleaved[t].push(x),
                Op::Update { m, delta } => interleaved[t].update(m, delta).unwrap(),
            }
        }
        // Sequential: each tower replays only its own ops, in order.
        for (t, bank) in sequential.iter_mut().enumerate() {
            for (i, &w) in words.iter().enumerate() {
                if i % n_towers != t {
                    continue;
                }
                match decode_op(w, n) {
                    Op::Push(x) => bank.push(x),
                    Op::Update { m, delta } => bank.update(m, delta).unwrap(),
                }
            }
        }
        for (t, (a, b)) in interleaved.iter().zip(&sequential).enumerate() {
            prop_assert_eq!(a.window(), b.window(), "tower {} window", t);
            for i in 0..a.bins().len() {
                prop_assert_eq!(
                    a.value(i).re.to_bits(),
                    b.value(i).re.to_bits(),
                    "tower {} bin {} re",
                    t,
                    i
                );
                prop_assert_eq!(
                    a.value(i).im.to_bits(),
                    b.value(i).im.to_bits(),
                    "tower {} bin {} im",
                    t,
                    i
                );
            }
        }
    }

    /// A forced rescue lands bit-identically on the batch kernel —
    /// the drift bound is not just small, it is periodically zero.
    #[test]
    fn rescue_is_bit_identical_to_batch(
        words in prop::collection::vec(0u64..u64::MAX, 1..100),
    ) {
        let n = 144usize;
        let initial = vec![1.0f64; n];
        let mut bank = SlidingGoertzel::new(initial, &[1, 7, 14])
            .unwrap()
            .with_rescue_every(0);
        for &w in &words {
            match decode_op(w, n) {
                Op::Push(x) => bank.push(x),
                Op::Update { m, delta } => bank.update(m, delta).unwrap(),
            }
        }
        bank.rescue();
        for (i, &k) in bank.bins().to_vec().iter().enumerate() {
            let exact = goertzel(bank.window(), k).unwrap();
            prop_assert_eq!(bank.value(i).re.to_bits(), exact.re.to_bits());
            prop_assert_eq!(bank.value(i).im.to_bits(), exact.im.to_bits());
        }
    }
}
