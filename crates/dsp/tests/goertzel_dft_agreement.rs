//! Cross-validates the O(n) Goertzel single-bin evaluator against the
//! O(n²) direct-definition DFT — two independent implementations of
//! the same transform. The bins checked are the ones the paper's
//! frequency analysis actually reads off the 4032-bin month: k = 4
//! (the 7-day rhythm), k = 28 (the daily rhythm), and k = 56 (the
//! 12-hour harmonic).

use towerlens_dsp::dft::dft_direct_real;
use towerlens_dsp::goertzel::{goertzel, goertzel_feature};

const PAPER_BINS: usize = 4_032;

/// A month of paper-like traffic: a DC floor plus weekly, daily, and
/// half-day tones with distinct amplitudes and phases.
fn paper_like(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = std::f64::consts::TAU * i as f64 / n as f64;
            2.0 + 0.9 * (4.0 * t + 0.25).cos()
                + 0.6 * (28.0 * t + 0.8).cos()
                + 0.3 * (56.0 * t).sin()
        })
        .collect()
}

#[test]
fn goertzel_matches_direct_dft_at_the_paper_harmonics() {
    let x = paper_like(PAPER_BINS);
    let spectrum = dft_direct_real(&x);
    for k in [4usize, 28, 56] {
        let g = goertzel(&x, k).expect("in-range bin");
        let d = spectrum[k];
        let tolerance = 1e-6 * (d.abs() + 1.0);
        assert!(
            (g - d).abs() < tolerance,
            "bin {k}: goertzel {g} vs direct DFT {d}"
        );
    }
}

#[test]
fn both_transforms_recover_the_injected_tones() {
    let x = paper_like(PAPER_BINS);
    let spectrum = dft_direct_real(&x);
    let half = PAPER_BINS as f64 / 2.0;
    for (k, amplitude) in [(4usize, 0.9), (28, 0.6), (56, 0.3)] {
        let (goertzel_amp, _) = goertzel_feature(&x, k).expect("in-range bin");
        assert!(
            (goertzel_amp - amplitude * half).abs() < 1e-6,
            "bin {k}: goertzel amplitude {goertzel_amp}"
        );
        assert!(
            (spectrum[k].abs() - amplitude * half).abs() < 1e-6,
            "bin {k}: direct DFT amplitude {}",
            spectrum[k].abs()
        );
    }
}

#[test]
fn agreement_holds_off_peak_too() {
    // Bins carrying only numerical noise must agree as exactly as the
    // loud ones — a resonator drift bug would show up here first.
    let x = paper_like(PAPER_BINS);
    let spectrum = dft_direct_real(&x);
    for k in [3usize, 5, 27, 29, 55, 57, 500] {
        let g = goertzel(&x, k).expect("in-range bin");
        let d = spectrum[k];
        assert!(
            (g - d).abs() < 1e-6 * (d.abs() + 1.0),
            "quiet bin {k}: goertzel {g} vs direct DFT {d}"
        );
    }
}
