//! # towerlens-opt
//!
//! Small optimisation substrate for the paper's §5.3 component
//! analysis:
//!
//! * [`simplex`] — projection onto the probability simplex and the
//!   simplex-constrained least-squares problem
//!   `min ‖F − Σᵢ xᵢ·F⁰ᵢ‖²  s.t.  Σᵢ xᵢ = 1, xᵢ ≥ 0`
//!   (the paper's quadratic program recovering the convex-combination
//!   coefficients of a tower over the four primary components). Two
//!   solvers: an exact active-set enumeration for small vertex counts
//!   and a projected-gradient method for the general case; the
//!   benchmarks ablate them.
//! * [`linalg`] — the dense Gaussian-elimination solver the active-set
//!   method needs.
//! * [`tfidf`] — TF-IDF and normalised TF-IDF over POI counts, the
//!   ground-truth side of Table 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod linalg;
pub mod simplex;
pub mod tfidf;

pub use error::OptError;
pub use simplex::{
    project_to_simplex, simplex_least_squares, SimplexLsOptions, SimplexLsSolution, Solver,
};
pub use tfidf::{ntf_idf, tf_idf, TfIdfModel};
