//! TF-IDF over POI counts (§5.3, validating the convex coefficients).
//!
//! The paper treats each tower as a "document" and each POI type as a
//! "term":
//!
//! ```text
//! IDF_i      = log(M / M_i)
//! TF-IDF_i^m = IDF_i · log(1 + POI_i^m)
//! NTF-IDF_i^m = TF-IDF_i^m / Σ_j TF-IDF_j^m
//! ```
//!
//! where `M` is the total number of towers and `M_i` the number of
//! towers with at least one type-`i` POI nearby.

use crate::error::OptError;

/// A fitted TF-IDF model: the per-type IDF weights learned from a
/// corpus of per-tower POI counts.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    idf: Vec<f64>,
}

impl TfIdfModel {
    /// Fits IDF weights from per-tower POI counts.
    ///
    /// `counts[m][i]` is the number of type-`i` POIs near tower `m`.
    /// A type that appears near *no* tower receives IDF
    /// `log(M / 1) = log M` (we clamp `M_i ≥ 1` to avoid division by
    /// zero; such a type then always has TF = 0 anyway).
    ///
    /// # Errors
    /// [`OptError::EmptyInput`] for no towers or zero types;
    /// [`OptError::DimensionMismatch`] for ragged rows.
    pub fn fit(counts: &[Vec<f64>]) -> Result<Self, OptError> {
        let m_total = counts.len();
        let first = counts.first().ok_or(OptError::EmptyInput)?;
        let types = first.len();
        if types == 0 {
            return Err(OptError::EmptyInput);
        }
        for row in counts {
            if row.len() != types {
                return Err(OptError::DimensionMismatch {
                    expected: types,
                    actual: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(OptError::NonFinite);
            }
        }
        let idf = (0..types)
            .map(|i| {
                let m_i = counts.iter().filter(|row| row[i] > 0.0).count().max(1);
                (m_total as f64 / m_i as f64).ln()
            })
            .collect();
        Ok(TfIdfModel { idf })
    }

    /// Number of POI types.
    pub fn types(&self) -> usize {
        self.idf.len()
    }

    /// The per-type IDF weights.
    pub fn idf(&self) -> &[f64] {
        &self.idf
    }

    /// TF-IDF vector of one tower's POI counts.
    ///
    /// # Errors
    /// [`OptError::DimensionMismatch`] if the count of types differs
    /// from the fitted model.
    pub fn tf_idf(&self, poi_counts: &[f64]) -> Result<Vec<f64>, OptError> {
        if poi_counts.len() != self.idf.len() {
            return Err(OptError::DimensionMismatch {
                expected: self.idf.len(),
                actual: poi_counts.len(),
            });
        }
        Ok(poi_counts
            .iter()
            .zip(&self.idf)
            .map(|(&c, &w)| w * (1.0 + c.max(0.0)).ln())
            .collect())
    }

    /// Normalised TF-IDF (rows sum to 1; an all-zero row stays zero).
    ///
    /// # Errors
    /// As for [`TfIdfModel::tf_idf`].
    pub fn ntf_idf(&self, poi_counts: &[f64]) -> Result<Vec<f64>, OptError> {
        let t = self.tf_idf(poi_counts)?;
        let total: f64 = t.iter().sum();
        if total <= 0.0 {
            return Ok(vec![0.0; t.len()]);
        }
        Ok(t.into_iter().map(|v| v / total).collect())
    }
}

/// One-shot TF-IDF for a whole corpus: fits the model and transforms
/// every row.
///
/// # Errors
/// As for [`TfIdfModel::fit`].
pub fn tf_idf(counts: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, OptError> {
    let model = TfIdfModel::fit(counts)?;
    counts.iter().map(|row| model.tf_idf(row)).collect()
}

/// One-shot normalised TF-IDF for a whole corpus.
///
/// # Errors
/// As for [`TfIdfModel::fit`].
pub fn ntf_idf(counts: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, OptError> {
    let model = TfIdfModel::fit(counts)?;
    counts.iter().map(|row| model.ntf_idf(row)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 towers × 3 POI types. Type 0 is ubiquitous (low IDF), type 2
    /// rare (high IDF).
    fn corpus() -> Vec<Vec<f64>> {
        vec![
            vec![10.0, 5.0, 0.0],
            vec![8.0, 0.0, 0.0],
            vec![12.0, 3.0, 7.0],
            vec![9.0, 0.0, 0.0],
        ]
    }

    #[test]
    fn idf_orders_by_rarity() {
        let model = TfIdfModel::fit(&corpus()).unwrap();
        let idf = model.idf();
        assert!(idf[0] < idf[1], "ubiquitous type has lowest idf");
        assert!(idf[1] < idf[2], "rare type has highest idf");
        assert_eq!(idf[0], 0.0, "appears everywhere ⇒ idf = ln(1) = 0");
        assert!((idf[2] - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn tf_idf_zero_count_is_zero() {
        let model = TfIdfModel::fit(&corpus()).unwrap();
        let t = model.tf_idf(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(t, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn ntf_idf_rows_sum_to_one() {
        let rows = ntf_idf(&corpus()).unwrap();
        for row in &rows {
            let sum: f64 = row.iter().sum();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-12, "sum={sum}");
        }
        // Tower 1 has only the zero-IDF type ⇒ all-zero NTF-IDF row.
        assert_eq!(rows[1], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn dominant_type_gets_dominant_share() {
        // Tower 2 is the only one with type-2 POIs: its NTF-IDF for
        // type 2 should dominate.
        let rows = ntf_idf(&corpus()).unwrap();
        let row = &rows[2];
        assert!(row[2] > row[0] && row[2] > row[1], "{row:?}");
    }

    #[test]
    fn unseen_type_does_not_panic() {
        let counts = vec![vec![1.0, 0.0], vec![2.0, 0.0]];
        let model = TfIdfModel::fit(&counts).unwrap();
        assert!((model.idf()[1] - (2.0f64).ln()).abs() < 1e-12);
        let t = model.tf_idf(&[0.0, 5.0]).unwrap();
        assert!(t[1] > 0.0);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(TfIdfModel::fit(&[]), Err(OptError::EmptyInput)));
        assert!(matches!(
            TfIdfModel::fit(&[vec![]]),
            Err(OptError::EmptyInput)
        ));
        assert!(matches!(
            TfIdfModel::fit(&[vec![1.0], vec![1.0, 2.0]]),
            Err(OptError::DimensionMismatch { .. })
        ));
        let model = TfIdfModel::fit(&corpus()).unwrap();
        assert!(model.tf_idf(&[1.0]).is_err());
    }

    #[test]
    fn negative_counts_clamped() {
        let model = TfIdfModel::fit(&corpus()).unwrap();
        let t = model.tf_idf(&[-5.0, 1.0, 1.0]).unwrap();
        assert_eq!(t[0], 0.0);
    }
}
