//! Simplex-constrained least squares — the paper's §5.3 quadratic
//! program.
//!
//! Given the features `F⁰₁ … F⁰ₘ` of the most representative towers
//! (polygon vertices) and the feature `F` of an arbitrary tower, find
//! the convex-combination coefficients:
//!
//! ```text
//! minimize  ‖F − Σᵢ xᵢ·F⁰ᵢ‖²
//! subject to Σᵢ xᵢ = 1,  xᵢ ≥ 0
//! ```
//!
//! Geometrically this projects `F` onto the convex hull of the
//! vertices: a point inside the polygon recovers its exact convex
//! combination; a point outside maps to the nearest hull point — the
//! paper's "good approximation" for noisy towers.
//!
//! Two solvers:
//!
//! * [`Solver::ActiveSet`] — exact: enumerates supports (non-empty
//!   subsets of vertices), solves each equality-constrained KKT
//!   system, and keeps the best feasible candidate. Exponential in the
//!   vertex count but exact and fast for the paper's m = 4.
//! * [`Solver::ProjectedGradient`] — iterative: gradient steps with
//!   Duchi et al. Euclidean projection onto the simplex. Scales to
//!   many vertices; used as the cross-check and in the ablation bench.

use crate::error::OptError;
use crate::linalg::{dot, norm_sqr, solve};

/// Euclidean projection of `v` onto the probability simplex
/// `{x : Σxᵢ = 1, xᵢ ≥ 0}` (Duchi, Shalev-Shwartz, Singer, Chandra,
/// ICML'08).
///
/// # Errors
/// [`OptError::EmptyInput`] for an empty vector,
/// [`OptError::NonFinite`] for NaN/∞ entries.
pub fn project_to_simplex(v: &[f64]) -> Result<Vec<f64>, OptError> {
    if v.is_empty() {
        return Err(OptError::EmptyInput);
    }
    if v.iter().any(|x| !x.is_finite()) {
        return Err(OptError::NonFinite);
    }
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut cumsum = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &u) in sorted.iter().enumerate() {
        cumsum += u;
        let t = (cumsum - 1.0) / (i + 1) as f64;
        if u - t > 0.0 {
            rho = i;
            theta = t;
        }
    }
    let _ = rho;
    Ok(v.iter().map(|&x| (x - theta).max(0.0)).collect())
}

/// Which algorithm [`simplex_least_squares`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solver {
    /// Exact support enumeration (vertex counts ≤ ~16).
    ActiveSet,
    /// Projected gradient descent.
    ProjectedGradient,
}

/// Options for [`simplex_least_squares`].
#[derive(Debug, Clone, Copy)]
pub struct SimplexLsOptions {
    /// Algorithm choice.
    pub solver: Solver,
    /// Iteration cap (projected gradient only).
    pub max_iters: usize,
    /// Convergence tolerance on the coefficient change per iteration
    /// (projected gradient only).
    pub tolerance: f64,
}

impl Default for SimplexLsOptions {
    fn default() -> Self {
        SimplexLsOptions {
            solver: Solver::ActiveSet,
            max_iters: 10_000,
            tolerance: 1e-12,
        }
    }
}

/// Solution of the simplex-constrained least-squares problem.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexLsSolution {
    /// Convex-combination coefficients, one per vertex; non-negative,
    /// summing to 1 (up to numerical tolerance).
    pub coefficients: Vec<f64>,
    /// The projected point `Σᵢ xᵢ·F⁰ᵢ` (the paper's `F^r`).
    pub projection: Vec<f64>,
    /// Squared residual `‖F − F^r‖²`.
    pub residual_sqr: f64,
}

/// Solves `min ‖target − Σᵢ xᵢ·vertexᵢ‖²` over the probability
/// simplex. See module docs.
///
/// ```
/// use towerlens_opt::{simplex_least_squares, SimplexLsOptions};
///
/// // The midpoint of two vertices decomposes 50/50.
/// let vertices = vec![vec![0.0, 0.0], vec![2.0, 0.0]];
/// let solution = simplex_least_squares(&vertices, &[1.0, 0.0], SimplexLsOptions::default())?;
/// assert!((solution.coefficients[0] - 0.5).abs() < 1e-9);
/// assert!(solution.residual_sqr < 1e-12);
/// # Ok::<(), towerlens_opt::OptError>(())
/// ```
///
/// # Errors
/// * [`OptError::EmptyInput`] — no vertices,
/// * [`OptError::DimensionMismatch`] — inconsistent dimensions,
/// * [`OptError::NonFinite`] — NaN/∞ anywhere,
/// * [`OptError::DidNotConverge`] — projected gradient exceeded its
///   budget (the active-set path never returns this).
pub fn simplex_least_squares(
    vertices: &[Vec<f64>],
    target: &[f64],
    options: SimplexLsOptions,
) -> Result<SimplexLsSolution, OptError> {
    let m = vertices.len();
    if m == 0 {
        return Err(OptError::EmptyInput);
    }
    let dim = vertices[0].len();
    for v in vertices {
        if v.len() != dim {
            return Err(OptError::DimensionMismatch {
                expected: dim,
                actual: v.len(),
            });
        }
        if v.iter().any(|x| !x.is_finite()) {
            return Err(OptError::NonFinite);
        }
    }
    if target.len() != dim {
        return Err(OptError::DimensionMismatch {
            expected: dim,
            actual: target.len(),
        });
    }
    if target.iter().any(|x| !x.is_finite()) {
        return Err(OptError::NonFinite);
    }

    let coefficients = match options.solver {
        Solver::ActiveSet => active_set(vertices, target)?,
        Solver::ProjectedGradient => projected_gradient(vertices, target, options)?,
    };
    Ok(assemble(vertices, target, coefficients))
}

fn assemble(vertices: &[Vec<f64>], target: &[f64], coefficients: Vec<f64>) -> SimplexLsSolution {
    let dim = target.len();
    let mut projection = vec![0.0; dim];
    for (x, v) in coefficients.iter().zip(vertices) {
        for (p, c) in projection.iter_mut().zip(v) {
            *p += x * c;
        }
    }
    let residual_sqr = projection
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    SimplexLsSolution {
        coefficients,
        projection,
        residual_sqr,
    }
}

/// Exact solver: for every non-empty support `S ⊆ {1..m}`, solve the
/// equality-constrained problem restricted to `S` via its KKT system,
/// keep feasible candidates, return the one with least residual.
fn active_set(vertices: &[Vec<f64>], target: &[f64]) -> Result<Vec<f64>, OptError> {
    let m = vertices.len();
    // Support enumeration is 2^m; beyond ~20 vertices it is both
    // intractable and would overflow the u32 mask below. Fall back to
    // the iterative solver rather than panicking or mis-reporting
    // `Singular`.
    if m > 20 {
        return projected_gradient(vertices, target, SimplexLsOptions::default());
    }
    // Gram matrix G[i][j] = ⟨vᵢ, vⱼ⟩ and linear term c[i] = ⟨vᵢ, t⟩.
    let gram: Vec<f64> = (0..m)
        .flat_map(|i| (0..m).map(move |j| (i, j)))
        .map(|(i, j)| dot(&vertices[i], &vertices[j]))
        .collect();
    let lin: Vec<f64> = (0..m).map(|i| dot(&vertices[i], target)).collect();

    let mut best: Option<(f64, Vec<f64>)> = None;
    let t_norm = norm_sqr(target);

    for mask in 1u32..(1 << m) {
        let support: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
        let s = support.len();
        // KKT system for min ½xᵀGx − cᵀx s.t. 1ᵀx = 1 on the support:
        // [ G_S  1 ] [x]   [c_S]
        // [ 1ᵀ   0 ] [λ] = [ 1 ]
        let n = s + 1;
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for (r, &i) in support.iter().enumerate() {
            for (c, &j) in support.iter().enumerate() {
                a[r * n + c] = gram[i * m + j];
            }
            a[r * n + s] = 1.0;
            a[s * n + r] = 1.0;
            b[r] = lin[i];
        }
        b[s] = 1.0;
        let sol = match solve(&a, &b, n) {
            Ok(sol) => sol,
            Err(OptError::Singular) => continue, // degenerate support; skip
            Err(e) => return Err(e),
        };
        // Feasibility: all coefficients ≥ −ε.
        if sol[..s].iter().any(|&x| x < -1e-9) {
            continue;
        }
        let mut x = vec![0.0; m];
        for (r, &i) in support.iter().enumerate() {
            x[i] = sol[r].max(0.0);
        }
        // Renormalise tiny clamping drift.
        let total: f64 = x.iter().sum();
        if total > 0.0 {
            for xi in x.iter_mut() {
                *xi /= total;
            }
        }
        // Objective ‖t‖² − 2cᵀx + xᵀGx.
        let mut quad = 0.0;
        for i in 0..m {
            if x[i] == 0.0 {
                continue;
            }
            for j in 0..m {
                quad += x[i] * x[j] * gram[i * m + j];
            }
        }
        let obj = t_norm - 2.0 * dot(&lin, &x) + quad;
        match &best {
            Some((bo, _)) if *bo <= obj => {}
            _ => best = Some((obj, x)),
        }
    }
    best.map(|(_, x)| x).ok_or(OptError::Singular)
}

/// Projected-gradient solver with a Lipschitz step size derived from
/// the Gram matrix trace (a safe upper bound on its spectral norm).
fn projected_gradient(
    vertices: &[Vec<f64>],
    target: &[f64],
    options: SimplexLsOptions,
) -> Result<Vec<f64>, OptError> {
    let m = vertices.len();
    let gram: Vec<f64> = (0..m)
        .flat_map(|i| (0..m).map(move |j| (i, j)))
        .map(|(i, j)| dot(&vertices[i], &vertices[j]))
        .collect();
    let lin: Vec<f64> = (0..m).map(|i| dot(&vertices[i], target)).collect();
    // L ≤ trace(G); step = 1/L. Guard a zero trace (all-zero vertices).
    let trace: f64 = (0..m).map(|i| gram[i * m + i]).sum();
    let step = if trace > 0.0 { 1.0 / trace } else { 1.0 };

    let mut x = vec![1.0 / m as f64; m];
    for iter in 0..options.max_iters {
        // ∇ = Gx − c
        let mut grad = vec![0.0; m];
        for i in 0..m {
            grad[i] = (0..m).map(|j| gram[i * m + j] * x[j]).sum::<f64>() - lin[i];
        }
        let proposal: Vec<f64> = x.iter().zip(&grad).map(|(xi, g)| xi - step * g).collect();
        let next = project_to_simplex(&proposal)?;
        let delta: f64 = next
            .iter()
            .zip(&x)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        x = next;
        if delta < options.tolerance {
            return Ok(x);
        }
        if iter == options.max_iters - 1 {
            return Err(OptError::DidNotConverge {
                iterations: options.max_iters,
                residual: delta,
            });
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(solver: Solver) -> SimplexLsOptions {
        SimplexLsOptions {
            solver,
            max_iters: 200_000,
            tolerance: 1e-13,
        }
    }

    /// A unit square in 2D: vertices of the hull.
    fn square() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]
    }

    #[test]
    fn projection_basics() {
        let p = project_to_simplex(&[0.5, 0.5]).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12);

        let p = project_to_simplex(&[2.0, 0.0]).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-12 && p[1].abs() < 1e-12);

        let p = project_to_simplex(&[-1.0, -1.0, -1.0]).unwrap();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for v in &p {
            assert!((*v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_is_feasible_for_arbitrary_input() {
        for v in [
            vec![10.0, -3.0, 0.2, 0.2],
            vec![0.0, 0.0],
            vec![1e6, 1e-6, -1e6],
        ] {
            let p = project_to_simplex(&v).unwrap();
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn projection_rejects_bad_input() {
        assert_eq!(project_to_simplex(&[]), Err(OptError::EmptyInput));
        assert_eq!(project_to_simplex(&[f64::NAN]), Err(OptError::NonFinite));
    }

    #[test]
    fn interior_point_recovers_exact_combination() {
        // Equal mix of the square's vertices is its centre.
        let target = [0.5, 0.5];
        for solver in [Solver::ActiveSet, Solver::ProjectedGradient] {
            let sol = simplex_least_squares(&square(), &target, opts(solver)).unwrap();
            assert!(sol.residual_sqr < 1e-10, "{solver:?}: {}", sol.residual_sqr);
            let sum: f64 = sol.coefficients.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            // Reconstruction must hit the target even though the
            // coefficient vector itself is not unique for 4 vertices
            // in 2D.
            assert!((sol.projection[0] - 0.5).abs() < 1e-6);
            assert!((sol.projection[1] - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn vertex_target_gets_unit_coefficient() {
        let verts = vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 2.0]];
        let sol = simplex_least_squares(&verts, &[0.0, 2.0], opts(Solver::ActiveSet)).unwrap();
        assert!((sol.coefficients[2] - 1.0).abs() < 1e-9);
        assert!(sol.coefficients[0].abs() < 1e-9);
        assert!(sol.coefficients[1].abs() < 1e-9);
        assert!(sol.residual_sqr < 1e-12);
    }

    #[test]
    fn outside_point_projects_onto_hull() {
        let verts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        // Point beyond the hypotenuse projects onto it.
        let target = [1.0, 1.0];
        for solver in [Solver::ActiveSet, Solver::ProjectedGradient] {
            let sol = simplex_least_squares(&verts, &target, opts(solver)).unwrap();
            assert!((sol.projection[0] - 0.5).abs() < 1e-6, "{solver:?}");
            assert!((sol.projection[1] - 0.5).abs() < 1e-6, "{solver:?}");
            assert!((sol.residual_sqr - 0.5).abs() < 1e-6, "{solver:?}");
            assert!(sol.coefficients[0].abs() < 1e-6, "{solver:?}");
        }
    }

    #[test]
    fn solvers_agree_on_random_instances() {
        // Deterministic pseudo-random targets around a tetrahedron in
        // 3D — the paper's exact setting (4 vertices, 3 features).
        let verts = vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 0.1, 0.0],
            vec![0.2, 1.0, 0.1],
            vec![0.1, 0.2, 1.0],
        ];
        for s in 0..24u64 {
            let t = [
                ((s * 2654435761) % 1000) as f64 / 500.0 - 0.5,
                ((s * 40503) % 1000) as f64 / 500.0 - 0.5,
                ((s * 9176) % 1000) as f64 / 500.0 - 0.5,
            ];
            let exact = simplex_least_squares(&verts, &t, opts(Solver::ActiveSet)).unwrap();
            let pg = simplex_least_squares(&verts, &t, opts(Solver::ProjectedGradient)).unwrap();
            assert!(
                (exact.residual_sqr - pg.residual_sqr).abs() < 1e-5,
                "seed {s}: exact {} vs pg {}",
                exact.residual_sqr,
                pg.residual_sqr
            );
            for (a, b) in exact.projection.iter().zip(&pg.projection) {
                assert!((a - b).abs() < 1e-3, "seed {s}");
            }
        }
    }

    #[test]
    fn single_vertex_problem() {
        let sol =
            simplex_least_squares(&[vec![3.0, 4.0]], &[0.0, 0.0], opts(Solver::ActiveSet)).unwrap();
        assert_eq!(sol.coefficients, vec![1.0]);
        assert!((sol.residual_sqr - 25.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            simplex_least_squares(&[], &[1.0], SimplexLsOptions::default()),
            Err(OptError::EmptyInput)
        ));
        assert!(matches!(
            simplex_least_squares(
                &[vec![1.0], vec![1.0, 2.0]],
                &[1.0],
                SimplexLsOptions::default()
            ),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            simplex_least_squares(&[vec![1.0]], &[1.0, 2.0], SimplexLsOptions::default()),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            simplex_least_squares(&[vec![f64::NAN]], &[1.0], SimplexLsOptions::default()),
            Err(OptError::NonFinite)
        ));
    }

    #[test]
    fn coefficients_always_feasible() {
        let verts = square();
        for s in 0..16u64 {
            let t = [
                ((s * 48271) % 997) as f64 / 300.0 - 1.0,
                ((s * 16807) % 997) as f64 / 300.0 - 1.0,
            ];
            let sol = simplex_least_squares(&verts, &t, opts(Solver::ActiveSet)).unwrap();
            let sum: f64 = sol.coefficients.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(sol.coefficients.iter().all(|&x| x >= 0.0));
        }
    }
}
