//! Minimal dense linear algebra: just enough for the active-set QP.
//!
//! Gaussian elimination with partial pivoting on small systems (the
//! KKT systems of §5.3 are at most 5×5). No clever blocking — the
//! sizes don't warrant it and simplicity wins.

use crate::error::OptError;

/// Solves `A·x = b` in place via Gaussian elimination with partial
/// pivoting. `a` is row-major `n × n`.
///
/// # Errors
/// * [`OptError::DimensionMismatch`] if shapes disagree,
/// * [`OptError::Singular`] if a pivot underflows `1e-12` times the
///   largest initial entry (the matrix is rank-deficient),
/// * [`OptError::NonFinite`] on NaN/∞ inputs.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, OptError> {
    if a.len() != n * n || b.len() != n {
        return Err(OptError::DimensionMismatch {
            expected: n * n,
            actual: a.len(),
        });
    }
    if a.iter().chain(b.iter()).any(|v| !v.is_finite()) {
        return Err(OptError::NonFinite);
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    let scale = m.iter().fold(0.0f64, |acc, v| acc.max(v.abs())).max(1e-300);
    let tol = 1e-12 * scale;

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                m[r1 * n + col]
                    .abs()
                    .partial_cmp(&m[r2 * n + col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot_row * n + col].abs() < tol {
            return Err(OptError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Ok(x)
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sqr(a: &[f64]) -> f64 {
    dot(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = solve(&a, &[3.0, -2.0], 2).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solves_general_3x3() {
        // A·x = b with known x = (1, -2, 3).
        let a = vec![2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let x_true = [1.0, -2.0, 3.0];
        let b: Vec<f64> = (0..3)
            .map(|r| dot(&a[r * 3..(r + 1) * 3], &x_true))
            .collect();
        let x = solve(&a, &b, 3).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // First pivot position is zero; requires a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve(&a, &[5.0, 7.0], 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert_eq!(solve(&a, &[1.0, 2.0], 2), Err(OptError::Singular));
    }

    #[test]
    fn shape_and_finite_validation() {
        assert!(matches!(
            solve(&[1.0, 2.0], &[1.0], 2),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert_eq!(solve(&[f64::NAN], &[1.0], 1), Err(OptError::NonFinite));
    }

    #[test]
    fn zero_size_ok() {
        assert_eq!(solve(&[], &[], 0).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm_sqr(&[3.0, 4.0]), 25.0);
    }
}
