//! Error types for the optimisation substrate.

/// Errors produced by the optimisation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// No vertices / empty problem supplied.
    EmptyInput,
    /// Inconsistent dimensions between vertices or vertex/target.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Offending dimension.
        actual: usize,
    },
    /// An input contained NaN/∞.
    NonFinite,
    /// The linear system was singular beyond rescue (should not occur
    /// for well-posed inputs; surfaced instead of panicking).
    Singular,
    /// Solver failed to converge within the iteration budget.
    DidNotConverge {
        /// Iterations executed.
        iterations: usize,
        /// Residual gradient norm at stop.
        residual: f64,
    },
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::EmptyInput => write!(f, "empty input"),
            OptError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            OptError::NonFinite => write!(f, "input contains a non-finite value"),
            OptError::Singular => write!(f, "linear system is singular"),
            OptError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert!(OptError::Singular.to_string().contains("singular"));
        assert!(OptError::DimensionMismatch {
            expected: 3,
            actual: 4
        }
        .to_string()
        .contains("3"));
    }
}
