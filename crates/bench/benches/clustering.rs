//! Clustering ablations (DESIGN.md §5): naive O(n³) vs NN-chain O(n²)
//! engines, linkage criteria, and distance-matrix thread scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use towerlens_cluster::agglomerative::{agglomerative, Engine, Linkage};
use towerlens_cluster::distance::DistanceMatrix;

/// Deterministic pseudo-random points: `n` towers in a 16-dim shape
/// space (clustering cost depends on n² once the matrix is built, so
/// a reduced dimensionality keeps the matrix-build share realistic
/// without dominating).
fn points(n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| {
                    let x = (i * 2_654_435_761 + d * 40_503) % 10_000;
                    (x as f64 / 10_000.0) * 10.0 + ((i % 5) * 40) as f64
                })
                .collect()
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative_engine");
    group.sample_size(10);
    for &n in &[100usize, 300] {
        let pts = points(n, 16);
        for (name, engine) in [("naive", Engine::Naive), ("nn_chain", Engine::NnChain)] {
            group.bench_with_input(BenchmarkId::new(name, n), &pts, |b, pts| {
                b.iter(|| {
                    let dist = DistanceMatrix::build(pts, 1).expect("matrix");
                    black_box(agglomerative(dist, Linkage::Average, engine).expect("tree"))
                });
            });
        }
    }
    group.finish();
}

fn bench_linkages(c: &mut Criterion) {
    let mut group = c.benchmark_group("linkage");
    group.sample_size(10);
    let pts = points(200, 16);
    for (name, linkage) in [
        ("single", Linkage::Single),
        ("complete", Linkage::Complete),
        ("average", Linkage::Average),
        ("ward", Linkage::Ward),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let dist = DistanceMatrix::build(&pts, 1).expect("matrix");
                black_box(agglomerative(dist, linkage, Engine::NnChain).expect("tree"))
            });
        });
    }
    group.finish();
}

fn bench_distance_matrix_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_matrix_threads");
    group.sample_size(10);
    // High-dimensional, as in the real pipeline (z-scored vectors).
    let pts = points(400, 1_008);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &pts, |b, pts| {
            b.iter(|| black_box(DistanceMatrix::build(pts, threads).expect("matrix")));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_linkages,
    bench_distance_matrix_threads
);
criterion_main!(benches);
