//! FFT ablation (DESIGN.md §5): mixed-radix FFT vs direct O(N²) DFT
//! at the paper's vector length, and the value of plan reuse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use towerlens_dsp::dft::dft_direct_real;
use towerlens_dsp::fft::{fft_real, FftPlan};

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = std::f64::consts::TAU * i as f64 / n as f64;
            3.0 + (4.0 * t).cos() + 0.5 * (28.0 * t).cos() + 0.25 * (56.0 * t).sin()
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    // N = 4032 is the paper's length; 1008 is the one-week variant.
    for &n in &[1_008usize, 4_032] {
        let x = signal(n);
        group.bench_with_input(BenchmarkId::new("mixed_radix_oneshot", n), &x, |b, x| {
            b.iter(|| black_box(fft_real(black_box(x))));
        });
        let plan = FftPlan::new(n);
        group.bench_with_input(BenchmarkId::new("mixed_radix_planned", n), &x, |b, x| {
            b.iter(|| black_box(plan.forward_real(black_box(x))));
        });
    }
    // Direct DFT only at the short length (4032² is ~30 ms+, fine, but
    // keep the suite fast).
    let x = signal(1_008);
    group.sample_size(20);
    group.bench_function("direct_dft/1008", |b| {
        b.iter(|| black_box(dft_direct_real(black_box(&x))));
    });
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
