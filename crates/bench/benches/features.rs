//! Feature-space ablation (DESIGN.md §5): clustering cost in the raw
//! 1008/4032-dimensional traffic space vs the 3-dimensional spectral
//! feature space — the efficiency argument for the paper's
//! frequency-domain representation. Also prices the feature
//! extraction itself (FFT per tower).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use towerlens_city::config::CityConfig;
use towerlens_city::generate::generate;
use towerlens_cluster::agglomerative::{agglomerative_points, Engine, Linkage};
use towerlens_core::freq::{features_of, features_of_goertzel};
use towerlens_mobility::config::SynthConfig;
use towerlens_mobility::synth::synthesize_city;
use towerlens_pipeline::normalize::normalize_matrix;
use towerlens_trace::time::TraceWindow;

struct Setup {
    vectors: Vec<Vec<f64>>,
    features3: Vec<Vec<f64>>,
}

fn setup() -> Setup {
    let city = generate(&CityConfig::tiny(9)).expect("city");
    let window = TraceWindow::days(7);
    let raw = synthesize_city(&city, &window, &SynthConfig::default());
    let normalized = normalize_matrix(&raw).expect("normalize");
    let features = features_of(&normalized.vectors, &window).expect("features");
    Setup {
        features3: features.iter().map(|f| f.f3().to_vec()).collect(),
        vectors: normalized.vectors,
    }
}

fn bench_feature_spaces(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("cluster_feature_space");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("raw_time_domain", s.vectors[0].len()),
        &s.vectors,
        |b, v| {
            b.iter(|| {
                black_box(
                    agglomerative_points(v, Linkage::Average, Engine::NnChain, 1).expect("tree"),
                )
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("spectral_f3", 3usize),
        &s.features3,
        |b, v| {
            b.iter(|| {
                black_box(
                    agglomerative_points(v, Linkage::Average, Engine::NnChain, 1).expect("tree"),
                )
            });
        },
    );
    group.finish();

    let window = TraceWindow::days(7);
    c.bench_function("feature_extraction_fft/120_towers", |b| {
        b.iter(|| black_box(features_of(black_box(&s.vectors), &window).expect("features")));
    });
    c.bench_function("feature_extraction_goertzel/120_towers", |b| {
        b.iter(|| {
            black_box(features_of_goertzel(black_box(&s.vectors), &window).expect("features"))
        });
    });
}

criterion_group!(benches, bench_feature_spaces);
criterion_main!(benches);
