//! QP-solver ablation (DESIGN.md §5): exact active-set enumeration vs
//! projected gradient for the §5.3 convex decomposition, plus the raw
//! simplex projection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use towerlens_opt::simplex::{project_to_simplex, simplex_least_squares, SimplexLsOptions, Solver};

fn vertices() -> Vec<Vec<f64>> {
    // A realistic polygon in the (A_day, P_day, A_half) space.
    vec![
        vec![0.55, 0.90, 0.33],
        vec![0.33, 2.62, 0.35],
        vec![0.62, 2.93, 0.22],
        vec![0.61, 2.02, 0.14],
    ]
}

fn targets() -> Vec<[f64; 3]> {
    (0..64u64)
        .map(|s| {
            [
                0.3 + ((s * 48_271) % 1_000) as f64 / 2_500.0,
                0.8 + ((s * 16_807) % 1_000) as f64 / 400.0,
                0.1 + ((s * 9_176) % 1_000) as f64 / 3_000.0,
            ]
        })
        .collect()
}

fn bench_solvers(c: &mut Criterion) {
    let verts = vertices();
    let tgts = targets();
    let mut group = c.benchmark_group("simplex_ls");
    for (name, solver) in [
        ("active_set", Solver::ActiveSet),
        ("projected_gradient", Solver::ProjectedGradient),
    ] {
        let options = SimplexLsOptions {
            solver,
            // PG convergence is asymptotic and can crawl along a
            // constraint face; give it the budget the accuracy tests
            // use so the benchmark measures realistic cost.
            tolerance: 1e-8,
            max_iters: 300_000,
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                for t in &tgts {
                    black_box(
                        simplex_least_squares(black_box(&verts), black_box(t), options)
                            .expect("solution"),
                    );
                }
            });
        });
    }
    group.finish();

    c.bench_function("simplex_projection/dim16", |b| {
        let v: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        b.iter(|| black_box(project_to_simplex(black_box(&v)).expect("projection")));
    });
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
