//! Vectorizer thread-scaling ablation (DESIGN.md §5): the parallel
//! log-to-vector aggregation at 1–8 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use towerlens_pipeline::vectorizer::Vectorizer;
use towerlens_trace::record::LogRecord;
use towerlens_trace::time::TraceWindow;

fn synth_records(n: usize, n_towers: u32, window: &TraceWindow) -> Vec<LogRecord> {
    let span = window.end_s() - window.start_s;
    (0..n as u64)
        .map(|i| {
            let start = window.start_s + (i * 48_271) % span;
            LogRecord {
                user_id: i % 10_000,
                start_s: start,
                end_s: start + (i * 131) % 3_600,
                cell_id: (i % n_towers as u64) as u32,
                address: String::new(),
                bytes: 1 + (i * 2_654_435_761) % 1_000_000,
            }
        })
        .collect()
}

fn bench_vectorizer(c: &mut Criterion) {
    let window = TraceWindow::days(7);
    let n_towers = 400u32;
    let records = synth_records(200_000, n_towers, &window);
    let mut group = c.benchmark_group("vectorizer_threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        let v = Vectorizer::new(window, threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &records, |b, recs| {
            b.iter(|| black_box(v.aggregate(recs, n_towers as usize).expect("aggregate")));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("vectorizer_full_run");
    group.sample_size(10);
    let v = Vectorizer::new(window, 0);
    group.bench_function("aggregate_plus_normalize", |b| {
        b.iter(|| black_box(v.run(&records, n_towers as usize).expect("run")));
    });
    group.finish();
}

criterion_group!(benches, bench_vectorizer);
criterion_main!(benches);
