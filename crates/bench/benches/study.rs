//! End-to-end pipeline cost: the whole study (city → traffic →
//! vectorize → cluster → label → frequency analysis → decomposition)
//! at test scale, plus its dominant stages in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use towerlens_city::config::CityConfig;
use towerlens_city::generate::generate;
use towerlens_core::{Study, StudyConfig};
use towerlens_mobility::config::SynthConfig;
use towerlens_mobility::synth::synthesize_city;
use towerlens_trace::time::TraceWindow;

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("study_tiny", |b| {
        b.iter(|| black_box(Study::new(StudyConfig::tiny(3)).run().expect("study")));
    });
    group.finish();

    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("city_generation_tiny", |b| {
        b.iter(|| black_box(generate(&CityConfig::tiny(3)).expect("city")));
    });
    let city = generate(&CityConfig::tiny(3)).expect("city");
    let window = TraceWindow::days(7);
    group.bench_function("traffic_synthesis_tiny_week", |b| {
        b.iter(|| black_box(synthesize_city(&city, &window, &SynthConfig::default())));
    });
    group.finish();
}

criterion_group!(benches, bench_study);
criterion_main!(benches);
