//! Design-choice ablations (DESIGN.md §5): each function re-runs a
//! pipeline stage with an alternative choice and reports what changes.
//! Registered as extra `repro` subcommands (`ablate-...`).

use std::time::Instant;

use towerlens_city::zone::RegionKind;
use towerlens_cluster::agglomerative::{agglomerative_points, Engine, Linkage};
use towerlens_cluster::compare::{adjusted_rand_index, purity};
use towerlens_cluster::dendrogram::{Clustering, Dendrogram};
use towerlens_cluster::validity::{calinski_harabasz, davies_bouldin, silhouette};
use towerlens_core::freq::features_of;
use towerlens_core::{CoreError, StudyReport};
use towerlens_mobility::config::SynthConfig;
use towerlens_mobility::synth::synthesize_city;
use towerlens_pipeline::normalize::normalize_matrix;

use crate::table::{num, TextTable};

/// All ablation ids.
pub const ALL_ABLATIONS: [&str; 4] = [
    "ablate-linkage",
    "ablate-tuner",
    "ablate-noise",
    "ablate-features",
];

/// Dispatches one ablation by id.
///
/// # Errors
/// Unknown ids yield [`CoreError::UnknownExperiment`]; analysis
/// failures propagate.
pub fn run(id: &str, report: &StudyReport) -> Result<String, CoreError> {
    match id {
        "ablate-linkage" => linkage(report),
        "ablate-tuner" => tuner(report),
        "ablate-noise" => noise(report),
        "ablate-features" => feature_space(report),
        _ => Err(CoreError::UnknownExperiment { id: id.to_string() }),
    }
}

/// Ground-truth clustering over the kept towers (compacted labels).
fn truth_clustering(report: &StudyReport) -> Result<Clustering, CoreError> {
    let labels: Vec<usize> = report
        .kept_ids
        .iter()
        .map(|&id| report.city.towers()[id].kind_truth.index())
        .collect();
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    let compact: Vec<usize> = labels
        .into_iter()
        .map(|l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect();
    Clustering::from_labels(compact).map_err(CoreError::from)
}

/// How well a dendrogram's DBI-style sweep recovers structure under a
/// given cut count.
fn score_cut(
    dendrogram: &Dendrogram,
    vectors: &[Vec<f64>],
    truth: &Clustering,
    k: usize,
) -> Result<(f64, f64), CoreError> {
    let cut = dendrogram.cut_k(k)?;
    let ari = adjusted_rand_index(&cut, truth)?;
    let pur = purity(&cut, truth)?;
    let _ = vectors;
    Ok((ari, pur))
}

/// Ablation: linkage criterion. Does the five-pattern structure
/// survive single/complete/Ward linkage, or is average linkage (the
/// paper's choice) load-bearing?
pub fn linkage(report: &StudyReport) -> Result<String, CoreError> {
    let truth = truth_clustering(report)?;
    let mut out = String::from(
        "## Ablation — linkage criterion\n\
         The paper uses average linkage. Re-clustering the same vectors with the\n\
         alternatives (k fixed to 5 for comparability, plus each linkage's own\n\
         DBI-chosen k):\n\n",
    );
    let mut t = TextTable::new(vec![
        "linkage",
        "ARI@5 vs truth",
        "purity@5",
        "DBI-chosen k",
        "time (s)",
    ]);
    for (name, linkage) in [
        ("average", Linkage::Average),
        ("single", Linkage::Single),
        ("complete", Linkage::Complete),
        ("ward", Linkage::Ward),
    ] {
        let start = Instant::now();
        let dendro = agglomerative_points(&report.vectors, linkage, Engine::NnChain, 0)?;
        let elapsed = start.elapsed().as_secs_f64();
        let (ari, pur) = score_cut(&dendro, &report.vectors, &truth, 5)?;
        let sweep = towerlens_cluster::validity::dbi_sweep(&report.vectors, &dendro, 2, 12)?;
        let chosen = towerlens_cluster::validity::best_by_dbi(&sweep)
            .map(|p| p.k)
            .unwrap_or(0);
        t.row(vec![
            name.to_string(),
            num(ari),
            num(pur),
            chosen.to_string(),
            num(elapsed),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Ablation: the metric tuner's objective. DBI (the paper's choice)
/// vs Calinski–Harabasz vs silhouette: which k does each pick on the
/// same dendrogram, and how good is that cut?
pub fn tuner(report: &StudyReport) -> Result<String, CoreError> {
    let truth = truth_clustering(report)?;
    let dendro = &report.patterns.dendrogram;
    let mut out = String::from(
        "## Ablation — metric-tuner objective\n\
         Same dendrogram, three stop rules:\n\n",
    );
    // Evaluate all three indices across cuts.
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for k in 2..=10.min(report.vectors.len() - 1) {
        let cut = dendro.cut_k(k)?;
        let dbi = davies_bouldin(&report.vectors, &cut)?;
        let ch = calinski_harabasz(&report.vectors, &cut)?;
        // Silhouette is O(n²·d); subsample for speed.
        let (sil_pts, sil_cut) = subsample(&report.vectors, &cut, 400);
        let sil = silhouette(&sil_pts, &sil_cut).unwrap_or(f64::NAN);
        rows.push((k, dbi, ch, sil));
    }
    let mut t = TextTable::new(vec!["k", "DBI (min)", "CH (max)", "silhouette (max)"]);
    for (k, dbi, ch, sil) in &rows {
        t.row(vec![k.to_string(), num(*dbi), num(*ch), num(*sil)]);
    }
    out.push_str(&t.render());

    let best_dbi = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|r| r.0)
        .unwrap_or(0);
    let best_ch = rows
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        .map(|r| r.0)
        .unwrap_or(0);
    let best_sil = rows
        .iter()
        .max_by(|a, b| a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal))
        .map(|r| r.0)
        .unwrap_or(0);
    out.push('\n');
    for (name, k) in [("DBI", best_dbi), ("CH", best_ch), ("silhouette", best_sil)] {
        let (ari, pur) = score_cut(dendro, &report.vectors, &truth, k)?;
        out.push_str(&format!(
            "{name} picks k = {k}: ARI vs truth {}, purity {}\n",
            num(ari),
            num(pur)
        ));
    }
    Ok(out)
}

/// Subsamples points + labels for the O(n²) silhouette.
fn subsample(
    points: &[Vec<f64>],
    clustering: &Clustering,
    cap: usize,
) -> (Vec<Vec<f64>>, Clustering) {
    if points.len() <= cap {
        return (points.to_vec(), clustering.clone());
    }
    let step = points.len().div_ceil(cap);
    let idx: Vec<usize> = (0..points.len()).step_by(step).collect();
    let pts: Vec<Vec<f64>> = idx.iter().map(|&i| points[i].clone()).collect();
    let labels: Vec<usize> = idx.iter().map(|&i| clustering.labels[i]).collect();
    // Compact.
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    let compact: Vec<usize> = labels
        .into_iter()
        .map(|l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect();
    (
        pts,
        Clustering::from_labels(compact).expect("compact labels"),
    )
}

/// Ablation: synthesis noise level. How much per-bin noise can the
/// pipeline absorb before the five-pattern structure degrades?
pub fn noise(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = String::from(
        "## Ablation — traffic noise level\n\
         Re-synthesising the same city at increasing per-bin log-normal noise and\n\
         re-running the identifier:\n\n",
    );
    let mut t = TextTable::new(vec!["bin noise σ", "chosen k", "ARI vs truth", "purity"]);
    for &sigma in &[0.03f64, 0.06, 0.12, 0.25, 0.5] {
        let synth = SynthConfig {
            bin_noise_sigma: sigma,
            day_noise_sigma: sigma / 3.0,
            ..SynthConfig::default()
        };
        let raw = synthesize_city(&report.city, &report.window, &synth);
        let normalized = normalize_matrix(&raw)?;
        let identifier = towerlens_core::PatternIdentifier::default();
        let found = identifier.identify(&normalized.vectors)?;
        // Truth over this run's kept ids.
        let labels: Vec<usize> = normalized
            .kept_ids
            .iter()
            .map(|&id| report.city.towers()[id].kind_truth.index())
            .collect();
        let mut map = std::collections::HashMap::new();
        let mut next = 0usize;
        let compact: Vec<usize> = labels
            .into_iter()
            .map(|l| {
                *map.entry(l).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            })
            .collect();
        let truth = Clustering::from_labels(compact)?;
        let ari = adjusted_rand_index(&found.clustering, &truth)?;
        let pur = purity(&found.clustering, &truth)?;
        t.row(vec![num(sigma), found.k.to_string(), num(ari), num(pur)]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Ablation: feature space. Cluster in the 3-dimensional spectral
/// space instead of the raw 4,032-dimensional one — the efficiency
/// argument behind §5's representation.
pub fn feature_space(report: &StudyReport) -> Result<String, CoreError> {
    let truth = truth_clustering(report)?;
    let mut out = String::from(
        "## Ablation — clustering feature space\n\
         Raw z-scored vectors (the paper's §3 pipeline) vs the 3 spectral features\n\
         (A_day, P_day, A_half) of §5:\n\n",
    );
    let features = features_of(&report.vectors, &report.window)?;
    let f3: Vec<Vec<f64>> = features.iter().map(|f| f.f3().to_vec()).collect();

    let mut t = TextTable::new(vec![
        "space",
        "dims",
        "cluster time (s)",
        "ARI@5 vs truth",
        "purity@5",
    ]);
    for (name, pts) in [("raw time-domain", &report.vectors), ("spectral f3", &f3)] {
        let start = Instant::now();
        let dendro = agglomerative_points(pts, Linkage::Average, Engine::NnChain, 0)?;
        let elapsed = start.elapsed().as_secs_f64();
        let cut = dendro.cut_k(5.min(pts.len()))?;
        let ari = adjusted_rand_index(&cut, &truth)?;
        let pur = purity(&cut, &truth)?;
        t.row(vec![
            name.to_string(),
            pts[0].len().to_string(),
            num(elapsed),
            num(ari),
            num(pur),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n(the spectral space carries most of the discriminative structure at a\n\
         thousandth of the dimensionality — §5's 'most discriminating and essential\n\
         features' claim, quantified)\n",
    );
    // Cross-agreement between the two partitions.
    let raw_cut = agglomerative_points(&report.vectors, Linkage::Average, Engine::NnChain, 0)?
        .cut_k(5.min(report.vectors.len()))?;
    let f3_cut =
        agglomerative_points(&f3, Linkage::Average, Engine::NnChain, 0)?.cut_k(5.min(f3.len()))?;
    out.push_str(&format!(
        "cross-agreement ARI(raw, f3) = {}\n",
        num(adjusted_rand_index(&raw_cut, &f3_cut)?)
    ));
    Ok(out)
}

/// Pure-kind shares in a report's ground truth (used by tests).
pub fn truth_shares(report: &StudyReport) -> [f64; 5] {
    let mut counts = [0usize; 5];
    for &id in &report.kept_ids {
        counts[report.city.towers()[id].kind_truth.index()] += 1;
    }
    let total: usize = counts.iter().sum();
    let mut shares = [0.0; 5];
    for (s, &c) in shares.iter_mut().zip(&counts) {
        *s = c as f64 / total.max(1) as f64;
    }
    let _ = RegionKind::ALL;
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_study, Scale};
    use std::sync::OnceLock;

    fn report() -> &'static StudyReport {
        static REPORT: OnceLock<StudyReport> = OnceLock::new();
        REPORT.get_or_init(|| run_study(Scale::Tiny, 11).expect("tiny study"))
    }

    #[test]
    fn all_ablations_render() {
        for id in ALL_ABLATIONS {
            let text = run(id, report()).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(text.contains("Ablation"), "{id}");
            assert!(text.len() > 100, "{id} too short");
        }
    }

    #[test]
    fn unknown_ablation_errors() {
        assert!(run("ablate-everything", report()).is_err());
    }

    #[test]
    fn truth_shares_sum_to_one() {
        let shares = truth_shares(report());
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subsample_respects_cap() {
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let c = Clustering::from_labels((0..100).map(|i| i % 3).collect()).unwrap();
        let (sub_pts, sub_c) = subsample(&pts, &c, 30);
        assert!(sub_pts.len() <= 50);
        assert_eq!(sub_pts.len(), sub_c.labels.len());
    }
}
