//! The reproducible pipeline benchmark behind the `bench` binary.
//!
//! Runs the full staged study pipeline over parameterized synthetic
//! workloads — N towers × 4032 bins (the paper's 28-day window) at
//! several sizes, K repeats each — and reports per-stage wall-time
//! median/p95, end-to-end throughput, and the hot-path counter
//! snapshot from the metrics registry, stamped with the git revision.
//! The emitted `BENCH_pipeline.json` is the perf baseline later PRs
//! measure against; [`validate_bench_json`] is the schema gate
//! `scripts/check.sh` runs so a broken emitter fails CI.

use std::collections::BTreeMap;
use std::time::Duration;

use towerlens_cluster::{agglomerative_points_indexed, Engine, Linkage};
use towerlens_core::{CoreError, RunReport, Study, StudyConfig};
use towerlens_trace::time::TraceWindow;

use crate::json::{self, Json};

/// Workload parameters for one bench invocation.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Tower counts to run (each over the full 4032-bin paper window).
    pub sizes: Vec<usize>,
    /// Repeats per size (medians/percentiles are taken across these).
    pub repeats: usize,
    /// Seed shared by every workload, so reruns are comparable.
    pub seed: u64,
    /// Worker threads for the parallel stages (0 = all cores). Any
    /// value produces bit-identical study output; only wall time moves.
    pub threads: usize,
}

impl Default for BenchParams {
    /// Three sizes × three repeats: small enough to run on a laptop,
    /// big enough that stage medians are not all sub-millisecond.
    fn default() -> Self {
        BenchParams {
            sizes: vec![60, 120, 240],
            repeats: 3,
            seed: 42,
            threads: 0,
        }
    }
}

/// Median/p95 wall time of one stage across the repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name.
    pub name: String,
    /// Median wall time in milliseconds.
    pub median_ms: f64,
    /// 95th-percentile (nearest-rank) wall time in milliseconds.
    pub p95_ms: f64,
}

/// One size's results.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Tower count.
    pub towers: usize,
    /// Bins per tower (always the paper's 4032).
    pub bins: usize,
    /// Median end-to-end wall time in milliseconds.
    pub total_median_ms: f64,
    /// p95 end-to-end wall time in milliseconds.
    pub total_p95_ms: f64,
    /// Throughput at the median: matrix cells (towers × bins) per
    /// second of end-to-end wall time.
    pub throughput_cells_per_s: f64,
    /// Per-stage timings, in stage registration order.
    pub stages: Vec<StageTiming>,
    /// Hot-path counter totals for a single run at this size
    /// (deterministic for a fixed seed).
    pub counters: BTreeMap<String, u64>,
}

/// Parameters for the query-throughput workload (`bench --query`):
/// a study at `towers` towers builds the versioned artifact, then a
/// deterministic stream of `requests` mixed lookups runs through the
/// memory-resident [`towerlens_artifact::QueryIndex`].
#[derive(Debug, Clone)]
pub struct QueryBenchParams {
    /// Tower count of the snapshot-building study.
    pub towers: usize,
    /// Number of query requests in the batch.
    pub requests: usize,
    /// Seed of the snapshot-building study.
    pub seed: u64,
    /// Worker threads for the query batch (0 = all cores).
    pub threads: usize,
    /// Admission budget (in virtual cost units) of the overload
    /// variant: the same index is re-run under a pattern/topk stream
    /// where every topk scan out-costs this budget, so the batch sheds
    /// a fixed 20% of its requests. Must be below the tower count and
    /// at least 1.
    pub request_budget: u64,
}

impl Default for QueryBenchParams {
    /// The paper-scale snapshot (9,600 towers — the full deployment
    /// of the source paper) under a 40,000-request mixed batch —
    /// scaled 4× over the pre-index workload now that each topk
    /// request is a pruned descent instead of a full scan, so the
    /// batch exercises 10,000 topk requests. The overload variant
    /// admits 100 cost units per request, far below the 9,600-unit
    /// topk scan.
    fn default() -> Self {
        QueryBenchParams {
            towers: 9_600,
            requests: 40_000,
            seed: 42,
            threads: 0,
            request_budget: 100,
        }
    }
}

/// The query-throughput workload's results.
#[derive(Debug, Clone)]
pub struct QueryBenchResult {
    /// Towers held by the memory-resident snapshot.
    pub towers: usize,
    /// Requests answered.
    pub requests: usize,
    /// Worker threads the batch ran with (0 = all cores).
    pub threads: usize,
    /// End-to-end wall time of the batch in milliseconds (excludes
    /// building and loading the snapshot).
    pub total_ms: f64,
    /// Requests answered per second of batch wall time.
    pub throughput_qps: f64,
    /// Heap-allocation calls during the timed batch (the delta of
    /// [`crate::alloc::calls`] around it). `0` when the counting
    /// allocator is not installed — i.e. anywhere but the `bench`
    /// binary — which reads as "not measured".
    pub allocations: u64,
    /// The `query.*` counter totals for the batch.
    pub counters: BTreeMap<String, u64>,
}

/// Parameters for the spatial-index clustering workload
/// (`bench --cluster-100k`): `points` synthetic 6-dimensional
/// spectral-style feature vectors (a deterministic 8-blob mixture)
/// are clustered end-to-end — average linkage, nn-chain engine — over
/// the exact-pruning spatial index.
#[derive(Debug, Clone)]
pub struct ClusterBenchParams {
    /// Feature vectors to cluster.
    pub points: usize,
    /// Seed of the synthetic mixture.
    pub seed: u64,
}

impl Default for ClusterBenchParams {
    /// 100,000 points — an order of magnitude past the paper's 9,600
    /// towers, demonstrating the index holds at city-region scale.
    fn default() -> Self {
        ClusterBenchParams {
            points: 100_000,
            seed: 42,
        }
    }
}

/// The spatial-index clustering workload's results. The evaluation
/// and traversal counts are deterministic for a fixed seed, so they
/// double as regression gates (see [`compare_bench_json`]); only
/// `wall_ms` is machine-dependent.
#[derive(Debug, Clone)]
pub struct ClusterIndexResult {
    /// Points clustered.
    pub points: usize,
    /// Feature dimensionality (6: amplitude and phase of the top
    /// three harmonics, as in the paper's spectral space).
    pub dims: usize,
    /// End-to-end wall time of the dendrogram build in milliseconds.
    pub wall_ms: f64,
    /// Merges performed (`points - 1` for a complete dendrogram).
    pub merges: u64,
    /// Distance-kernel evaluations (`cluster.index.leaf_evaluations`).
    pub leaf_evaluations: u64,
    /// k-d tree nodes visited across all neighbour searches
    /// (`cluster.index.nodes_visited`).
    pub nodes_visited: u64,
    /// Subtrees skipped by the box lower bound
    /// (`cluster.index.pruned_subtrees`).
    pub pruned_subtrees: u64,
}

/// The overload variant's results: the same memory-resident index
/// under an admission budget that sheds every topk scan — 20% of the
/// stream — while the cheap lookups keep answering at full speed.
#[derive(Debug, Clone)]
pub struct QueryOverloadResult {
    /// Towers held by the memory-resident snapshot.
    pub towers: usize,
    /// Requests in the batch (admitted + shed).
    pub requests: usize,
    /// Worker threads the batch ran with (0 = all cores).
    pub threads: usize,
    /// The admission budget in virtual cost units.
    pub request_budget: u64,
    /// Requests shed by admission control (`overloaded` lines).
    pub shed: u64,
    /// End-to-end wall time of the batch in milliseconds.
    pub total_ms: f64,
    /// Requests (including shed ones — they still get a typed answer
    /// line) per second of batch wall time.
    pub throughput_qps: f64,
    /// The `query.*` counter totals for the batch.
    pub counters: BTreeMap<String, u64>,
}

/// A full bench run, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Git revision the binary was built from (`unknown` outside a
    /// repository).
    pub git_rev: String,
    /// Seed used for every workload.
    pub seed: u64,
    /// Repeats per workload.
    pub repeats: usize,
    /// Worker threads the run was requested with (0 = all cores).
    pub threads: usize,
    /// Per-size results, in the order requested.
    pub workloads: Vec<WorkloadResult>,
    /// The query-throughput workload, when `--query` ran.
    pub query: Option<QueryBenchResult>,
    /// The overload variant of the query workload (same `--query`
    /// run): a budget-limited batch shedding 20% of its requests.
    pub query_overload: Option<QueryOverloadResult>,
    /// The spatial-index clustering workload, when `--cluster-100k`
    /// ran.
    pub cluster_index: Option<ClusterIndexResult>,
}

/// Schema tag embedded in (and required from) the JSON. v2 added the
/// document-level `threads` field recording the `--threads` setting
/// the report was produced under; v3 added the optional `query`
/// object recording the artifact-store query-throughput workload; v4
/// added the optional `query_overload` object recording the same
/// index under an admission budget that sheds the expensive fifth of
/// the stream; v5 added the optional `cluster_index` object (the
/// `--cluster-100k` spatial-index clustering workload) and the
/// `allocations` field of the query section (heap-allocation calls
/// during the timed batch, `0` when the counting allocator is not
/// installed).
pub const BENCH_SCHEMA: &str = "towerlens-bench-pipeline-v5";

/// The study configuration for a bench workload: `towers` towers over
/// the paper's 4032-bin window, geometry scaled down so small tower
/// counts still form plausible zones.
pub fn workload_config(towers: usize, seed: u64) -> StudyConfig {
    let mut config = StudyConfig::tiny(seed);
    config.city.n_towers = towers;
    config.window = TraceWindow::paper();
    config
}

fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn percentiles(mut walls: Vec<f64>) -> (f64, f64) {
    walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    (nearest_rank(&walls, 0.5), nearest_rank(&walls, 0.95))
}

fn ms(wall: Duration) -> f64 {
    wall.as_secs_f64() * 1e3
}

fn summarize(towers: usize, bins: usize, runs: &[RunReport]) -> WorkloadResult {
    let totals: Vec<f64> = runs.iter().map(|r| ms(r.total)).collect();
    let (total_median_ms, total_p95_ms) = percentiles(totals);
    let stages = runs[0]
        .stages
        .iter()
        .map(|s| {
            let walls: Vec<f64> = runs
                .iter()
                .map(|r| ms(r.stage(s.name).expect("stage in every repeat").wall))
                .collect();
            let (median_ms, p95_ms) = percentiles(walls);
            StageTiming {
                name: s.name.to_string(),
                median_ms,
                p95_ms,
            }
        })
        .collect();
    WorkloadResult {
        towers,
        bins,
        total_median_ms,
        total_p95_ms,
        throughput_cells_per_s: (towers * bins) as f64 / (total_median_ms / 1e3),
        stages,
        counters: BTreeMap::new(),
    }
}

/// Runs every workload and collects the report.
///
/// The process-wide metrics registry is reset before each repeat, so
/// the captured counter snapshot describes exactly one run at each
/// size.
///
/// # Errors
/// The first failing study run's [`CoreError`].
pub fn run_bench(params: &BenchParams) -> Result<BenchReport, CoreError> {
    let mut workloads = Vec::new();
    for &towers in &params.sizes {
        let mut runs = Vec::with_capacity(params.repeats);
        for _ in 0..params.repeats.max(1) {
            towerlens_obs::global().reset();
            let config = workload_config(towers, params.seed).with_threads(params.threads);
            let (_, report) = Study::new(config).run_instrumented(None)?;
            runs.push(report);
        }
        let bins = TraceWindow::paper().n_bins;
        let mut result = summarize(towers, bins, &runs);
        result.counters = towerlens_obs::global().snapshot().counters;
        workloads.push(result);
    }
    Ok(BenchReport {
        git_rev: git_rev(),
        seed: params.seed,
        repeats: params.repeats.max(1),
        threads: params.threads,
        workloads,
        query: None,
        query_overload: None,
        cluster_index: None,
    })
}

/// Runs the query-throughput workload: a spectral study at
/// `params.towers` towers over the paper window builds the versioned
/// artifact, a [`towerlens_artifact::QueryIndex`] holds it
/// memory-resident, and a deterministic stream of mixed
/// pattern/decompose/topk requests is answered through the batch
/// path. Only the batch is timed — the studied claim is lookup
/// throughput, not study wall time. The request stream (and therefore
/// every answer byte) is identical at any thread count.
///
/// The same index is then re-run as the overload variant: an 80/20
/// pattern/topk stream under `params.request_budget`, chosen so every
/// topk scan (cost = tower count) is shed with a typed `overloaded`
/// line while every pattern lookup (cost 1) is admitted — exactly 20%
/// of the batch sheds, deterministically at any thread count.
///
/// # Errors
/// The snapshot-building study's [`CoreError`].
pub fn run_query_bench(
    params: &QueryBenchParams,
) -> Result<(QueryBenchResult, QueryOverloadResult), CoreError> {
    let mut config = workload_config(params.towers, params.seed).with_threads(params.threads);
    config.identifier.feature_space = towerlens_pipeline::FeatureSpace::Spectral;
    let study = Study::new(config);
    let fingerprint = study.checkpoint_fingerprint();
    let (report, _) = study.run_instrumented(None)?;
    let snapshot = report.to_snapshot(fingerprint, towerlens_pipeline::FeatureSpace::Spectral)?;
    let index = towerlens_artifact::QueryIndex::new(snapshot);

    // Deterministic mixed stream cycling over the kept towers: half
    // pattern lookups, a quarter decompositions (when the snapshot
    // froze a basis — otherwise more patterns), a quarter top-k
    // neighbour scans.
    let ids = index.snapshot().tower_ids.clone();
    let has_basis = index.snapshot().basis.is_some();
    let lines: Vec<String> = (0..params.requests)
        .map(|i| {
            let id = ids[i % ids.len()];
            match i % 8 {
                4 | 5 if has_basis => format!("decompose {id}"),
                6 | 7 => format!("topk {id} 8"),
                _ => format!("pattern {id}"),
            }
        })
        .collect();

    towerlens_obs::global().reset();
    let alloc_before = crate::alloc::calls();
    let started = std::time::Instant::now();
    let (answers, _) = towerlens_artifact::run_batch(&index, &lines, params.threads);
    let total_ms = ms(started.elapsed());
    let allocations = crate::alloc::calls().saturating_sub(alloc_before);
    debug_assert_eq!(answers.len(), lines.len());
    let counters: BTreeMap<String, u64> = towerlens_obs::global()
        .snapshot()
        .counters
        .into_iter()
        .filter(|(name, _)| name.starts_with("query."))
        .collect();
    let plain = QueryBenchResult {
        towers: index.n_towers(),
        requests: params.requests,
        threads: params.threads,
        total_ms,
        throughput_qps: params.requests as f64 / (total_ms / 1e3),
        allocations,
        counters,
    };

    // Overload variant: every fifth request is a topk scan whose cost
    // (the tower count) exceeds the admission budget; the rest are
    // unit-cost pattern lookups. Shed answers are still answers —
    // typed `overloaded` lines in input order — so the batch length
    // is unchanged.
    let overload_lines: Vec<String> = (0..params.requests)
        .map(|i| {
            let id = ids[i % ids.len()];
            if i % 5 == 4 {
                format!("topk {id} 8")
            } else {
                format!("pattern {id}")
            }
        })
        .collect();
    let policy = towerlens_artifact::QueryPolicy {
        threads: params.threads,
        request_budget: Some(params.request_budget),
        ..Default::default()
    };
    towerlens_obs::global().reset();
    let started = std::time::Instant::now();
    let (answers, tally) = towerlens_artifact::run_batch_with(&index, &overload_lines, &policy);
    let total_ms = ms(started.elapsed());
    debug_assert_eq!(answers.len(), overload_lines.len());
    let counters: BTreeMap<String, u64> = towerlens_obs::global()
        .snapshot()
        .counters
        .into_iter()
        .filter(|(name, _)| name.starts_with("query."))
        .collect();
    let overload = QueryOverloadResult {
        towers: index.n_towers(),
        requests: params.requests,
        threads: params.threads,
        request_budget: params.request_budget,
        shed: tally.shed,
        total_ms,
        throughput_qps: params.requests as f64 / (total_ms / 1e3),
        counters,
    };
    Ok((plain, overload))
}

/// A deterministic 8-blob mixture of 6-dimensional points, shaped
/// like the spectral feature space (amplitude/phase of three
/// harmonics): well-separated centres with per-point jitter, so the
/// spatial index has real structure to prune against. Plain xorshift
/// keeps the workload identical across platforms and reruns.
fn mixture_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut unit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let blob = (i % 8) as f64;
            (0..6)
                .map(|d| blob * 3.0 + (d as f64) * 0.25 + unit() * 0.5)
                .collect()
        })
        .collect()
}

/// Runs the spatial-index clustering workload: a complete average-
/// linkage dendrogram over `params.points` synthetic 6-dim feature
/// vectors via the nn-chain engine and the exact-pruning spatial
/// index. The process-wide metrics registry is reset first, so the
/// reported counters describe exactly this build.
///
/// # Errors
/// The clustering error as a string (empty input cannot happen for
/// `points ≥ 1`; this surfaces only internal invariant violations).
pub fn run_cluster_bench(params: &ClusterBenchParams) -> Result<ClusterIndexResult, String> {
    let points = mixture_points(params.points, params.seed);
    towerlens_obs::global().reset();
    let started = std::time::Instant::now();
    let tree = agglomerative_points_indexed(&points, Linkage::Average, Engine::NnChain)
        .map_err(|e| format!("cluster bench failed: {e:?}"))?;
    let wall_ms = ms(started.elapsed());
    debug_assert_eq!(tree.merges().len(), params.points.saturating_sub(1));
    let counters = towerlens_obs::global().snapshot().counters;
    let read = |name: &str| counters.get(name).copied().unwrap_or(0);
    Ok(ClusterIndexResult {
        points: params.points,
        dims: 6,
        wall_ms,
        merges: read("cluster.agglomerative.merges"),
        leaf_evaluations: read("cluster.index.leaf_evaluations"),
        nodes_visited: read("cluster.index.nodes_visited"),
        pruned_subtrees: read("cluster.index.pruned_subtrees"),
    })
}

/// The current git revision, or `unknown` when git is unavailable.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl BenchReport {
    /// The report as the `BENCH_pipeline.json` document (schema
    /// [`BENCH_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"git_rev\": \"{}\",\n  \
             \"seed\": {},\n  \"repeats\": {},\n  \"threads\": {},\n  \"workloads\": [",
            json::escape(&self.git_rev),
            self.seed,
            self.repeats,
            self.threads
        );
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"towers\": {},\n      \"bins\": {},\n      \
                 \"total_median_ms\": {:.3},\n      \"total_p95_ms\": {:.3},\n      \
                 \"throughput_cells_per_s\": {:.1},\n      \"stages\": [",
                w.towers, w.bins, w.total_median_ms, w.total_p95_ms, w.throughput_cells_per_s
            ));
            for (j, s) in w.stages.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {{\"name\": \"{}\", \"median_ms\": {:.3}, \"p95_ms\": {:.3}}}",
                    json::escape(&s.name),
                    s.median_ms,
                    s.p95_ms
                ));
            }
            out.push_str("\n      ],\n      \"counters\": {");
            for (j, (name, value)) in w.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n        \"{}\": {}", json::escape(name), value));
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  ]");
        if let Some(q) = &self.query {
            out.push_str(&format!(
                ",\n  \"query\": {{\n    \"towers\": {},\n    \"requests\": {},\n    \
                 \"threads\": {},\n    \"total_ms\": {:.3},\n    \
                 \"throughput_qps\": {:.1},\n    \"allocations\": {},\n    \"counters\": {{",
                q.towers, q.requests, q.threads, q.total_ms, q.throughput_qps, q.allocations
            ));
            for (j, (name, value)) in q.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      \"{}\": {}", json::escape(name), value));
            }
            out.push_str("\n    }\n  }");
        }
        if let Some(q) = &self.query_overload {
            out.push_str(&format!(
                ",\n  \"query_overload\": {{\n    \"towers\": {},\n    \"requests\": {},\n    \
                 \"threads\": {},\n    \"request_budget\": {},\n    \"shed\": {},\n    \
                 \"total_ms\": {:.3},\n    \"throughput_qps\": {:.1},\n    \"counters\": {{",
                q.towers,
                q.requests,
                q.threads,
                q.request_budget,
                q.shed,
                q.total_ms,
                q.throughput_qps
            ));
            for (j, (name, value)) in q.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n      \"{}\": {}", json::escape(name), value));
            }
            out.push_str("\n    }\n  }");
        }
        if let Some(c) = &self.cluster_index {
            out.push_str(&format!(
                ",\n  \"cluster_index\": {{\n    \"points\": {},\n    \"dims\": {},\n    \
                 \"wall_ms\": {:.3},\n    \"merges\": {},\n    \
                 \"leaf_evaluations\": {},\n    \"nodes_visited\": {},\n    \
                 \"pruned_subtrees\": {}\n  }}",
                c.points,
                c.dims,
                c.wall_ms,
                c.merges,
                c.leaf_evaluations,
                c.nodes_visited,
                c.pruned_subtrees
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

fn require<'a>(obj: &'a Json, key: &str, at: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{at}: missing key `{key}`"))
}

fn require_number(obj: &Json, key: &str, at: &str) -> Result<f64, String> {
    require(obj, key, at)?
        .as_number()
        .ok_or_else(|| format!("{at}: `{key}` is not a number"))
}

/// Validates a `BENCH_pipeline.json` document: well-formed JSON,
/// correct schema tag, an integral `threads` setting, at least one
/// workload, and per-workload median/p95 stage timings, positive
/// throughput, and a non-empty counter snapshot.
///
/// # Errors
/// A human-readable description of the first violation.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let schema = require(&doc, "schema", "document")?
        .as_str()
        .ok_or("document: `schema` is not a string")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "document: schema `{schema}` is not `{BENCH_SCHEMA}`"
        ));
    }
    let rev = require(&doc, "git_rev", "document")?
        .as_str()
        .ok_or("document: `git_rev` is not a string")?;
    if rev.is_empty() {
        return Err("document: `git_rev` is empty".to_string());
    }
    require_number(&doc, "seed", "document")?;
    let repeats = require_number(&doc, "repeats", "document")?;
    if repeats < 1.0 {
        return Err("document: `repeats` must be ≥ 1".to_string());
    }
    let threads = require_number(&doc, "threads", "document")?;
    if threads < 0.0 || threads.fract() != 0.0 {
        return Err("document: `threads` must be a non-negative integer".to_string());
    }
    let workloads = require(&doc, "workloads", "document")?
        .as_array()
        .ok_or("document: `workloads` is not an array")?;
    if workloads.is_empty() {
        return Err("document: `workloads` is empty".to_string());
    }
    for (i, w) in workloads.iter().enumerate() {
        let at = format!("workloads[{i}]");
        let towers = require_number(w, "towers", &at)?;
        let bins = require_number(w, "bins", &at)?;
        if towers < 1.0 || bins < 1.0 {
            return Err(format!("{at}: towers/bins must be positive"));
        }
        let median = require_number(w, "total_median_ms", &at)?;
        let p95 = require_number(w, "total_p95_ms", &at)?;
        if !(median.is_finite() && p95.is_finite()) || median <= 0.0 || p95 + 1e-9 < median {
            return Err(format!(
                "{at}: implausible totals (median {median} ms, p95 {p95} ms)"
            ));
        }
        if require_number(w, "throughput_cells_per_s", &at)? <= 0.0 {
            return Err(format!("{at}: throughput must be positive"));
        }
        let stages = require(w, "stages", &at)?
            .as_array()
            .ok_or_else(|| format!("{at}: `stages` is not an array"))?;
        if stages.is_empty() {
            return Err(format!("{at}: `stages` is empty"));
        }
        for (j, s) in stages.iter().enumerate() {
            let at = format!("{at}.stages[{j}]");
            let name = require(s, "name", &at)?
                .as_str()
                .ok_or_else(|| format!("{at}: `name` is not a string"))?;
            if name.is_empty() {
                return Err(format!("{at}: `name` is empty"));
            }
            let median = require_number(s, "median_ms", &at)?;
            let p95 = require_number(s, "p95_ms", &at)?;
            if median < 0.0 || p95 + 1e-9 < median {
                return Err(format!("{at}: implausible stage percentiles"));
            }
        }
        let counters = require(w, "counters", &at)?
            .as_object()
            .ok_or_else(|| format!("{at}: `counters` is not an object"))?;
        if counters.is_empty() {
            return Err(format!("{at}: `counters` is empty"));
        }
        for (name, value) in counters {
            if value.as_number().is_none_or(|v| v < 0.0) {
                return Err(format!("{at}: counter `{name}` is not a count"));
            }
        }
    }
    // The query workload is optional (v3): when present it must be a
    // complete, plausible record.
    if let Some(q) = doc.get("query") {
        let at = "query";
        let towers = require_number(q, "towers", at)?;
        let requests = require_number(q, "requests", at)?;
        if towers < 1.0 || requests < 1.0 {
            return Err(format!("{at}: towers/requests must be positive"));
        }
        let threads = require_number(q, "threads", at)?;
        if threads < 0.0 || threads.fract() != 0.0 {
            return Err(format!("{at}: `threads` must be a non-negative integer"));
        }
        let total = require_number(q, "total_ms", at)?;
        if !total.is_finite() || total <= 0.0 {
            return Err(format!("{at}: implausible total ({total} ms)"));
        }
        if require_number(q, "throughput_qps", at)? <= 0.0 {
            return Err(format!("{at}: throughput must be positive"));
        }
        let allocations = require_number(q, "allocations", at)?;
        if allocations < 0.0 || allocations.fract() != 0.0 {
            return Err(format!(
                "{at}: `allocations` must be a non-negative integer"
            ));
        }
        let counters = q
            .get("counters")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("{at}: `counters` is not an object"))?;
        if counters.is_empty() {
            return Err(format!("{at}: `counters` is empty"));
        }
        // The batch's own bookkeeping must agree with the declared
        // request count — a mismatch means dropped or double-counted
        // work.
        let answered = counters
            .get("query.requests")
            .and_then(Json::as_number)
            .ok_or_else(|| format!("{at}: counters lack `query.requests`"))?;
        if answered != requests {
            return Err(format!(
                "{at}: `query.requests` counter ({answered}) disagrees with \
                 `requests` ({requests})"
            ));
        }
    }
    // The overload variant (v4): when present, the budget must be a
    // positive integer and the batch must have actually shed work —
    // some but never all of its requests.
    if let Some(q) = doc.get("query_overload") {
        let at = "query_overload";
        let towers = require_number(q, "towers", at)?;
        let requests = require_number(q, "requests", at)?;
        if towers < 1.0 || requests < 1.0 {
            return Err(format!("{at}: towers/requests must be positive"));
        }
        let threads = require_number(q, "threads", at)?;
        if threads < 0.0 || threads.fract() != 0.0 {
            return Err(format!("{at}: `threads` must be a non-negative integer"));
        }
        let budget = require_number(q, "request_budget", at)?;
        if budget < 1.0 || budget.fract() != 0.0 {
            return Err(format!("{at}: `request_budget` must be a positive integer"));
        }
        let total = require_number(q, "total_ms", at)?;
        if !total.is_finite() || total <= 0.0 {
            return Err(format!("{at}: implausible total ({total} ms)"));
        }
        if require_number(q, "throughput_qps", at)? <= 0.0 {
            return Err(format!("{at}: throughput must be positive"));
        }
        let shed = require_number(q, "shed", at)?;
        let counters = q
            .get("counters")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("{at}: `counters` is not an object"))?;
        let counted = counters
            .get("query.shed_total")
            .and_then(Json::as_number)
            .ok_or_else(|| format!("{at}: counters lack `query.shed_total`"))?;
        if counted != shed {
            return Err(format!(
                "{at}: `query.shed_total` counter ({counted}) disagrees with `shed` ({shed})"
            ));
        }
        if shed < 1.0 || shed >= requests {
            return Err(format!(
                "{at}: an overload batch must shed some but not all requests \
                 (shed {shed} of {requests})"
            ));
        }
        let answered = counters
            .get("query.requests")
            .and_then(Json::as_number)
            .ok_or_else(|| format!("{at}: counters lack `query.requests`"))?;
        if answered != requests {
            return Err(format!(
                "{at}: `query.requests` counter ({answered}) disagrees with \
                 `requests` ({requests})"
            ));
        }
    }
    // The spatial-index clustering workload (v5): when present, the
    // dendrogram must be complete (merges = points − 1) and the build
    // must have actually evaluated distances and walked the tree.
    if let Some(c) = doc.get("cluster_index") {
        let at = "cluster_index";
        let points = require_number(c, "points", at)?;
        if points < 2.0 || require_number(c, "dims", at)? < 1.0 {
            return Err(format!("{at}: needs ≥ 2 points of ≥ 1 dims"));
        }
        let wall = require_number(c, "wall_ms", at)?;
        if !wall.is_finite() || wall <= 0.0 {
            return Err(format!("{at}: implausible wall ({wall} ms)"));
        }
        let merges = require_number(c, "merges", at)?;
        if merges != points - 1.0 {
            return Err(format!(
                "{at}: `merges` ({merges}) is not points − 1 ({})",
                points - 1.0
            ));
        }
        for key in ["leaf_evaluations", "nodes_visited", "pruned_subtrees"] {
            let v = require_number(c, key, at)?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(format!("{at}: `{key}` is not a count"));
            }
        }
        if require_number(c, "leaf_evaluations", at)? < 1.0
            || require_number(c, "nodes_visited", at)? < 1.0
        {
            return Err(format!(
                "{at}: a real build evaluates distances and visits nodes"
            ));
        }
    }
    Ok(())
}

/// Allowed fractional regression of a per-stage median before
/// [`compare_bench_json`] fails.
pub const MEDIAN_REGRESSION_BUDGET: f64 = 0.10;

/// Absolute slack added on top of the fractional budget, so
/// sub-millisecond stages — where scheduler noise dominates the
/// median — cannot fail the gate on jitter alone.
pub const MEDIAN_EPSILON_MS: f64 = 0.5;

/// Deterministic distance-evaluation counters. For a fixed seed their
/// values do not depend on thread count or timing, so a candidate
/// whose total exceeds the baseline's at a matching workload size has
/// genuinely regressed the pruning or caching structure — the gate
/// compares the *sum* so that moving work between the materialised,
/// on-demand, and indexed paths cannot hide a regression.
pub const EVAL_COUNTERS: [&str; 3] = [
    "cluster.distance.evaluations",
    "cluster.distance.on_demand_evaluations",
    "cluster.index.leaf_evaluations",
];

/// Per-workload stage medians, keyed by tower count.
fn stage_medians(doc: &Json, role: &str) -> Result<BTreeMap<u64, BTreeMap<String, f64>>, String> {
    let mut out = BTreeMap::new();
    for w in doc.get("workloads").and_then(Json::as_array).unwrap_or(&[]) {
        let towers = require_number(w, "towers", role)? as u64;
        let mut stages = BTreeMap::new();
        for s in w.get("stages").and_then(Json::as_array).unwrap_or(&[]) {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{role}: stage without a name"))?;
            stages.insert(name.to_string(), require_number(s, "median_ms", role)?);
        }
        out.insert(towers, stages);
    }
    Ok(out)
}

/// Per-workload totals of the [`EVAL_COUNTERS`], keyed by tower count.
fn eval_totals(doc: &Json, role: &str) -> Result<BTreeMap<u64, u64>, String> {
    let mut out = BTreeMap::new();
    for w in doc.get("workloads").and_then(Json::as_array).unwrap_or(&[]) {
        let towers = require_number(w, "towers", role)? as u64;
        let mut total = 0u64;
        if let Some(counters) = w.get("counters").and_then(Json::as_object) {
            for name in EVAL_COUNTERS {
                total += counters.get(name).and_then(Json::as_number).unwrap_or(0.0) as u64;
            }
        }
        out.insert(towers, total);
    }
    Ok(out)
}

/// A query section's `query.topk_pruned_total` counter (0 if absent).
fn topk_pruned(q: &Json) -> f64 {
    q.get("counters")
        .and_then(Json::as_object)
        .and_then(|cs| cs.get("query.topk_pruned_total"))
        .and_then(Json::as_number)
        .unwrap_or(0.0)
}

/// Compares a candidate bench report against a committed baseline:
/// the candidate must introduce **no stage name** the baseline has
/// never seen (a supervision layer that quietly adds pipeline work
/// fails here), and for every workload whose tower count also exists
/// in the baseline, each stage median may regress by at most
/// [`MEDIAN_REGRESSION_BUDGET`] (plus [`MEDIAN_EPSILON_MS`] of
/// absolute slack). Workloads with no matching baseline size skip the
/// median check and are reported in the returned notes, so a smoke
/// run at an off-baseline size still gates the stage set.
///
/// Three deterministic gates ride along (exact — no jitter budget,
/// because the compared counters cannot jitter for a fixed seed):
/// at matching workload sizes the summed [`EVAL_COUNTERS`] may not
/// exceed the baseline's; at a matching `cluster_index` point count
/// the `leaf_evaluations` may not exceed the baseline's; and at a
/// matching `query` workload shape the `query.topk_pruned_total`
/// counter may not drop below the baseline's (pruning power lost).
///
/// # Errors
/// A human-readable description of the first violation, including
/// structural invalidity of either document.
pub fn compare_bench_json(candidate: &str, baseline: &str) -> Result<Vec<String>, String> {
    validate_bench_json(candidate).map_err(|e| format!("candidate: {e}"))?;
    validate_bench_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand_doc = json::parse(candidate).map_err(|e| format!("candidate: {e}"))?;
    let base_doc = json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand = stage_medians(&cand_doc, "candidate")?;
    let base = stage_medians(&base_doc, "baseline")?;
    let known: std::collections::BTreeSet<&str> = base
        .values()
        .flat_map(|stages| stages.keys().map(String::as_str))
        .collect();
    let mut notes = Vec::new();
    for (towers, stages) in &cand {
        for name in stages.keys() {
            if !known.contains(name.as_str()) {
                return Err(format!(
                    "candidate workload ({towers} towers) runs stage `{name}`, \
                     which the baseline has never seen"
                ));
            }
        }
        match base.get(towers) {
            None => notes.push(format!(
                "{towers} towers: no baseline workload at this size; medians not compared"
            )),
            Some(base_stages) => {
                for (name, &median) in stages {
                    let Some(&reference) = base_stages.get(name) else {
                        continue;
                    };
                    let budget = reference * (1.0 + MEDIAN_REGRESSION_BUDGET) + MEDIAN_EPSILON_MS;
                    if median > budget {
                        return Err(format!(
                            "{towers} towers: stage `{name}` median {median:.3} ms exceeds \
                             baseline {reference:.3} ms by more than {:.0}% (+{MEDIAN_EPSILON_MS} ms)",
                            MEDIAN_REGRESSION_BUDGET * 100.0
                        ));
                    }
                }
                notes.push(format!(
                    "{towers} towers: {} stage medians within {:.0}% of baseline",
                    stages.len(),
                    MEDIAN_REGRESSION_BUDGET * 100.0
                ));
            }
        }
    }
    // Eval-count gate: at matching sizes the summed distance-work
    // counters are deterministic, so "no worse than baseline" is exact.
    let cand_evals = eval_totals(&cand_doc, "candidate")?;
    let base_evals = eval_totals(&base_doc, "baseline")?;
    for (towers, &evals) in &cand_evals {
        let Some(&reference) = base_evals.get(towers) else {
            continue;
        };
        if evals > reference {
            return Err(format!(
                "{towers} towers: {evals} distance evaluations exceed the baseline's \
                 {reference} (the eval-count gate is exact: these counters are \
                 deterministic for a fixed seed)"
            ));
        }
        notes.push(format!(
            "{towers} towers: {evals} distance evaluations (baseline {reference})"
        ));
    }
    // Spatial-index clustering gate: same point count ⇒ the candidate
    // may not evaluate more leaf distances than the baseline.
    if let (Some(c), Some(b)) = (cand_doc.get("cluster_index"), base_doc.get("cluster_index")) {
        let points = require_number(c, "points", "candidate")?;
        if points == require_number(b, "points", "baseline")? {
            let evals = require_number(c, "leaf_evaluations", "candidate")?;
            let reference = require_number(b, "leaf_evaluations", "baseline")?;
            if evals > reference {
                return Err(format!(
                    "cluster_index: {evals} leaf evaluations at {points} points \
                     exceed the baseline's {reference}"
                ));
            }
            notes.push(format!(
                "cluster_index: {evals} leaf evaluations at {points} points \
                 (baseline {reference})"
            ));
        } else {
            notes.push(
                "cluster_index: point count differs from baseline; evaluations not compared"
                    .to_string(),
            );
        }
    }
    // Pruned-topk gate: same snapshot size and stream length ⇒ the
    // candidate may not prune fewer subtrees than the baseline.
    if let (Some(c), Some(b)) = (cand_doc.get("query"), base_doc.get("query")) {
        let same = require_number(c, "towers", "candidate")?
            == require_number(b, "towers", "baseline")?
            && require_number(c, "requests", "candidate")?
                == require_number(b, "requests", "baseline")?;
        if same {
            let pruned = topk_pruned(c);
            let reference = topk_pruned(b);
            if pruned < reference {
                return Err(format!(
                    "query: {pruned} topk subtrees pruned, below the baseline's \
                     {reference} — the index descent lost pruning power"
                ));
            }
            notes.push(format!(
                "query: {pruned} topk subtrees pruned (baseline {reference})"
            ));
        } else {
            notes.push(
                "query: workload shape differs from baseline; pruning not compared".to_string(),
            );
        }
    }
    Ok(notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            git_rev: "abc123def456".into(),
            seed: 42,
            repeats: 3,
            threads: 4,
            workloads: vec![WorkloadResult {
                towers: 60,
                bins: 4_032,
                total_median_ms: 120.5,
                total_p95_ms: 130.25,
                throughput_cells_per_s: 2_007_363.2,
                stages: vec![
                    StageTiming {
                        name: "city".into(),
                        median_ms: 1.2,
                        p95_ms: 1.4,
                    },
                    StageTiming {
                        name: "cluster".into(),
                        median_ms: 80.0,
                        p95_ms: 91.0,
                    },
                ],
                counters: BTreeMap::from([
                    ("cluster.distance.evaluations".to_string(), 1_770u64),
                    ("core.engine.runs".to_string(), 1),
                ]),
            }],
            query: None,
            query_overload: None,
            cluster_index: None,
        }
    }

    fn sample_query() -> QueryBenchResult {
        QueryBenchResult {
            towers: 9_600,
            requests: 10_000,
            threads: 4,
            total_ms: 250.0,
            throughput_qps: 40_000.0,
            allocations: 12_345,
            counters: BTreeMap::from([
                ("query.requests".to_string(), 10_000u64),
                ("query.pattern".to_string(), 6_000),
                ("query.topk".to_string(), 2_500),
                ("query.decompose".to_string(), 1_500),
                ("query.topk_pruned_total".to_string(), 40_000),
            ]),
        }
    }

    fn sample_cluster_index() -> ClusterIndexResult {
        ClusterIndexResult {
            points: 100_000,
            dims: 6,
            wall_ms: 52_000.0,
            merges: 99_999,
            leaf_evaluations: 5_000_000_000,
            nodes_visited: 9_000_000,
            pruned_subtrees: 4_000_000,
        }
    }

    fn sample_overload() -> QueryOverloadResult {
        QueryOverloadResult {
            towers: 9_600,
            requests: 10_000,
            threads: 4,
            request_budget: 100,
            shed: 2_000,
            total_ms: 50.0,
            throughput_qps: 200_000.0,
            counters: BTreeMap::from([
                ("query.requests".to_string(), 10_000u64),
                ("query.pattern".to_string(), 8_000),
                ("query.topk".to_string(), 0),
                ("query.shed_total".to_string(), 2_000),
            ]),
        }
    }

    #[test]
    fn emitted_json_passes_validation() {
        let json = sample_report().to_json();
        validate_bench_json(&json).unwrap();
    }

    #[test]
    fn overload_section_validates_and_demands_real_shedding() {
        let mut report = sample_report();
        report.query = Some(sample_query());
        report.query_overload = Some(sample_overload());
        let good = report.to_json();
        validate_bench_json(&good).unwrap();
        // The stage-median gate ignores both query sections.
        compare_bench_json(&good, &sample_report().to_json()).unwrap();
        for (tag, breakage) in [
            (
                "zero budget",
                good.replace("\"request_budget\": 100", "\"request_budget\": 0"),
            ),
            (
                "nothing shed",
                good.replace("\"shed\": 2000", "\"shed\": 0")
                    .replace("\"query.shed_total\": 2000", "\"query.shed_total\": 0"),
            ),
            (
                "everything shed",
                good.replace("\"shed\": 2000", "\"shed\": 10000")
                    .replace("\"query.shed_total\": 2000", "\"query.shed_total\": 10000"),
            ),
            (
                "shed counter disagreement",
                good.replace("\"query.shed_total\": 2000", "\"query.shed_total\": 1999"),
            ),
            (
                "missing shed counter",
                good.replace("\"query.shed_total\"", "\"query.other_total\""),
            ),
        ] {
            assert!(validate_bench_json(&breakage).is_err(), "{tag} accepted");
        }
    }

    #[test]
    fn query_section_validates_and_is_gated() {
        let mut report = sample_report();
        report.query = Some(sample_query());
        let good = report.to_json();
        validate_bench_json(&good).unwrap();
        // The comparison gate ignores the query section (throughput
        // baselines live in EXPERIMENTS.md, not the stage-median gate).
        compare_bench_json(&good, &sample_report().to_json()).unwrap();
        for (tag, breakage) in [
            (
                "zero throughput",
                good.replace("\"throughput_qps\": 40000.0", "\"throughput_qps\": 0"),
            ),
            (
                "counter/request disagreement",
                good.replace("\"query.requests\": 10000", "\"query.requests\": 9999"),
            ),
            (
                "missing request counter",
                good.replace("\"query.requests\"", "\"query.other\""),
            ),
            (
                "fractional threads",
                good.replace(
                    "\"threads\": 4,\n    \"total_ms\"",
                    "\"threads\": 1.5,\n    \"total_ms\"",
                ),
            ),
        ] {
            assert!(validate_bench_json(&breakage).is_err(), "{tag} accepted");
        }
    }

    #[test]
    fn query_bench_smoke_counts_every_request() {
        let params = QueryBenchParams {
            towers: 12,
            requests: 200,
            seed: 7,
            threads: 2,
            request_budget: 2,
        };
        let (q, over) = run_query_bench(&params).unwrap();
        assert_eq!(q.requests, 200);
        assert!(q.towers >= 1 && q.towers <= 12);
        assert_eq!(q.counters.get("query.requests"), Some(&200));
        // No screen requests in the stream, and every request lands
        // in exactly one verb bucket.
        assert_eq!(q.counters.get("query.screen").copied().unwrap_or(0), 0);
        let verbs: u64 = ["query.pattern", "query.decompose", "query.topk"]
            .iter()
            .filter_map(|k| q.counters.get(*k))
            .sum();
        assert_eq!(verbs, 200);
        assert!(q.throughput_qps > 0.0);

        // The overload variant sheds exactly the topk fifth of the
        // stream: every scan out-costs the 2-unit budget, every
        // pattern lookup is admitted.
        assert_eq!(over.request_budget, 2);
        assert_eq!(over.shed, 40, "every fifth request sheds");
        assert_eq!(over.counters.get("query.shed_total"), Some(&40));
        assert_eq!(over.counters.get("query.requests"), Some(&200));
        assert_eq!(over.counters.get("query.pattern"), Some(&160));
        assert_eq!(over.counters.get("query.topk").copied().unwrap_or(0), 0);

        // The whole report (with both query sections) passes the gate.
        let mut report = run_bench(&BenchParams {
            sizes: vec![12],
            repeats: 1,
            seed: 7,
            threads: 2,
        })
        .unwrap();
        report.query = Some(q);
        report.query_overload = Some(over);
        validate_bench_json(&report.to_json()).unwrap();
    }

    #[test]
    fn cluster_index_section_validates_and_is_gated() {
        let mut report = sample_report();
        report.cluster_index = Some(sample_cluster_index());
        let good = report.to_json();
        validate_bench_json(&good).unwrap();
        compare_bench_json(&good, &good).unwrap();
        // More leaf evaluations at the same point count is a hard
        // regression — the counter is deterministic, so no slack.
        let mut worse = sample_report();
        worse.cluster_index = Some(ClusterIndexResult {
            leaf_evaluations: 5_000_000_001,
            ..sample_cluster_index()
        });
        let err = compare_bench_json(&worse.to_json(), &good).unwrap_err();
        assert!(err.contains("leaf evaluations"), "{err}");
        // A different point count skips the gate with a note.
        let mut other = sample_report();
        other.cluster_index = Some(ClusterIndexResult {
            points: 50_000,
            merges: 49_999,
            leaf_evaluations: 9_000_000_000,
            ..sample_cluster_index()
        });
        let notes = compare_bench_json(&other.to_json(), &good).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("not compared")),
            "{notes:?}"
        );
        for (tag, breakage) in [
            (
                "incomplete dendrogram",
                good.replace("\"merges\": 99999", "\"merges\": 99998"),
            ),
            (
                "zero wall",
                good.replace("\"wall_ms\": 52000.000", "\"wall_ms\": 0.000"),
            ),
            (
                "no evaluations",
                good.replace(
                    "\"leaf_evaluations\": 5000000000",
                    "\"leaf_evaluations\": 0",
                ),
            ),
            (
                "fractional count",
                good.replace("\"pruned_subtrees\": 4000000", "\"pruned_subtrees\": 0.5"),
            ),
        ] {
            assert!(validate_bench_json(&breakage).is_err(), "{tag} accepted");
        }
    }

    #[test]
    fn comparison_rejects_an_eval_count_regression() {
        let baseline = sample_report().to_json();
        let mut report = sample_report();
        report.workloads[0]
            .counters
            .insert("cluster.distance.evaluations".to_string(), 1_771);
        let err = compare_bench_json(&report.to_json(), &baseline).unwrap_err();
        assert!(err.contains("distance evaluations"), "{err}");
        // Moving the same work to a sibling eval counter is no
        // escape: the gate compares the family's sum.
        let mut report = sample_report();
        report.workloads[0]
            .counters
            .insert("cluster.distance.evaluations".to_string(), 0);
        report.workloads[0]
            .counters
            .insert("cluster.index.leaf_evaluations".to_string(), 1_771);
        let err = compare_bench_json(&report.to_json(), &baseline).unwrap_err();
        assert!(err.contains("distance evaluations"), "{err}");
        // Fewer evaluations — a better pruner — passes with a note.
        let mut report = sample_report();
        report.workloads[0]
            .counters
            .insert("cluster.distance.evaluations".to_string(), 1_000);
        let notes = compare_bench_json(&report.to_json(), &baseline).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("distance evaluations")),
            "{notes:?}"
        );
    }

    #[test]
    fn comparison_rejects_lost_topk_pruning() {
        let mut base = sample_report();
        base.query = Some(sample_query());
        let baseline = base.to_json();
        compare_bench_json(&baseline, &baseline).unwrap();
        // Fewer pruned subtrees over the identical workload shape
        // means the index descent lost power.
        let mut report = sample_report();
        let mut q = sample_query();
        q.counters
            .insert("query.topk_pruned_total".to_string(), 39_999);
        report.query = Some(q);
        let err = compare_bench_json(&report.to_json(), &baseline).unwrap_err();
        assert!(err.contains("pruned"), "{err}");
        // A different stream length skips the gate with a note.
        let mut report = sample_report();
        let mut q = sample_query();
        q.requests = 500;
        q.counters.insert("query.requests".to_string(), 500);
        q.counters.insert("query.topk_pruned_total".to_string(), 0);
        report.query = Some(q);
        let notes = compare_bench_json(&report.to_json(), &baseline).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("not compared")),
            "{notes:?}"
        );
    }

    #[test]
    fn cluster_bench_smoke_builds_a_complete_dendrogram() {
        let params = ClusterBenchParams {
            points: 600,
            seed: 7,
        };
        let r = run_cluster_bench(&params).unwrap();
        assert_eq!(r.points, 600);
        assert_eq!(r.merges, 599);
        assert!(r.leaf_evaluations > 0 && r.nodes_visited > 0);
        assert!(r.pruned_subtrees > 0, "8 separated blobs must prune");
        let mut report = sample_report();
        report.cluster_index = Some(r);
        validate_bench_json(&report.to_json()).unwrap();
    }

    #[test]
    fn validation_rejects_structural_damage() {
        let good = sample_report().to_json();
        for (tag, breakage) in [
            ("bad schema", good.replace(BENCH_SCHEMA, "nope-v0")),
            (
                "no workloads",
                good.replace("\"towers\": 60", "\"towers\": 0"),
            ),
            (
                "p95 below median",
                good.replace("\"total_p95_ms\": 130.25", "\"total_p95_ms\": 1.0"),
            ),
            ("non-numeric counter", good.replace(": 1770", ": \"many\"")),
            (
                "fractional threads",
                good.replace("\"threads\": 4", "\"threads\": 1.5"),
            ),
            ("missing threads", good.replace("\"threads\": 4,", "")),
            ("truncated", good[..good.len() / 2].to_string()),
        ] {
            assert!(validate_bench_json(&breakage).is_err(), "{tag} accepted");
        }
        let empty = good
            .replace("\"stages\": [", "\"stages_x\": [")
            .replace("\"stages_x\"", "\"stages\": [], \"x\"");
        assert!(
            validate_bench_json(&empty).is_err(),
            "empty stages accepted"
        );
    }

    #[test]
    fn comparison_accepts_a_report_against_itself() {
        let json = sample_report().to_json();
        let notes = compare_bench_json(&json, &json).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("within 10% of baseline")),
            "{notes:?}"
        );
    }

    #[test]
    fn comparison_rejects_a_stage_the_baseline_never_saw() {
        let baseline = sample_report().to_json();
        let mut report = sample_report();
        report.workloads[0].stages.push(StageTiming {
            name: "supervise".into(),
            median_ms: 0.1,
            p95_ms: 0.2,
        });
        let err = compare_bench_json(&report.to_json(), &baseline).unwrap_err();
        assert!(err.contains("`supervise`"), "{err}");
    }

    #[test]
    fn comparison_rejects_a_median_regression_beyond_budget() {
        let baseline = sample_report().to_json();
        let mut report = sample_report();
        // cluster: 80 ms baseline; the budget is 80·1.1 + 0.5 = 88.5.
        report.workloads[0].stages[1].median_ms = 95.0;
        report.workloads[0].stages[1].p95_ms = 99.0;
        let err = compare_bench_json(&report.to_json(), &baseline).unwrap_err();
        assert!(err.contains("`cluster`") && err.contains("10%"), "{err}");
        // Just inside the budget passes.
        let mut report = sample_report();
        report.workloads[0].stages[1].median_ms = 88.0;
        report.workloads[0].stages[1].p95_ms = 91.0;
        compare_bench_json(&report.to_json(), &baseline).unwrap();
    }

    #[test]
    fn comparison_skips_medians_at_off_baseline_sizes() {
        let baseline = sample_report().to_json();
        let mut report = sample_report();
        report.workloads[0].towers = 20;
        // A wild regression at an unmatched size is tolerated (the
        // smoke run in CI uses a smaller workload than the committed
        // baseline) — but the stage-set gate still applies.
        report.workloads[0].stages[1].median_ms = 500.0;
        report.workloads[0].stages[1].p95_ms = 500.0;
        let notes = compare_bench_json(&report.to_json(), &baseline).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("medians not compared")),
            "{notes:?}"
        );
        report.workloads[0].stages[0].name = "shadow".into();
        assert!(compare_bench_json(&report.to_json(), &baseline).is_err());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(percentiles(vec![3.0]), (3.0, 3.0));
        assert_eq!(percentiles(vec![5.0, 1.0, 3.0]), (3.0, 5.0));
        let twenty: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(percentiles(twenty), (10.0, 19.0));
    }

    #[test]
    fn workload_config_scales_towers_over_the_paper_window() {
        let c = workload_config(60, 7);
        assert_eq!(c.city.n_towers, 60);
        assert_eq!(c.window.n_bins, 4_032);
    }

    #[test]
    fn bench_smoke_produces_valid_json() {
        let params = BenchParams {
            sizes: vec![12],
            repeats: 1,
            seed: 7,
            threads: 2,
        };
        let report = run_bench(&params).unwrap();
        assert_eq!(report.workloads.len(), 1);
        assert_eq!(report.workloads[0].bins, 4_032);
        assert!(!report.workloads[0].counters.is_empty());
        // The raw path materialises its distance matrix, so the
        // counter snapshot carries the build-time evaluation count.
        assert!(
            report.workloads[0]
                .counters
                .contains_key("cluster.distance.evaluations"),
            "counters: {:?}",
            report.workloads[0].counters.keys().collect::<Vec<_>>()
        );
        validate_bench_json(&report.to_json()).unwrap();

        // Same workload forced into the spectral space: the cluster
        // stage goes matrix-free over the exact-pruning spatial index,
        // so the dump must report the index's kernel-evaluation count
        // — and none of the unindexed on-demand fallback's — letting a
        // bench quantify distance work per feature space. (Sequential
        // with the run above on purpose — both passes reset the
        // process-global registry.)
        towerlens_obs::global().reset();
        let mut config = workload_config(12, 7).with_threads(2);
        config.identifier.feature_space = towerlens_pipeline::FeatureSpace::Spectral;
        Study::new(config).run_instrumented(None).unwrap();
        let counters = towerlens_obs::global().snapshot().counters;
        assert!(
            counters
                .get("cluster.index.leaf_evaluations")
                .copied()
                .unwrap_or(0)
                > 0,
            "spectral run reported no indexed evaluations: {:?}",
            counters.keys().collect::<Vec<_>>()
        );
        assert_eq!(
            counters
                .get("cluster.distance.on_demand_evaluations")
                .copied()
                .unwrap_or(0),
            0,
            "the indexed spectral path must not fall back to the on-demand metric"
        );
    }
}
