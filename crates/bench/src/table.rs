//! Minimal fixed-width text-table rendering for the repro artefacts.

/// A simple text table: a header row plus data rows, rendered with
/// column widths fitted to content.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant-ish decimals, scientific for
/// very large/small magnitudes.
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an `(hour, minute)` pair as `HH:MM`.
pub fn hhmm(t: (u32, u32)) -> String {
    format!("{:02}:{:02}", t.0, t.1)
}

/// Renders a vector as a one-line ASCII sparkline strip (resampled to
/// `width` columns, scaled to its own max).
pub fn strip(values: &[f64], width: usize) -> String {
    const GLYPHS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let span = (max - min).max(1e-300);
    (0..width)
        .map(|c| {
            let lo = c * values.len() / width;
            let hi = (((c + 1) * values.len()) / width).max(lo + 1);
            let avg: f64 = values[lo..hi.min(values.len())].iter().sum::<f64>() / (hi - lo) as f64;
            let idx = (((avg - min) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "100000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // All data lines align the second column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('1').unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(1.5), "1.500");
        assert_eq!(num(123.456), "123.5");
        assert!(num(7.7e8).contains('e'));
        assert_eq!(num(f64::INFINITY), "inf");
    }

    #[test]
    fn hhmm_formatting() {
        assert_eq!(hhmm((8, 5)), "08:05");
        assert_eq!(hhmm((21, 30)), "21:30");
    }

    #[test]
    fn strip_shape_and_extremes() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = strip(&values, 20);
        assert_eq!(s.chars().count(), 20);
        assert_eq!(s.chars().next(), Some(' '));
        assert_eq!(s.chars().last(), Some('@'));
        assert_eq!(strip(&[], 10), "");
        assert_eq!(strip(&[1.0], 0), "");
        // Constant input doesn't panic or divide by zero.
        let flat = strip(&[5.0; 10], 5);
        assert_eq!(flat.chars().count(), 5);
    }
}
