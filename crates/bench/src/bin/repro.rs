//! Reproduction harness: regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale tiny|small|medium|paper] [--seed N] [--out FILE]
//!       [--resume DIR] [--timings] <exp>... | all | list
//! ```
//!
//! Experiments are the paper's artefact ids (`fig1`, `table4`, …);
//! `all` runs every artefact in paper order. Output goes to stdout
//! and, with `--out`, to a file (the committed `EXPERIMENTS.md` is
//! generated this way).

use std::io::Write as _;

use towerlens_bench::ablations::{self, ALL_ABLATIONS};
use towerlens_bench::experiments::{run, ALL_EXPERIMENTS};
use towerlens_bench::{run_study_instrumented, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut out_file: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut timings = false;
    let mut experiments: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                match Scale::parse(&v) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale `{v}` (tiny|small|medium|paper)");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                let v = it.next().unwrap_or_default();
                match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("bad seed `{v}`");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out_file = it.next(),
            "--resume" => {
                resume = it.next();
                if resume.is_none() {
                    eprintln!("flag --resume needs a directory");
                    std::process::exit(2);
                }
            }
            "--timings" => timings = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale tiny|small|medium|paper] [--seed N] [--out FILE] \
                     [--resume DIR] [--timings] <experiment>... | all | list"
                );
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }

    if experiments.iter().any(|e| e == "list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        for id in ALL_ABLATIONS {
            println!("{id}");
        }
        return;
    }
    if experiments.iter().any(|e| e == "ablations") {
        experiments = ALL_ABLATIONS.iter().map(|s| s.to_string()).collect();
    }
    if experiments.is_empty() {
        experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    } else if experiments.iter().any(|e| e == "all") {
        // Expand `all` in place, preserving any extra ids (e.g.
        // ablations) listed alongside it.
        let mut expanded = Vec::new();
        for e in &experiments {
            if e == "all" {
                expanded.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
            } else {
                expanded.push(e.clone());
            }
        }
        experiments = expanded;
    }

    eprintln!("running study at scale {scale:?}, seed {seed}…");
    let started = std::time::Instant::now();
    let resume_path = resume.as_deref().map(std::path::Path::new);
    let (report, run_report) = match run_study_instrumented(scale, seed, resume_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("study failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "study done in {:.1}s: {} towers, {} analysed, {} patterns, labels {:?}",
        started.elapsed().as_secs_f64(),
        report.raw.len(),
        report.vectors.len(),
        report.patterns.k,
        report.geo.labels
    );
    // Stage table goes to stderr: stdout (and --out) carry artefacts.
    if timings {
        eprint!("{}", run_report.render_table());
    }

    let mut failures = 0usize;
    let mut output = String::new();
    output.push_str(&format!(
        "# towerlens reproduction — scale {scale:?}, seed {seed}\n\n"
    ));
    for id in &experiments {
        let result = if id.starts_with("ablate-") {
            ablations::run(id, &report)
        } else {
            run(id, &report)
        };
        match result {
            Ok(text) => {
                output.push_str(&text);
                output.push('\n');
            }
            Err(e) => {
                failures += 1;
                eprintln!("{id} failed: {e}");
                output.push_str(&format!("## {id}\nFAILED: {e}\n\n"));
            }
        }
    }
    print!("{output}");
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
    }
    if let Some(path) = out_file {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(output.as_bytes())) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
