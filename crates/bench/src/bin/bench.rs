//! Reproducible pipeline benchmark: emits `BENCH_pipeline.json`.
//!
//! ```text
//! bench [--sizes N,N,...] [--paper] [--repeats K] [--seed N] [--threads N] [--out FILE]
//! bench [--query] [--cluster-100k] ...
//! bench --validate FILE [--baseline FILE]
//! ```
//!
//! `--paper` appends the paper-scale workload (9,600 towers — the full
//! Shanghai deployment of the source paper) to the size list. At that
//! count the study's feature space auto-resolves to spectral, so the
//! cluster stage runs matrix-free over the exact-pruning spatial
//! index; the emitted counters then include
//! `cluster.index.leaf_evaluations` (and the tree-traversal counters)
//! alongside the materialised path's `cluster.distance.evaluations`,
//! letting the report quantify distance work per feature space.
//! `--cluster-100k` adds a pure clustering workload an order of
//! magnitude past the paper: a complete average-linkage dendrogram
//! over 100,000 synthetic 6-dim feature vectors through the index.
//!
//! This binary installs a counting global allocator (the library
//! can't — it forbids `unsafe`); the query workload reports the heap
//! acquisitions of its timed batch, making the per-worker scratch
//! reuse of the batch path measurable rather than asserted.
//!
//! Each size runs the full staged study pipeline (city → synthesize →
//! vectorize → cluster → label/timedomain/frequency → decompose) over
//! the paper's 4032-bin window, K times; the JSON carries per-stage
//! median/p95 wall time, end-to-end throughput, the hot-path counter
//! snapshot, and the git revision. With `--threads` other than 1, a
//! single-thread reference pass also runs and the table reports the
//! speedup; output stays bit-identical either way. `--validate`
//! checks an existing
//! file against the schema instead of running anything (this is the
//! `scripts/check.sh` gate); adding `--baseline` also compares it
//! against a committed baseline — no stage names the baseline has
//! never seen, and per-stage medians within the regression budget at
//! matching workload sizes.

use std::alloc::{GlobalAlloc, Layout, System};

use towerlens_bench::perf::{
    compare_bench_json, run_bench, run_cluster_bench, run_query_bench, validate_bench_json,
    BenchParams, ClusterBenchParams, QueryBenchParams,
};

/// Counts heap-allocation calls through the library's safe hooks
/// (`towerlens_bench::alloc`). Installed only in this binary, so the
/// library keeps its `#![forbid(unsafe_code)]`; lib code reading the
/// counter outside this binary just sees a flat `0`.
struct CountingAlloc;

// SAFETY: every method delegates verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the extra work is one relaxed atomic
// increment, which cannot allocate, unwind, or touch the layout.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        towerlens_bench::alloc::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        towerlens_bench::alloc::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        towerlens_bench::alloc::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut params = BenchParams::default();
    let mut out_file = "BENCH_pipeline.json".to_string();
    let mut validate: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut paper = false;
    let mut query = false;
    let mut query_params = QueryBenchParams::default();
    let mut cluster = false;
    let mut cluster_params = ClusterBenchParams::default();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sizes" => {
                let v = it.next().unwrap_or_default();
                match v.split(',').map(|s| s.trim().parse()).collect() {
                    Ok(sizes) => params.sizes = sizes,
                    Err(_) => bail(&format!("bad --sizes `{v}` (want N,N,...)")),
                }
                if params.sizes.is_empty() || params.sizes.contains(&0) {
                    bail("--sizes needs at least one positive tower count");
                }
            }
            "--paper" => paper = true,
            "--query" => query = true,
            "--query-towers" => match it.next().unwrap_or_default().parse() {
                Ok(t) if t >= 1 => query_params.towers = t,
                _ => bail("bad --query-towers (want an integer ≥ 1)"),
            },
            "--query-requests" => match it.next().unwrap_or_default().parse() {
                Ok(r) if r >= 1 => query_params.requests = r,
                _ => bail("bad --query-requests (want an integer ≥ 1)"),
            },
            "--query-budget" => match it.next().unwrap_or_default().parse() {
                Ok(b) if b >= 1 => query_params.request_budget = b,
                _ => bail("bad --query-budget (want a cost budget ≥ 1)"),
            },
            "--cluster-100k" => cluster = true,
            "--cluster-points" => match it.next().unwrap_or_default().parse() {
                Ok(p) if p >= 2 => {
                    cluster = true;
                    cluster_params.points = p;
                }
                _ => bail("bad --cluster-points (want an integer ≥ 2)"),
            },
            "--repeats" => match it.next().unwrap_or_default().parse() {
                Ok(k) if k >= 1 => params.repeats = k,
                _ => bail("bad --repeats (want an integer ≥ 1)"),
            },
            "--seed" => match it.next().unwrap_or_default().parse() {
                Ok(s) => params.seed = s,
                Err(_) => bail("bad --seed"),
            },
            "--threads" => match it.next().unwrap_or_default().parse() {
                Ok(t) => params.threads = t,
                Err(_) => bail("bad --threads (want an integer ≥ 0; 0 = all cores)"),
            },
            "--out" => out_file = it.next().unwrap_or_else(|| bail("--out needs a path")),
            "--validate" => {
                validate = Some(it.next().unwrap_or_else(|| bail("--validate needs a path")));
            }
            "--baseline" => {
                baseline = Some(it.next().unwrap_or_else(|| bail("--baseline needs a path")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench [--sizes N,N,...] [--paper] [--repeats K] [--seed N] \
                     [--threads N] [--out FILE]\n\
                     \x20      bench [--query] [--query-towers N] [--query-requests N] \
                     [--query-budget N] ...\n\
                     \x20      bench [--cluster-100k] [--cluster-points N] ...\n\
                     \x20      bench --validate FILE [--baseline FILE]\n\
                     --paper appends the 9,600-tower paper-scale workload \
                     (spectral feature space)\n\
                     --query also times a deterministic mixed batch (default 10,000 \
                     requests) against the\n\
                     \x20       memory-resident query artifact of a 9,600-tower spectral \
                     study, plus an overload\n\
                     \x20       variant under an admission budget (default 100 cost units) \
                     that sheds every topk scan\n\
                     --cluster-100k also clusters 100,000 synthetic 6-dim feature vectors \
                     end-to-end over the\n\
                     \x20       exact-pruning spatial index (nn-chain, average linkage); \
                     --cluster-points overrides the count"
                );
                return;
            }
            other => bail(&format!("unknown argument `{other}` (see --help)")),
        }
    }

    if let Some(path) = validate {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            }
        };
        match validate_bench_json(&text) {
            Ok(()) => println!("{path}: valid {}", towerlens_bench::perf::BENCH_SCHEMA),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
        if let Some(base_path) = baseline {
            let base = match std::fs::read_to_string(&base_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("failed to read {base_path}: {e}");
                    std::process::exit(1);
                }
            };
            match compare_bench_json(&text, &base) {
                Ok(notes) => {
                    for note in notes {
                        println!("{path} vs {base_path}: {note}");
                    }
                    println!("{path}: within budget of {base_path}");
                }
                Err(e) => {
                    eprintln!("{path} vs {base_path}: REGRESSION: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }
    if baseline.is_some() {
        bail("--baseline only makes sense with --validate");
    }
    if paper {
        const PAPER_TOWERS: usize = 9_600;
        if !params.sizes.contains(&PAPER_TOWERS) {
            params.sizes.push(PAPER_TOWERS);
        }
    }

    let available = towerlens_par::resolve_threads(0);
    if params.threads > available {
        eprintln!(
            "warning: --threads {} exceeds the {available} available core(s); \
             workers will time-share (output is unaffected)",
            params.threads
        );
    }
    eprintln!(
        "benching sizes {:?} × 4032 bins, {} repeat(s), seed {}, {} thread(s)…",
        params.sizes,
        params.repeats,
        params.seed,
        towerlens_par::resolve_threads(params.threads)
    );
    let started = std::time::Instant::now();
    let mut report = match run_bench(&params) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench failed: {e}");
            std::process::exit(1);
        }
    };
    if query {
        query_params.seed = params.seed;
        query_params.threads = params.threads;
        eprintln!(
            "query workload: building a {}-tower snapshot, then {} mixed requests…",
            query_params.towers, query_params.requests
        );
        match run_query_bench(&query_params) {
            Ok((q, over)) => {
                eprintln!(
                    "  query: {} requests over {} towers in {:.1} ms — {:.0} requests/s",
                    q.requests, q.towers, q.total_ms, q.throughput_qps
                );
                eprintln!(
                    "  allocations: {} heap acquisitions during the batch ({:.2} per \
                     request; per-worker scratch keeps request staging allocation-free, \
                     so the residue is answer strings)",
                    q.allocations,
                    q.allocations as f64 / q.requests.max(1) as f64
                );
                eprintln!(
                    "  overload (budget {}): shed {} of {} in {:.1} ms — {:.0} requests/s",
                    over.request_budget,
                    over.shed,
                    over.requests,
                    over.total_ms,
                    over.throughput_qps
                );
                report.query = Some(q);
                report.query_overload = Some(over);
            }
            Err(e) => {
                eprintln!("query bench failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if cluster {
        cluster_params.seed = params.seed;
        eprintln!(
            "cluster-index workload: full dendrogram over {} 6-dim points…",
            cluster_params.points
        );
        match run_cluster_bench(&cluster_params) {
            Ok(c) => {
                eprintln!(
                    "  cluster-index: {} points in {:.1} ms — {} kernel evaluations, \
                     {} nodes visited, {} subtrees pruned",
                    c.points, c.wall_ms, c.leaf_evaluations, c.nodes_visited, c.pruned_subtrees
                );
                report.cluster_index = Some(c);
            }
            Err(e) => {
                eprintln!("cluster-index bench failed: {e}");
                std::process::exit(1);
            }
        }
    }
    // With a non-serial thread setting, a single-thread reference pass
    // turns the table into a speedup report. The reference is never
    // written out — the emitted JSON describes the requested setting.
    let serial = (towerlens_par::resolve_threads(params.threads) != 1)
        .then(|| {
            let reference = BenchParams {
                threads: 1,
                ..params.clone()
            };
            match run_bench(&reference) {
                Ok(r) => Some(r),
                Err(e) => {
                    eprintln!("warning: single-thread reference pass failed: {e}");
                    None
                }
            }
        })
        .flatten();
    for (i, w) in report.workloads.iter().enumerate() {
        let speedup = serial
            .as_ref()
            .and_then(|s| s.workloads.get(i))
            .map(|s| {
                format!(
                    ", {:>5.2}x vs 1 thread",
                    s.total_median_ms / w.total_median_ms
                )
            })
            .unwrap_or_default();
        eprintln!(
            "  {:>6} towers: median {:>9.1} ms, p95 {:>9.1} ms, {:>12.0} cells/s{speedup}",
            w.towers, w.total_median_ms, w.total_p95_ms, w.throughput_cells_per_s
        );
    }
    let json = report.to_json();
    if let Err(e) = validate_bench_json(&json) {
        eprintln!("emitted JSON failed self-validation: {e}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_file, &json) {
        eprintln!("failed to write {out_file}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {out_file} (rev {}) in {:.1}s",
        report.git_rev,
        started.elapsed().as_secs_f64()
    );
}
