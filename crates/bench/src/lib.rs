//! # towerlens-bench
//!
//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation as text artefacts, plus the Criterion benchmark
//! suite for the performance ablations listed in DESIGN.md.
//!
//! The `repro` binary (`cargo run -p towerlens-bench --bin repro --release`)
//! drives [`experiments`]; each experiment is a pure function from a
//! [`towerlens_core::StudyReport`] to a `String`, so the library can be
//! tested without capturing stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod alloc;
pub mod experiments;
pub mod json;
pub mod perf;
pub mod table;

use std::path::Path;

use towerlens_core::{CheckpointStore, RunReport, Study, StudyConfig, StudyReport};

/// The scales the harness can run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 120 towers, 1 week — smoke test.
    Tiny,
    /// 600 towers, 2 weeks.
    Small,
    /// 2,400 towers, 4 weeks (default).
    Medium,
    /// 9,600 towers, 4 weeks — the paper's scale.
    Paper,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The study configuration for this scale.
    pub fn config(self, seed: u64) -> StudyConfig {
        match self {
            Scale::Tiny => StudyConfig::tiny(seed),
            Scale::Small => StudyConfig::small(seed),
            Scale::Medium => StudyConfig::medium(seed),
            Scale::Paper => StudyConfig::paper_scale(seed),
        }
    }
}

/// Runs the study once for a scale/seed (the repro binary shares one
/// report across all requested experiments).
///
/// # Errors
/// Propagates the study's [`towerlens_core::CoreError`].
pub fn run_study(scale: Scale, seed: u64) -> Result<StudyReport, towerlens_core::CoreError> {
    Study::new(scale.config(seed)).run()
}

/// As [`run_study`], but returns the per-stage instrumentation and,
/// with `resume`, persists/reloads the expensive stages (generation,
/// synthesis, vectorization, clustering) in that directory.
///
/// # Errors
/// Study and checkpoint failures as [`towerlens_core::CoreError`].
pub fn run_study_instrumented(
    scale: Scale,
    seed: u64,
    resume: Option<&Path>,
) -> Result<(StudyReport, RunReport), towerlens_core::CoreError> {
    let study = Study::new(scale.config(seed));
    let store = match resume {
        Some(dir) => Some(
            CheckpointStore::open(dir, study.checkpoint_fingerprint())
                .map_err(towerlens_core::EngineError::from)?,
        ),
        None => None,
    };
    study.run_instrumented(store.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("galactic"), None);
    }

    #[test]
    fn configs_scale_tower_counts() {
        assert_eq!(Scale::Tiny.config(1).city.n_towers, 120);
        assert_eq!(Scale::Paper.config(1).city.n_towers, 9_600);
    }
}
