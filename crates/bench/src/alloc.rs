//! Heap-allocation counting hooks for the `bench` binary.
//!
//! The library forbids `unsafe`, so the counting [`GlobalAlloc`]
//! wrapper itself lives in `bin/bench.rs` (a separate crate that may
//! use `unsafe`); it reports every allocation call here through
//! [`record`]. Library code reads the running total with [`calls`]
//! and differences it around a timed region — when the counting
//! allocator is not installed (unit tests, the `repro` binary) the
//! total stays `0` and every delta is `0`, which reports honestly as
//! "not measured" rather than a fake count.
//!
//! Only allocation-side calls (`alloc`, `alloc_zeroed`, `realloc`)
//! are counted; frees are not, so the delta over a region is the
//! number of fresh heap acquisitions the region performed. That is
//! the quantity the per-worker scratch reuse in the query batch path
//! is meant to drive toward zero.
//!
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

use std::sync::atomic::{AtomicU64, Ordering};

static CALLS: AtomicU64 = AtomicU64::new(0);

/// Records one allocation call. Called from the bench binary's global
/// allocator on every `alloc`/`alloc_zeroed`/`realloc`; must never
/// allocate itself (a relaxed atomic increment does not).
#[inline]
pub fn record() {
    CALLS.fetch_add(1, Ordering::Relaxed);
}

/// The process-lifetime allocation-call total. `0` forever unless the
/// counting allocator is installed. Difference two reads to count the
/// allocations of a region.
#[inline]
#[must_use]
pub fn calls() -> u64 {
    CALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_advances_the_total() {
        // The counting allocator is not installed under `cargo test`,
        // so the counter only moves when we move it.
        let before = calls();
        record();
        record();
        assert_eq!(calls() - before, 2);
    }
}
