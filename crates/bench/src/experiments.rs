//! One function per paper artefact (table/figure). Each takes the
//! shared [`StudyReport`] and renders a text artefact that mirrors the
//! quantity the paper plots, prefixed with the paper's claim so the
//! output is self-describing (EXPERIMENTS.md is assembled from these).

use towerlens_city::density::DensityGrid;
use towerlens_city::zone::{PoiKind, RegionKind};
use towerlens_core::decompose::{min_rank_consistency, time_domain_combination, Decomposer};
use towerlens_core::freq::{amplitude_variance, principal_bins, reconstruct_principal};
use towerlens_core::timedomain::{daily_profiles, double_peaks, lag_hours, profile_correlation};
use towerlens_core::{CoreError, StudyReport};
use towerlens_dsp::normalize::{by_max, to_shares};
use towerlens_dsp::spectrum::Spectrum;
use towerlens_dsp::stats::{variance, Ecdf};
use towerlens_opt::simplex::Solver;
use towerlens_trace::time::BINS_PER_DAY;

use crate::table::{hhmm, num, strip, TextTable};

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 22] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table1", "fig7", "table2", "fig8", "table3",
    "fig10", "table4", "table5", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "table6",
];

/// Dispatches one experiment by id (`fig18_19` is an alias for
/// [`table6`], which renders the Fig 18/19 companions too).
///
/// # Errors
/// Unknown ids yield [`CoreError::UnknownExperiment`]; analysis
/// errors propagate.
pub fn run(id: &str, report: &StudyReport) -> Result<String, CoreError> {
    match id {
        "fig1" => fig1(report),
        "fig2" => fig2(report),
        "fig3" => fig3(report),
        "fig4" => fig4(report),
        "fig5" => fig5(report),
        "fig6" => fig6(report),
        "table1" => table1(report),
        "fig7" => fig7(report),
        "table2" => table2(report),
        "fig8" => fig8(report),
        "table3" | "fig9" => table3(report),
        "fig10" => fig10(report),
        "table4" => table4(report),
        "table5" => table5(report),
        "fig11" => fig11(report),
        "fig12" => fig12(report),
        "fig13" => fig13(report),
        "fig14" => fig14(report),
        "fig15" => fig15(report),
        "fig16" => fig16(report),
        "fig17" => fig17(report),
        "table6" | "fig18_19" | "fig18" | "fig19" => table6(report),
        _ => Err(CoreError::UnknownExperiment { id: id.to_string() }),
    }
}

/// Clusters ordered for display: pure patterns in canonical order,
/// then comprehensive, then anything else.
fn display_order(report: &StudyReport) -> Vec<(usize, RegionKind)> {
    let mut order: Vec<(usize, RegionKind)> =
        report.geo.labels.iter().copied().enumerate().collect();
    order.sort_by_key(|&(c, kind)| (kind.index(), c));
    order
}

fn header(title: &str, claim: &str) -> String {
    format!("## {title}\nPaper: {claim}\n\n")
}

/// Fig 1: temporal distribution of aggregate traffic (hourly within a
/// day, daily within a week, weekly within the window).
pub fn fig1(report: &StudyReport) -> Result<String, CoreError> {
    let total = report.total_series();
    let mut out = header(
        "Fig 1 — temporal distribution of cellular traffic",
        "two daily peaks (~noon, ~22:00); night valley; weekend dip on weekly scale",
    );
    // (a) one day, Thursday of week 1.
    let day = 3;
    let day_series = &total[day * BINS_PER_DAY..(day + 1) * BINS_PER_DAY];
    out.push_str("(a) one day (Thu), 10-min bins  [00:00 → 24:00]\n");
    out.push_str(&format!("    {}\n", strip(day_series, 72)));
    let (peak_bin, _) = towerlens_dsp::stats::argmax(day_series).expect("non-empty");
    out.push_str(&format!(
        "    day peak at {}\n",
        hhmm(report.window.time_of_day(peak_bin))
    ));
    // (b) one week.
    let week = &total[..(7 * BINS_PER_DAY).min(total.len())];
    out.push_str("(b) one week (Mon..Sun)\n");
    out.push_str(&format!("    {}\n", strip(week, 84)));
    // (c) whole window, daily totals.
    let days = total.len() / BINS_PER_DAY;
    let daily: Vec<f64> = (0..days)
        .map(|d| total[d * BINS_PER_DAY..(d + 1) * BINS_PER_DAY].iter().sum())
        .collect();
    let mut t = TextTable::new(vec!["day", "dow", "traffic (bytes)"]);
    for (d, v) in daily.iter().enumerate() {
        let dow = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][d % 7];
        t.row(vec![format!("{d}"), dow.to_string(), num(*v)]);
    }
    out.push_str("(c) daily totals over the window\n");
    out.push_str(&t.render());
    // Weekend dip check.
    let wd: f64 = daily
        .iter()
        .enumerate()
        .filter(|(d, _)| d % 7 < 5)
        .map(|(_, v)| v)
        .sum::<f64>()
        / daily.iter().enumerate().filter(|(d, _)| d % 7 < 5).count() as f64;
    let we: f64 = daily
        .iter()
        .enumerate()
        .filter(|(d, _)| d % 7 >= 5)
        .map(|(_, v)| v)
        .sum::<f64>()
        / daily
            .iter()
            .enumerate()
            .filter(|(d, _)| d % 7 >= 5)
            .count()
            .max(1) as f64;
    out.push_str(&format!(
        "measured: avg weekday/weekend daily traffic ratio = {}\n",
        num(wd / we)
    ));
    Ok(out)
}

/// Fig 2: spatial traffic density at 4AM / 10AM / 4PM / 10PM.
pub fn fig2(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 2 — spatial distribution of traffic density",
        "city centre hot at all hours; whole city dark at 4AM, bright at 10AM",
    );
    let day = 3; // Thursday
    let mut centre_vals = Vec::new();
    for &hour in &[4usize, 10, 16, 22] {
        let bin = day * BINS_PER_DAY + hour * 6;
        let mut grid = DensityGrid::new(*report.city.bounds(), 56, 24);
        for (id, row) in report.raw.iter().enumerate() {
            grid.add(&report.city.towers()[id].position, row[bin]);
        }
        out.push_str(&format!(
            "{:02}:00 (total {} bytes/10min)\n{}\n",
            hour,
            num(grid.total()),
            grid.ascii_heatmap("")
        ));
        // Centre cell intensity for the claim check.
        if let Some((c, r)) = grid.cell_of(&report.city.center()) {
            centre_vals.push(grid.get(c, r));
        }
    }
    out.push_str(&format!(
        "measured: centre-cell traffic by snapshot (04,10,16,22) = [{}]\n",
        centre_vals
            .iter()
            .map(|v| num(*v))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    Ok(out)
}

/// Average weekday day-profile of one tower, normalised by max.
fn tower_day_profile(report: &StudyReport, tower_id: usize) -> Result<Vec<f64>, CoreError> {
    let (wd, _) = daily_profiles(&report.raw[tower_id], &report.window)?;
    by_max(&wd).map_err(CoreError::from)
}

/// Fig 3: normalised traffic of towers in residential area vs business
/// district.
pub fn fig3(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 3 — residential vs business-district towers",
        "residential: two peaks, high across night; business: single midday peak, ~zero at night",
    );
    for (kind, label) in [
        (RegionKind::Resident, "residential area"),
        (RegionKind::Office, "business district"),
    ] {
        out.push_str(&format!("{label}:\n"));
        let ids = report.city.towers_of_kind(kind);
        for &id in ids.iter().take(4) {
            let profile = tower_day_profile(report, id)?;
            out.push_str(&format!("  tower {id:5}  {}\n", strip(&profile, 72)));
        }
    }
    // Night level comparison (23:00–24:00 mean of normalised profile).
    let night = |kind: RegionKind| -> Result<f64, CoreError> {
        let ids = report.city.towers_of_kind(kind);
        let mut acc = 0.0;
        let mut n = 0;
        for &id in ids.iter().take(8) {
            let p = tower_day_profile(report, id)?;
            acc += p[138..144].iter().sum::<f64>() / 6.0;
            n += 1;
        }
        Ok(acc / n.max(1) as f64)
    };
    out.push_str(&format!(
        "measured: normalised 23:00-24:00 level — residential {}, business {}\n",
        num(night(RegionKind::Resident)?),
        num(night(RegionKind::Office)?)
    ));
    Ok(out)
}

/// Fig 4: towers sampled across latitudes — large peak-hour variance.
pub fn fig4(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 4 — towers sampled across latitudes/longitudes",
        "peak hours vary wildly across towers (variance ≈ 10 h across the sample)",
    );
    let mut ids: Vec<usize> = (0..report.city.towers().len()).collect();
    ids.sort_by(|&a, &b| {
        report.city.towers()[a]
            .position
            .lat
            .partial_cmp(&report.city.towers()[b].position.lat)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let step = (ids.len() / 40).max(1);
    let sample: Vec<usize> = ids.iter().step_by(step).take(40).copied().collect();
    let mut peak_hours = Vec::new();
    out.push_str("south → north, one row per tower (avg weekday, normalised)\n");
    for &id in &sample {
        let profile = tower_day_profile(report, id)?;
        let (peak_bin, _) = towerlens_dsp::stats::argmax(&profile).expect("non-empty");
        peak_hours.push(peak_bin as f64 / 6.0);
        out.push_str(&format!(
            "  {:8.4}  {}\n",
            report.city.towers()[id].position.lat,
            strip(&profile, 72)
        ));
    }
    let var = variance(&peak_hours).unwrap_or(0.0);
    out.push_str(&format!(
        "measured: peak-hour spread across sample — variance {} h², std {} h\n",
        num(var),
        num(var.sqrt())
    ));
    Ok(out)
}

/// Fig 5: the same strips restricted to residential / business towers
/// — regular stripes.
pub fn fig5(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 5 — single-kind towers across latitudes",
        "within one functional kind the profiles are regular and mutually similar",
    );
    for (kind, label) in [
        (RegionKind::Resident, "residential"),
        (RegionKind::Office, "business"),
    ] {
        let mut ids = report.city.towers_of_kind(kind);
        ids.sort_by(|&a, &b| {
            report.city.towers()[a]
                .position
                .lat
                .partial_cmp(&report.city.towers()[b].position.lat)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let step = (ids.len() / 20).max(1);
        out.push_str(&format!("{label} towers (south → north):\n"));
        let mut peaks = Vec::new();
        for &id in ids.iter().step_by(step).take(20) {
            let profile = tower_day_profile(report, id)?;
            let (peak_bin, _) = towerlens_dsp::stats::argmax(&profile).expect("non-empty");
            peaks.push(peak_bin as f64 / 6.0);
            out.push_str(&format!("  {}\n", strip(&profile, 72)));
        }
        out.push_str(&format!(
            "  peak-hour std within kind: {} h\n",
            num(variance(&peaks).unwrap_or(0.0).sqrt())
        ));
    }
    Ok(out)
}

/// Fig 6: DBI curve, per-cluster distance CDFs, and the five pattern
/// profiles.
pub fn fig6(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 6 — identified patterns, DBI variation, distance CDFs",
        "DBI minimised at 5 clusters (threshold 16.33 in the paper's data); \
         ~80% of members within distance 10 of their centroid; five distinct profiles",
    );
    let mut t = TextTable::new(vec!["k", "threshold", "DBI"]);
    for p in &report.patterns.dbi_curve {
        let marker = if p.k == report.patterns.k {
            " <- min"
        } else {
            ""
        };
        t.row(vec![
            format!("{}{}", p.k, marker),
            num(p.threshold),
            num(p.dbi),
        ]);
    }
    out.push_str("(a) DBI vs cluster count\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "selected k = {}, stop threshold = {}\n\n",
        report.patterns.k,
        num(report.patterns.threshold)
    ));

    out.push_str("(b) member→centroid distance CDF quantiles\n");
    let mut t = TextTable::new(vec!["cluster", "label", "p50", "p80", "p95"]);
    for (c, kind) in display_order(report) {
        let ecdf = Ecdf::new(&report.patterns.member_distances[c]);
        t.row(vec![
            format!("#{c}"),
            kind.label().to_string(),
            num(ecdf.inverse(0.5).unwrap_or(0.0)),
            num(ecdf.inverse(0.8).unwrap_or(0.0)),
            num(ecdf.inverse(0.95).unwrap_or(0.0)),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(c-g) cluster centroid profiles (first 7 days, z-scored)\n");
    for (c, kind) in display_order(report) {
        let profile = &report.patterns.centroids[c];
        let week = &profile[..(7 * BINS_PER_DAY).min(profile.len())];
        out.push_str(&format!(
            "  #{c} {:<13} {}\n",
            kind.label(),
            strip(week, 84)
        ));
    }
    Ok(out)
}

/// Table 1: percentage of towers per cluster.
pub fn table1(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Table 1 — share of towers per cluster",
        "resident 17.55%, transport 2.58%, office 45.72%, entertainment 9.35%, comprehensive 24.81%",
    );
    let shares = report.patterns.clustering.shares();
    let sizes = report.patterns.clustering.sizes();
    let mut t = TextTable::new(vec!["cluster", "functional region", "towers", "share"]);
    for (c, kind) in display_order(report) {
        t.row(vec![
            format!("{}", c + 1),
            kind.label().to_string(),
            format!("{}", sizes[c]),
            format!("{:.2}%", shares[c] * 100.0),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Fig 7: geographic density of each cluster + hotspots A–E.
pub fn fig7(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 7 — geographic distribution of the five patterns",
        "office dense downtown, resident on the outskirts, transport on corridors, \
         entertainment near the centre, comprehensive uniform",
    );
    let names = ["A", "B", "C", "D", "E"];
    for (display_idx, (c, kind)) in display_order(report).into_iter().enumerate() {
        let mut grid = DensityGrid::new(*report.city.bounds(), 56, 20);
        for (i, &label) in report.patterns.clustering.labels.iter().enumerate() {
            if label == c {
                grid.add(&report.city.towers()[report.kept_ids[i]].position, 1.0);
            }
        }
        let hotspot = report.geo.hotspots[c];
        out.push_str(&format!(
            "#{c} {} — hotspot {} at ({:.4}, {:.4})\n{}\n",
            kind.label(),
            names.get(display_idx).unwrap_or(&"?"),
            hotspot.lon,
            hotspot.lat,
            grid.ascii_heatmap("")
        ));
        // Mean distance from centre as the compactness measure.
        let ids: Vec<usize> = report
            .patterns
            .clustering
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| report.kept_ids[i])
            .collect();
        let mean_r = ids
            .iter()
            .map(|&id| {
                report.city.towers()[id]
                    .position
                    .distance_m(&report.city.center())
            })
            .sum::<f64>()
            / ids.len().max(1) as f64;
        out.push_str(&format!(
            "  mean distance from city centre: {:.1} km\n",
            mean_r / 1000.0
        ));
    }
    Ok(out)
}

/// Table 2: POI distribution at the chosen (hotspot) points.
pub fn table2(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Table 2 — POI counts within 200 m of each cluster's hotspot",
        "A: resident-dominated; B: relatively transport-heavy; C: office ≫ rest; \
         D: entertainment ≫ rest; E: mixed",
    );
    let names = ["A", "B", "C", "D", "E"];
    let mut t = TextTable::new(vec![
        "point",
        "cluster",
        "Resident",
        "Transport",
        "Office",
        "Entertain",
    ]);
    for (display_idx, (c, kind)) in display_order(report).into_iter().enumerate() {
        let poi = report.geo.hotspot_poi[c];
        t.row(vec![
            names.get(display_idx).unwrap_or(&"?").to_string(),
            kind.label().to_string(),
            poi[0].to_string(),
            poi[1].to_string(),
            poi[2].to_string(),
            poi[3].to_string(),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Fig 8: case-study windows — do tower labels match the zone map?
pub fn fig8(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 8 — case-study validation of labels",
        "tower labels match the coloured functional regions of the sampled areas",
    );
    // Window A around the resident hotspot, window B around office.
    for (name, kind) in [("A", RegionKind::Resident), ("B", RegionKind::Office)] {
        let Some(c) = report.cluster_of(kind) else {
            continue;
        };
        let center = report.geo.hotspots[c];
        let (zones, towers) = report.city.window(&center, 2_500.0);
        let mut matches = 0usize;
        let mut total = 0usize;
        for t in &towers {
            // The label assigned by the pipeline to this tower, if
            // it was analysed.
            let Some(vec_idx) = report.kept_ids.iter().position(|&id| id == t.id) else {
                continue;
            };
            let cluster = report.patterns.clustering.labels[vec_idx];
            let label = report.geo.labels[cluster];
            total += 1;
            if label == t.kind_truth {
                matches += 1;
            }
        }
        out.push_str(&format!(
            "area {name} (around the {} hotspot): {} zones, {} towers, \
             label/ground-truth agreement {}/{} = {:.1}%\n",
            kind.label(),
            zones.len(),
            towers.len(),
            matches,
            total,
            100.0 * matches as f64 / total.max(1) as f64
        ));
        out.push_str(&case_study_map(report, &center, 2_500.0));
        out.push('\n');
    }
    out.push_str(&format!(
        "city-wide agreement: {:.1}%\n",
        report.geo.ground_truth_agreement * 100.0
    ));
    Ok(out)
}

/// Renders a Fig 8-style map: lowercase letters are the ground-truth
/// zone kinds colouring the area (r/t/o/e/c), uppercase letters are the
/// towers with their *assigned* cluster labels — visual agreement means
/// matching case pairs.
fn case_study_map(
    report: &StudyReport,
    center: &towerlens_city::geo::GeoPoint,
    half_extent_m: f64,
) -> String {
    const COLS: usize = 56;
    const ROWS: usize = 16;
    let kind_char = |k: RegionKind| match k {
        RegionKind::Resident => 'r',
        RegionKind::Transport => 't',
        RegionKind::Office => 'o',
        RegionKind::Entertainment => 'e',
        RegionKind::Comprehensive => 'c',
    };
    let mut grid = vec![['.'; COLS]; ROWS];
    // Paint zones (nearest zone kind per cell within its radius).
    let (zones, _) = report.city.window(center, half_extent_m * 1.2);
    for (row_idx, row) in grid.iter_mut().enumerate() {
        for (col_idx, cell) in row.iter_mut().enumerate() {
            let dx = (col_idx as f64 / (COLS - 1) as f64) * 2.0 - 1.0;
            let dy = (row_idx as f64 / (ROWS - 1) as f64) * 2.0 - 1.0;
            let p = center.offset_m(dx * half_extent_m, -dy * half_extent_m);
            let mut best: Option<(f64, RegionKind)> = None;
            for z in &zones {
                let d = z.center.distance_m(&p);
                if d <= z.radius_m {
                    match best {
                        Some((bd, _)) if bd <= d => {}
                        _ => best = Some((d, z.kind)),
                    }
                }
            }
            if let Some((_, k)) = best {
                *cell = kind_char(k);
            }
        }
    }
    // Overlay towers with their assigned labels (uppercase).
    for (i, &label) in report.patterns.clustering.labels.iter().enumerate() {
        let t = &report.city.towers()[report.kept_ids[i]];
        let dx_m = {
            let east = towerlens_city::geo::GeoPoint::new(t.position.lon, center.lat);
            let sign = if t.position.lon >= center.lon {
                1.0
            } else {
                -1.0
            };
            sign * east.distance_m(&towerlens_city::geo::GeoPoint::new(center.lon, center.lat))
        };
        let dy_m = {
            let north = towerlens_city::geo::GeoPoint::new(center.lon, t.position.lat);
            let sign = if t.position.lat >= center.lat {
                1.0
            } else {
                -1.0
            };
            sign * north.distance_m(&towerlens_city::geo::GeoPoint::new(center.lon, center.lat))
        };
        if dx_m.abs() > half_extent_m || dy_m.abs() > half_extent_m {
            continue;
        }
        let col = (((dx_m / half_extent_m) + 1.0) / 2.0 * (COLS - 1) as f64).round() as usize;
        let row =
            ((1.0 - ((dy_m / half_extent_m) + 1.0) / 2.0) * (ROWS - 1) as f64).round() as usize;
        let c = kind_char(report.geo.labels[label]).to_ascii_uppercase();
        grid[row.min(ROWS - 1)][col.min(COLS - 1)] = c;
    }
    let mut out = String::from("  map: lowercase = ground-truth zones, UPPERCASE = tower labels\n");
    for row in grid {
        out.push_str("  ");
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Table 3 (+ Fig 9): averaged normalised POI per cluster.
pub fn table3(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Table 3 / Fig 9 — averaged min-max-normalised POI of the clusters",
        "each pure cluster is dominated by its own POI type (transport 44% of its area's \
         POI share, entertainment 39%); comprehensive has no dominant type",
    );
    let mut t = TextTable::new(vec![
        "cluster",
        "label",
        "Resident",
        "Transport",
        "Office",
        "Entertain",
        "dominant",
    ]);
    for (c, kind) in display_order(report) {
        let profile = report.geo.poi_profiles[c];
        let shares = to_shares(&profile);
        let dominant = (0..4)
            .max_by(|&a, &b| shares[a].partial_cmp(&shares[b]).unwrap())
            .map(|i| PoiKind::ALL[i].label())
            .unwrap_or("-");
        t.row(vec![
            format!("#{c}"),
            kind.label().to_string(),
            format!("{} ({:.0}%)", num(profile[0]), shares[0] * 100.0),
            format!("{} ({:.0}%)", num(profile[1]), shares[1] * 100.0),
            format!("{} ({:.0}%)", num(profile[2]), shares[2] * 100.0),
            format!("{} ({:.0}%)", num(profile[3]), shares[3] * 100.0),
            dominant.to_string(),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Fig 10: weekday/weekend amount ratio and peak-valley ratios.
pub fn fig10(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 10 — weekday/weekend amount ratio & peak-valley ratio",
        "amount ratio ≈ 1 for resident/entertainment/comprehensive, 1.49 transport, \
         1.79 office; transport has by far the largest peak-valley ratio",
    );
    let mut t = TextTable::new(vec![
        "cluster",
        "label",
        "wd/we amount",
        "P/V weekday",
        "P/V weekend",
    ]);
    for (c, kind) in display_order(report) {
        let st = &report.time_stats[c];
        t.row(vec![
            format!("#{c}"),
            kind.label().to_string(),
            num(st.weekday_weekend_ratio),
            num(st.weekday.peak_valley_ratio),
            num(st.weekend.peak_valley_ratio),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Table 4: peak-valley features.
pub fn table4(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Table 4 — peak/valley traffic per cluster",
        "transport: smallest absolute traffic but highest P/V ratio (133 wd / 115 we); \
         resident & comprehensive: flattest (≈9-10)",
    );
    let mut t = TextTable::new(vec![
        "cluster", "label", "wd max", "wd min", "wd P/V", "we max", "we min", "we P/V",
    ]);
    for (c, kind) in display_order(report) {
        let st = &report.time_stats[c];
        t.row(vec![
            format!("#{c}"),
            kind.label().to_string(),
            num(st.weekday.max_traffic),
            num(st.weekday.min_traffic),
            num(st.weekday.peak_valley_ratio),
            num(st.weekend.max_traffic),
            num(st.weekend.min_traffic),
            num(st.weekend.peak_valley_ratio),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Table 5: times of peak and valley.
pub fn table5(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Table 5 — time of traffic peak and valley",
        "valley always 4:00-5:00; resident peak 21:30; transport 8:00 & 18:00 (weekday); \
         office 10:30 wd / 12:00 we; entertainment 18:00 wd / 12:30 we",
    );
    let mut t = TextTable::new(vec![
        "cluster",
        "label",
        "wd peak",
        "we peak",
        "wd valley",
        "we valley",
    ]);
    for (c, kind) in display_order(report) {
        let st = &report.time_stats[c];
        t.row(vec![
            format!("#{c}"),
            kind.label().to_string(),
            hhmm(st.weekday.peak_time),
            hhmm(st.weekend.peak_time),
            hhmm(st.weekday.valley_time),
            hhmm(st.weekend.valley_time),
        ]);
    }
    out.push_str(&t.render());
    // Transport's double peaks.
    if let Some(c) = report.cluster_of(RegionKind::Transport) {
        if let Some((m, e)) = double_peaks(&report.time_stats[c].weekday_profile, &report.window) {
            out.push_str(&format!(
                "transport weekday double peaks: {} and {}\n",
                hhmm(m),
                hhmm(e)
            ));
        }
    }
    Ok(out)
}

/// Fig 11: interrelationships between the patterns.
pub fn fig11(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 11 — interrelationships between patterns",
        "resident peak ≈ 3 h after transport's evening peak; office peak lies between \
         transport's two peaks; comprehensive ≈ average of all towers",
    );
    let get = |kind: RegionKind| -> Option<usize> { report.cluster_of(kind) };
    if let (Some(r), Some(t_), Some(o)) = (
        get(RegionKind::Resident),
        get(RegionKind::Transport),
        get(RegionKind::Office),
    ) {
        let transport_wd = &report.time_stats[t_].weekday_profile;
        if let Some((morning, evening)) = double_peaks(transport_wd, &report.window) {
            let res_peak = report.time_stats[r].weekday.peak_time;
            let off_peak = report.time_stats[o].weekday.peak_time;
            out.push_str(&format!(
                "transport peaks {} / {}; resident peak {} (lag after evening rush: {} h); \
                 office peak {} ({})\n",
                hhmm(morning),
                hhmm(evening),
                hhmm(res_peak),
                num(lag_hours(evening, res_peak)),
                hhmm(off_peak),
                if lag_hours(morning, off_peak) > 0.0 && lag_hours(off_peak, evening) > 0.0 {
                    "between the two rushes"
                } else {
                    "NOT between the rushes"
                }
            ));
        }
    }
    if let Some(comp) = get(RegionKind::Comprehensive) {
        let total = report.total_series();
        let r = profile_correlation(&report.cluster_series[comp], &total).unwrap_or(0.0);
        out.push_str(&format!(
            "correlation(comprehensive aggregate, all-tower aggregate) = {}\n",
            num(r)
        ));
    }
    Ok(out)
}

/// Fig 12: DFT of the aggregate traffic + sparse reconstruction.
pub fn fig12(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 12 — DFT of aggregate traffic and 3-component reconstruction",
        "spectral lines exactly at k = weeks (4), 7·weeks (28), 14·weeks (56); \
         reconstruction from those + DC loses < 6% energy",
    );
    let total = report.total_series();
    let summary = reconstruct_principal(&total, &report.window)?;
    let spectrum = Spectrum::of(&total)?;
    let mut t = TextTable::new(vec!["k", "interpretation", "|X[k]|"]);
    let [kw, kd, kh] = summary.bins;
    for (k, what) in [(kw, "one week"), (kd, "one day"), (kh, "half a day")] {
        t.row(vec![
            k.to_string(),
            what.to_string(),
            num(spectrum.amplitude(k)?),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "dominant bins found: {:?} (expected {:?})\n",
        summary.dominant, summary.bins
    ));
    out.push_str(&format!(
        "lost energy fraction: {:.3}% (paper: < 6%)\n",
        summary.lost_energy * 100.0
    ));
    out.push_str("original      ");
    out.push_str(&strip(&total[..BINS_PER_DAY * 7], 72));
    out.push_str("\nreconstructed ");
    out.push_str(&strip(&summary.reconstructed[..BINS_PER_DAY * 7], 72));
    out.push('\n');
    Ok(out)
}

/// Fig 13: variance of DFT amplitude across towers.
pub fn fig13(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 13 — variance of frequency components across towers",
        "the three principal components carry the largest cross-tower variance",
    );
    let var = amplitude_variance(&report.vectors)?;
    let [kw, kd, kh] = principal_bins(&report.window)?;
    let half = var.len() / 2;
    let mut idx: Vec<usize> = (1..=half).collect();
    idx.sort_by(|&a, &b| {
        var[b]
            .partial_cmp(&var[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut t = TextTable::new(vec!["rank", "k", "variance", "principal?"]);
    for (rank, &k) in idx.iter().take(8).enumerate() {
        let mark = if k == kw {
            "week"
        } else if k == kd {
            "day"
        } else if k == kh {
            "half-day"
        } else {
            ""
        };
        t.row(vec![
            format!("{}", rank + 1),
            k.to_string(),
            num(var[k]),
            mark.to_string(),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Fig 14: per-pattern reconstruction from the three components.
pub fn fig14(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 14 — reconstructed aggregate traffic of the four primary patterns",
        "reconstruction tracks the original closely for every pattern; spectra differ \
         most at the three principal components",
    );
    let mut t = TextTable::new(vec!["cluster", "label", "lost energy %", "dominant bins"]);
    for (c, kind) in display_order(report) {
        if kind == RegionKind::Comprehensive {
            continue;
        }
        let summary = reconstruct_principal(&report.cluster_series[c], &report.window)?;
        t.row(vec![
            format!("#{c}"),
            kind.label().to_string(),
            format!("{:.2}", summary.lost_energy * 100.0),
            format!("{:?}", summary.dominant),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Fig 15: amplitude/phase scatter of the three components.
pub fn fig15(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 15 — amplitude-phase distribution per cluster",
        "k=week: office strongest, phase ~π from resident/entertainment; k=day: phase \
         transitions resident → comprehensive/transport → office; k=half-day: transport \
         has the largest amplitude",
    );
    type FeatureGetter = fn(&towerlens_core::freq::TowerFeatures) -> (f64, f64);
    let comps: [(&str, FeatureGetter); 3] = [
        ("one week", |f| (f.amp_week, f.phase_week)),
        ("one day", |f| (f.amp_day, f.phase_day)),
        ("half a day", |f| (f.amp_half, f.phase_half)),
    ];
    for (name, get) in comps {
        out.push_str(&format!("component: {name}\n"));
        let mut t = TextTable::new(vec![
            "cluster",
            "label",
            "amp p10",
            "amp p90",
            "phase p10",
            "phase p90",
        ]);
        for (c, kind) in display_order(report) {
            let members: Vec<(f64, f64)> = report
                .features
                .iter()
                .zip(&report.patterns.clustering.labels)
                .filter(|(_, &l)| l == c)
                .map(|(f, _)| get(f))
                .collect();
            let amps: Vec<f64> = members.iter().map(|m| m.0).collect();
            let phases: Vec<f64> = members.iter().map(|m| m.1).collect();
            let ea = Ecdf::new(&amps);
            let ep = Ecdf::new(&phases);
            t.row(vec![
                format!("#{c}"),
                kind.label().to_string(),
                num(ea.inverse(0.1).unwrap_or(0.0)),
                num(ea.inverse(0.9).unwrap_or(0.0)),
                num(ep.inverse(0.1).unwrap_or(0.0)),
                num(ep.inverse(0.9).unwrap_or(0.0)),
            ]);
        }
        out.push_str(&t.render());
    }
    Ok(out)
}

/// Fig 16: means and standard deviations of amplitude & phase.
pub fn fig16(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 16 — mean ± std of amplitude and phase per cluster",
        "office: max weekly amplitude; daily phases increase along resident → transport \
         → office; transport: max half-day amplitude",
    );
    for (ci, name) in [(0usize, "one week"), (1, "one day"), (2, "half a day")] {
        out.push_str(&format!("component: {name}\n"));
        let mut t = TextTable::new(vec![
            "cluster",
            "label",
            "amp mean",
            "amp std",
            "phase mean",
            "phase std",
        ]);
        for (c, kind) in display_order(report) {
            let s = report.feature_stats[c][ci];
            t.row(vec![
                format!("#{c}"),
                kind.label().to_string(),
                num(s.amp_mean),
                num(s.amp_std),
                s.phase_mean.map(num).unwrap_or_else(|| "-".into()),
                s.phase_std.map(num).unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&t.render());
    }
    Ok(out)
}

/// Fig 17: the feature polygon spanned by the four representative
/// towers.
pub fn fig17(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Fig 17 — towers live in the polygon of the four representative towers",
        "every tower's (A_day, P_day, A_half) feature is (approximately) inside the \
         polytope spanned by the four most representative towers",
    );
    let Some(reps) = report.representatives else {
        out.push_str("representatives unavailable (not all four pure patterns found)\n");
        return Ok(out);
    };
    let mut t = TextTable::new(vec!["pattern", "vector idx", "A_day", "P_day", "A_half"]);
    for (i, kind) in RegionKind::PURE.iter().enumerate() {
        let f = report.features[reps[i]].f3();
        t.row(vec![
            kind.label().to_string(),
            reps[i].to_string(),
            num(f[0]),
            num(f[1]),
            num(f[2]),
        ]);
    }
    out.push_str(&t.render());
    // Coverage: decompose a sample of all towers and look at residuals.
    let rep_features = [
        report.features[reps[0]],
        report.features[reps[1]],
        report.features[reps[2]],
        report.features[reps[3]],
    ];
    let decomposer = Decomposer::new(
        &rep_features,
        &report.city,
        &report.kept_ids,
        Solver::ActiveSet,
    )?;
    let step = (report.features.len() / 300).max(1);
    let indices: Vec<usize> = (0..report.features.len()).step_by(step).collect();
    let rows = decomposer.decompose_all(&indices, &report.features)?;
    let residuals: Vec<f64> = rows.iter().map(|r| r.residual_sqr.sqrt()).collect();
    let ecdf = Ecdf::new(&residuals);
    // Scale reference: polygon diameter.
    let mut diam = 0.0f64;
    for i in 0..4 {
        for j in (i + 1)..4 {
            let a = rep_features[i].f3();
            let b = rep_features[j].f3();
            let d = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
            diam = diam.max(d);
        }
    }
    let inside = residuals.iter().filter(|&&r| r < 0.05 * diam).count() as f64
        / residuals.len().max(1) as f64;
    out.push_str(&format!(
        "distance-to-polygon over {} sampled towers (polygon diameter {}):\n\
         p50 {}, p90 {}, p99 {}; {:.1}% within 5% of the diameter\n",
        residuals.len(),
        num(diam),
        num(ecdf.inverse(0.5).unwrap_or(0.0)),
        num(ecdf.inverse(0.9).unwrap_or(0.0)),
        num(ecdf.inverse(0.99).unwrap_or(0.0)),
        inside * 100.0
    ));
    Ok(out)
}

/// Table 6 (+ Figs 18/19): convex coefficients vs NTF-IDF.
pub fn table6(report: &StudyReport) -> Result<String, CoreError> {
    let mut out = header(
        "Table 6 / Figs 18-19 — convex decomposition vs POI NTF-IDF",
        "representatives decompose to a unit coefficient on themselves; comprehensive \
         towers get genuine mixtures whose small coefficients match small NTF-IDF entries",
    );
    if report.decompositions.is_empty() {
        out.push_str("decompositions unavailable (not all four pure patterns found)\n");
        return Ok(out);
    }
    let mut t = TextTable::new(vec![
        "tower", "c1", "c2", "c3", "c4", "ntf1", "ntf2", "ntf3", "ntf4", "residual",
    ]);
    for (i, row) in report.decompositions.iter().enumerate() {
        let name = if i < 4 {
            format!("F{}", i + 1)
        } else {
            format!("P{}", i - 3)
        };
        t.row(vec![
            name,
            format!("{:.2}", row.coefficients[0]),
            format!("{:.2}", row.coefficients[1]),
            format!("{:.2}", row.coefficients[2]),
            format!("{:.2}", row.coefficients[3]),
            format!("{:.2}", row.ntf_idf[0]),
            format!("{:.2}", row.ntf_idf[1]),
            format!("{:.2}", row.ntf_idf[2]),
            format!("{:.2}", row.ntf_idf[3]),
            num(row.residual_sqr),
        ]);
    }
    out.push_str(&t.render());
    // F-row sanity: coefficient ≈ 1 on self.
    let mut self_ok = 0;
    for (i, row) in report.decompositions.iter().take(4).enumerate() {
        if row.coefficients[i] > 0.95 {
            self_ok += 1;
        }
    }
    out.push_str(&format!(
        "representative self-coefficients > 0.95: {self_ok}/4\n"
    ));
    out.push_str(&format!(
        "min-rank consistency (small NTF-IDF ↔ small coefficient) over P rows: {:.1}%\n",
        min_rank_consistency(&report.decompositions[4.min(report.decompositions.len())..]) * 100.0
    ));
    // Fig 19: time-domain combination of the first comprehensive tower.
    if report.decompositions.len() > 4 {
        let p1 = &report.decompositions[4];
        if let Some(reps) = report.representatives {
            let rep_vectors: [&[f64]; 4] = [
                &report.vectors[reps[0]],
                &report.vectors[reps[1]],
                &report.vectors[reps[2]],
                &report.vectors[reps[3]],
            ];
            let combo = time_domain_combination(&p1.coefficients, &rep_vectors);
            let actual = &report.vectors[p1.vector_index];
            let r = profile_correlation(&combo, actual).unwrap_or(0.0);
            out.push_str(&format!(
                "Fig 19: corr(time-domain convex combination, actual tower P1) = {}\n",
                num(r)
            ));
            out.push_str(&format!(
                "  actual   {}\n",
                strip(&actual[..BINS_PER_DAY * 7], 72)
            ));
            out.push_str(&format!(
                "  combined {}\n",
                strip(&combo[..BINS_PER_DAY * 7], 72)
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_study, Scale};

    /// One shared tiny study for all experiment smoke tests.
    fn report() -> &'static StudyReport {
        use std::sync::OnceLock;
        static REPORT: OnceLock<StudyReport> = OnceLock::new();
        REPORT.get_or_init(|| run_study(Scale::Tiny, 11).expect("tiny study"))
    }

    #[test]
    fn all_experiments_render() {
        let r = report();
        for id in ALL_EXPERIMENTS {
            let text = run(id, r).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(text.contains("Paper:"), "{id} missing claim header");
            assert!(text.len() > 80, "{id} suspiciously short: {text}");
        }
    }

    #[test]
    fn unknown_experiment_errors() {
        assert!(run("fig99", report()).is_err());
    }

    #[test]
    fn table1_shares_sum_to_100() {
        let text = table1(report()).unwrap();
        let total: f64 = text
            .lines()
            .filter(|l| !l.starts_with("Paper:"))
            .filter_map(|l| l.split_whitespace().last())
            .filter(|s| s.ends_with('%'))
            .filter_map(|s| s.trim_end_matches('%').parse::<f64>().ok())
            .sum();
        assert!((total - 100.0).abs() < 0.5, "total {total}: {text}");
    }

    #[test]
    fn fig12_reports_energy() {
        let text = fig12(report()).unwrap();
        assert!(text.contains("lost energy fraction"));
    }
}
