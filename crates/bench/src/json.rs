//! A minimal JSON reader (and string escaper) for the bench harness.
//!
//! The workspace is dependency-free, so schema validation of
//! `BENCH_pipeline.json` cannot lean on serde. This parser covers the
//! whole of JSON except `\uXXXX` surrogate pairs (escapes decode to
//! the BMP scalar or error), which the bench schema never emits. It is
//! a reader for our own well-formed output, not a hardened general
//! decoder — depth is bounded only by the input length.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. BTreeMap: bench schemas never rely on key order.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage not).
///
/// # Errors
/// A description of the first syntax error, with its byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).ok_or_else(|| {
                                format!("non-scalar \\u escape at byte {}", self.pos)
                            })?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // byte boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("slice of a &str stays valid UTF-8");
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_number(),
            Some(-300.0)
        );
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "\"open", "01x", "{} extra"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote \" slash \\ newline \n tab \t bell \u{7} é";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        assert_eq!(
            parse(&doc).unwrap().get("k").unwrap().as_str(),
            Some(original)
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""éA""#).unwrap().as_str(), Some("éA"));
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert!(parse(r#""\ud800""#).is_err());
    }
}
