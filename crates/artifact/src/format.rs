//! The binary snapshot codec: magic, version, section table, FNV-1a
//! checksums.
//!
//! A snapshot file is laid out as (all integers little-endian):
//!
//! | bytes             | field                                        |
//! |-------------------|----------------------------------------------|
//! | `0..8`            | magic `TLARTFCT`                             |
//! | `8..12`           | format version (`u32`, currently 1)          |
//! | `12..16`          | section count `n` (`u32`)                    |
//! | `16..16+32n`      | section table, 32 bytes per entry            |
//! | `16+32n..24+32n`  | header checksum (FNV-1a of bytes `0..16+32n`)|
//! | `24+32n..EOF`     | section payloads, contiguous, in table order |
//!
//! Each table entry is `tag[8]` (ASCII, space-padded), `offset: u64`
//! (from byte 0 of the file), `len: u64`, and `checksum: u64` (FNV-1a
//! of the payload bytes). Payloads must be contiguous — the first
//! starts right after the header checksum, each next one where the
//! previous ended, and the file ends exactly at the last payload's
//! end. Together with the two checksum layers this makes *any*
//! single-byte corruption detectable: a flip in a payload trips its
//! section checksum, a flip in the header or table trips the header
//! checksum, and appending or truncating bytes trips the length
//! check.
//!
//! Unknown section tags are tolerated on read (their checksums are
//! still verified) so a v1 reader survives additive extensions;
//! incompatible changes bump the version and are rejected with
//! [`ArtifactError::UnsupportedVersion`]. See DESIGN.md §14 for the
//! full compatibility policy.

use std::collections::HashSet;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Leading file magic.
pub const MAGIC: [u8; 8] = *b"TLARTFCT";
/// Current format version.
pub const VERSION: u32 = 1;
/// Hard ceiling on the section count — a structural sanity bound so a
/// corrupted count can never drive an over-allocation.
pub const MAX_SECTIONS: u32 = 64;

const TAG_META: [u8; 8] = *b"meta    ";
const TAG_TOWERS: [u8; 8] = *b"towers  ";
const TAG_FEAT: [u8; 8] = *b"feat    ";
const TAG_CENTROID: [u8; 8] = *b"centroid";
const TAG_KINDS: [u8; 8] = *b"kinds   ";
const TAG_BASIS: [u8; 8] = *b"basis   ";
const TAG_DECOMP: [u8; 8] = *b"decomp  ";
const TAG_PROFILE: [u8; 8] = *b"profile ";

/// 64-bit FNV-1a (same parameters as the engine checkpoint codec).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything that can go wrong reading or writing a snapshot. All
/// decode paths return one of these — they never panic, and a
/// checksum failure is always surfaced rather than yielding a wrong
/// answer.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file is shorter than its own layout claims.
    Truncated {
        /// Bytes the layout requires.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The header/table bytes fail their checksum.
    HeaderChecksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the header bytes.
        found: u64,
    },
    /// A section payload fails its table checksum.
    SectionChecksum {
        /// The section's tag.
        section: String,
        /// Checksum recorded in the table.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
    /// A section decodes to structurally invalid data.
    Corrupt {
        /// The section's tag.
        section: String,
        /// What was wrong.
        reason: String,
    },
    /// A section the snapshot semantics require is absent.
    MissingSection {
        /// The missing tag.
        section: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io { path, source } => write!(f, "io {path}: {source}"),
            ArtifactError::BadMagic => write!(f, "not a towerlens artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported artifact version {found} (reader speaks {VERSION})"
                )
            }
            ArtifactError::Truncated { needed, got } => {
                write!(
                    f,
                    "truncated artifact: layout needs {needed} bytes, file has {got}"
                )
            }
            ArtifactError::HeaderChecksum { expected, found } => write!(
                f,
                "header checksum mismatch: recorded {expected:016x}, computed {found:016x}"
            ),
            ArtifactError::SectionChecksum {
                section,
                expected,
                found,
            } => write!(
                f,
                "section `{section}` checksum mismatch: recorded {expected:016x}, \
                 computed {found:016x}"
            ),
            ArtifactError::Corrupt { section, reason } => {
                write!(f, "section `{section}` corrupt: {reason}")
            }
            ArtifactError::MissingSection { section } => {
                write!(f, "required section `{section}` missing")
            }
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> ArtifactError {
    ArtifactError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// Study-level provenance and shape, from the `meta` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Meta {
    /// Configuration fingerprint of the study that wrote the snapshot
    /// (the engine checkpoint fingerprint, or the analyze graph's).
    pub fingerprint: u64,
    /// Aggregation window start, seconds since trace epoch.
    pub window_start_s: u64,
    /// Bin width in seconds.
    pub bin_secs: u64,
    /// Bins per traffic vector.
    pub n_bins: usize,
    /// Number of patterns (clusters).
    pub k: usize,
    /// The dendrogram stop threshold that produced the clustering.
    pub threshold: f64,
    /// Feature space the clustering ran in (`"raw"` or `"spectral"`).
    pub feature_space: String,
}

/// The frozen primary-component basis, from the `basis` section.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisSection {
    /// Vector index of each pure pattern's representative tower, in
    /// pure-pattern order (resident, transport, office,
    /// entertainment).
    pub representatives: [usize; 4],
    /// The representatives' 3-dim decomposition-space features
    /// (`[amp_day, phase_day, amp_half]`), same order.
    pub vertices: [[f64; 3]; 4],
}

/// One stored convex-combination decomposition, from the `decomp`
/// section.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompRow {
    /// Index of the decomposed tower in the kept-vector ordering.
    pub vector_index: usize,
    /// Convex coefficients in pure-pattern order.
    pub coefficients: [f64; 4],
    /// Squared residual of the fit.
    pub residual_sqr: f64,
    /// TF-IDF re-weighted coefficients.
    pub ntf_idf: [f64; 4],
}

/// Per-tower expected day shape, from the `profile` section: for each
/// bin-of-day, the mean and population standard deviation of the
/// tower's z-scored traffic across the study's days.
#[derive(Debug, Clone, PartialEq)]
pub struct DayProfile {
    /// Bins in one day.
    pub bins_per_day: usize,
    /// `mean[tower][bin_of_day]`.
    pub mean: Vec<Vec<f64>>,
    /// `std[tower][bin_of_day]` (population σ).
    pub std: Vec<Vec<f64>>,
}

impl DayProfile {
    /// Builds per-tower day profiles from z-scored traffic vectors.
    /// Only full days contribute; a trailing partial day is ignored.
    /// Returns an empty profile when `bins_per_day` is 0 or no vector
    /// spans a full day.
    #[must_use]
    pub fn from_vectors(vectors: &[Vec<f64>], bins_per_day: usize) -> DayProfile {
        let mut mean = Vec::with_capacity(vectors.len());
        let mut std = Vec::with_capacity(vectors.len());
        for v in vectors {
            let days = v.len().checked_div(bins_per_day).unwrap_or(0);
            if days == 0 {
                mean.push(vec![0.0; bins_per_day]);
                std.push(vec![0.0; bins_per_day]);
                continue;
            }
            let mut m = vec![0.0f64; bins_per_day];
            let mut s = vec![0.0f64; bins_per_day];
            for (b, slot) in m.iter_mut().enumerate() {
                let mut acc = 0.0;
                for d in 0..days {
                    acc += v[d * bins_per_day + b];
                }
                *slot = acc / days as f64;
            }
            for (b, slot) in s.iter_mut().enumerate() {
                let mut acc = 0.0;
                for d in 0..days {
                    let dev = v[d * bins_per_day + b] - m[b];
                    acc += dev * dev;
                }
                *slot = (acc / days as f64).sqrt();
            }
            mean.push(m);
            std.push(s);
        }
        DayProfile {
            bins_per_day,
            mean,
            std,
        }
    }
}

/// A complete, typed study snapshot: everything `towerlens query`
/// needs, decoupled from the engine's resume checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Provenance and shape.
    pub meta: Meta,
    /// Kept tower ids, in kept-vector order.
    pub tower_ids: Vec<u64>,
    /// Per-tower cluster label (`labels[i] < meta.k`).
    pub labels: Vec<u32>,
    /// Per-tower 6-dim spectral feature vector, `TowerFeatures::f6`
    /// order: `[amp_week, phase_week, amp_day, phase_day, amp_half,
    /// phase_half]`.
    pub features: Vec<[f64; 6]>,
    /// Cluster centroids in the traffic-vector space (the frozen
    /// classification basis `serve --basis` loads).
    pub centroids: Vec<Vec<f64>>,
    /// Per-cluster region-kind names (`RegionKind::label()` strings),
    /// when the study ran the geo labeler.
    pub kinds: Option<Vec<String>>,
    /// The frozen primary-component basis, when the study found all
    /// four pure patterns.
    pub basis: Option<BasisSection>,
    /// Stored decompositions (possibly a sample of towers; possibly
    /// empty).
    pub decompositions: Vec<DecompRow>,
    /// Per-tower expected day profiles for anomaly screening.
    pub profile: DayProfile,
}

impl Snapshot {
    /// Number of towers in the snapshot.
    #[must_use]
    pub fn n_towers(&self) -> usize {
        self.tower_ids.len()
    }
}

// ---------------------------------------------------------------- codec

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Dec<'a> {
        Dec {
            bytes,
            pos: 0,
            section,
        }
    }
    fn corrupt(&self, reason: impl Into<String>) -> ArtifactError {
        ArtifactError::Corrupt {
            section: self.section.to_string(),
            reason: reason.into(),
        }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.corrupt("payload shorter than its own layout"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }
    fn usize(&mut self) -> Result<usize, ArtifactError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("count {v} overflows usize")))
    }
    fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Result<String, ArtifactError> {
        let len = self.usize()?;
        if len > self.bytes.len() - self.pos {
            return Err(self.corrupt(format!("string length {len} exceeds payload")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("string is not UTF-8"))
    }
    fn finish(&self) -> Result<(), ArtifactError> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn encode_meta(meta: &Meta) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(meta.fingerprint);
    e.u64(meta.window_start_s);
    e.u64(meta.bin_secs);
    e.u64(meta.n_bins as u64);
    e.u64(meta.k as u64);
    e.f64(meta.threshold);
    e.str(&meta.feature_space);
    e.buf
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, ArtifactError> {
    let mut d = Dec::new(bytes, "meta");
    let meta = Meta {
        fingerprint: d.u64()?,
        window_start_s: d.u64()?,
        bin_secs: d.u64()?,
        n_bins: d.usize()?,
        k: d.usize()?,
        threshold: d.f64()?,
        feature_space: d.str()?,
    };
    d.finish()?;
    Ok(meta)
}

fn encode_towers(ids: &[u64], labels: &[u32]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(ids.len() as u64);
    for (&id, &label) in ids.iter().zip(labels) {
        e.u64(id);
        e.u64(u64::from(label));
    }
    e.buf
}

fn decode_towers(bytes: &[u8], k: usize) -> Result<(Vec<u64>, Vec<u32>), ArtifactError> {
    let mut d = Dec::new(bytes, "towers");
    let n = d.usize()?;
    if n > bytes.len() / 16 {
        return Err(d.corrupt(format!("tower count {n} exceeds payload size")));
    }
    let mut ids = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(d.u64()?);
        let label = d.u64()?;
        if label >= k as u64 {
            return Err(d.corrupt(format!("label {label} out of range for k={k}")));
        }
        labels.push(label as u32);
    }
    d.finish()?;
    Ok((ids, labels))
}

fn encode_feat(features: &[[f64; 6]]) -> Vec<u8> {
    let mut e = Enc::new();
    for row in features {
        for &v in row {
            e.f64(v);
        }
    }
    e.buf
}

fn decode_feat(bytes: &[u8], n: usize) -> Result<Vec<[f64; 6]>, ArtifactError> {
    let mut d = Dec::new(bytes, "feat");
    if bytes.len() != n * 48 {
        return Err(d.corrupt(format!(
            "payload is {} bytes, expected {} for {n} towers",
            bytes.len(),
            n * 48
        )));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = [0.0f64; 6];
        for slot in &mut row {
            *slot = d.f64()?;
        }
        rows.push(row);
    }
    d.finish()?;
    Ok(rows)
}

fn encode_centroids(centroids: &[Vec<f64>]) -> Vec<u8> {
    let mut e = Enc::new();
    let dims = centroids.first().map_or(0, Vec::len);
    e.u64(dims as u64);
    for c in centroids {
        for &v in c {
            e.f64(v);
        }
    }
    e.buf
}

fn decode_centroids(bytes: &[u8], k: usize) -> Result<Vec<Vec<f64>>, ArtifactError> {
    let mut d = Dec::new(bytes, "centroid");
    let dims = d.usize()?;
    if bytes.len() != 8 + k * dims * 8 {
        return Err(d.corrupt(format!(
            "payload is {} bytes, expected {} for k={k} × dims={dims}",
            bytes.len(),
            8 + k * dims * 8
        )));
    }
    let mut centroids = Vec::with_capacity(k);
    for _ in 0..k {
        let mut c = Vec::with_capacity(dims);
        for _ in 0..dims {
            c.push(d.f64()?);
        }
        centroids.push(c);
    }
    d.finish()?;
    Ok(centroids)
}

fn encode_kinds(kinds: &[String]) -> Vec<u8> {
    let mut e = Enc::new();
    for kind in kinds {
        e.str(kind);
    }
    e.buf
}

fn decode_kinds(bytes: &[u8], k: usize) -> Result<Vec<String>, ArtifactError> {
    let mut d = Dec::new(bytes, "kinds");
    let mut kinds = Vec::with_capacity(k);
    for _ in 0..k {
        kinds.push(d.str()?);
    }
    d.finish()?;
    Ok(kinds)
}

fn encode_basis(basis: &BasisSection) -> Vec<u8> {
    let mut e = Enc::new();
    for &rep in &basis.representatives {
        e.u64(rep as u64);
    }
    for vertex in &basis.vertices {
        for &v in vertex {
            e.f64(v);
        }
    }
    e.buf
}

fn decode_basis(bytes: &[u8], n: usize) -> Result<BasisSection, ArtifactError> {
    let mut d = Dec::new(bytes, "basis");
    let mut representatives = [0usize; 4];
    for slot in &mut representatives {
        let rep = d.usize()?;
        if rep >= n {
            return Err(d.corrupt(format!(
                "representative index {rep} out of range for {n} towers"
            )));
        }
        *slot = rep;
    }
    let mut vertices = [[0.0f64; 3]; 4];
    for vertex in &mut vertices {
        for slot in vertex.iter_mut() {
            *slot = d.f64()?;
        }
    }
    d.finish()?;
    Ok(BasisSection {
        representatives,
        vertices,
    })
}

fn encode_decomp(rows: &[DecompRow]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(rows.len() as u64);
    for row in rows {
        e.u64(row.vector_index as u64);
        for &c in &row.coefficients {
            e.f64(c);
        }
        e.f64(row.residual_sqr);
        for &c in &row.ntf_idf {
            e.f64(c);
        }
    }
    e.buf
}

fn decode_decomp(bytes: &[u8], n: usize) -> Result<Vec<DecompRow>, ArtifactError> {
    let mut d = Dec::new(bytes, "decomp");
    let count = d.usize()?;
    if count > bytes.len() / 80 {
        return Err(d.corrupt(format!("row count {count} exceeds payload size")));
    }
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let vector_index = d.usize()?;
        if vector_index >= n {
            return Err(d.corrupt(format!(
                "vector index {vector_index} out of range for {n} towers"
            )));
        }
        let mut coefficients = [0.0f64; 4];
        for slot in &mut coefficients {
            *slot = d.f64()?;
        }
        let residual_sqr = d.f64()?;
        let mut ntf_idf = [0.0f64; 4];
        for slot in &mut ntf_idf {
            *slot = d.f64()?;
        }
        rows.push(DecompRow {
            vector_index,
            coefficients,
            residual_sqr,
            ntf_idf,
        });
    }
    d.finish()?;
    Ok(rows)
}

fn encode_profile(profile: &DayProfile) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(profile.bins_per_day as u64);
    for (mean, std) in profile.mean.iter().zip(&profile.std) {
        for &v in mean {
            e.f64(v);
        }
        for &v in std {
            e.f64(v);
        }
    }
    e.buf
}

fn decode_profile(bytes: &[u8], n: usize) -> Result<DayProfile, ArtifactError> {
    let mut d = Dec::new(bytes, "profile");
    let bins_per_day = d.usize()?;
    if bytes.len() != 8 + n * bins_per_day * 16 {
        return Err(d.corrupt(format!(
            "payload is {} bytes, expected {} for {n} towers × {bins_per_day} bins",
            bytes.len(),
            8 + n * bins_per_day * 16
        )));
    }
    let mut mean = Vec::with_capacity(n);
    let mut std = Vec::with_capacity(n);
    for _ in 0..n {
        let mut m = Vec::with_capacity(bins_per_day);
        for _ in 0..bins_per_day {
            m.push(d.f64()?);
        }
        let mut s = Vec::with_capacity(bins_per_day);
        for _ in 0..bins_per_day {
            s.push(d.f64()?);
        }
        mean.push(m);
        std.push(s);
    }
    d.finish()?;
    Ok(DayProfile {
        bins_per_day,
        mean,
        std,
    })
}

fn tag_str(tag: &[u8; 8]) -> String {
    String::from_utf8_lossy(tag).trim_end().to_string()
}

impl Snapshot {
    /// Encodes the snapshot to its byte representation.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut sections: Vec<([u8; 8], Vec<u8>)> = vec![
            (TAG_META, encode_meta(&self.meta)),
            (TAG_TOWERS, encode_towers(&self.tower_ids, &self.labels)),
            (TAG_FEAT, encode_feat(&self.features)),
            (TAG_CENTROID, encode_centroids(&self.centroids)),
        ];
        if let Some(kinds) = &self.kinds {
            sections.push((TAG_KINDS, encode_kinds(kinds)));
        }
        if let Some(basis) = &self.basis {
            sections.push((TAG_BASIS, encode_basis(basis)));
        }
        sections.push((TAG_DECOMP, encode_decomp(&self.decompositions)));
        sections.push((TAG_PROFILE, encode_profile(&self.profile)));

        let n = sections.len();
        let header_len = 16 + 32 * n;
        let mut out = Vec::with_capacity(
            header_len + 8 + sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        let mut offset = (header_len + 8) as u64;
        for (tag, payload) in &sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        let header_sum = fnv1a64(&out);
        out.extend_from_slice(&header_sum.to_le_bytes());
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Decodes a snapshot from bytes, verifying the header checksum,
    /// every section checksum, the exact file length, and the
    /// structural invariants of every known section. Unknown section
    /// tags are tolerated (forward compatibility) but still
    /// checksum-verified.
    ///
    /// # Errors
    /// Any [`ArtifactError`] variant except `Io`; never panics on
    /// arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, ArtifactError> {
        let table = parse_header(bytes)?;
        let mut seen: HashSet<[u8; 8]> = HashSet::new();
        let mut meta = None;
        let mut towers_bytes = None;
        let mut feat_bytes = None;
        let mut centroid_bytes = None;
        let mut kinds_bytes = None;
        let mut basis_bytes = None;
        let mut decomp_bytes = None;
        let mut profile_bytes = None;
        for entry in &table {
            let payload = section_payload(bytes, entry)?;
            if !seen.insert(entry.tag) && is_known_tag(&entry.tag) {
                return Err(ArtifactError::Corrupt {
                    section: tag_str(&entry.tag),
                    reason: "duplicate section".into(),
                });
            }
            match entry.tag {
                TAG_META => meta = Some(decode_meta(payload)?),
                TAG_TOWERS => towers_bytes = Some(payload),
                TAG_FEAT => feat_bytes = Some(payload),
                TAG_CENTROID => centroid_bytes = Some(payload),
                TAG_KINDS => kinds_bytes = Some(payload),
                TAG_BASIS => basis_bytes = Some(payload),
                TAG_DECOMP => decomp_bytes = Some(payload),
                TAG_PROFILE => profile_bytes = Some(payload),
                _ => {} // unknown section: checksum verified above, content skipped
            }
        }
        let missing = |section: &str| ArtifactError::MissingSection {
            section: section.into(),
        };
        let meta = meta.ok_or_else(|| missing("meta"))?;
        let (tower_ids, labels) =
            decode_towers(towers_bytes.ok_or_else(|| missing("towers"))?, meta.k)?;
        let n = tower_ids.len();
        let features = decode_feat(feat_bytes.ok_or_else(|| missing("feat"))?, n)?;
        let centroids =
            decode_centroids(centroid_bytes.ok_or_else(|| missing("centroid"))?, meta.k)?;
        let kinds = kinds_bytes.map(|b| decode_kinds(b, meta.k)).transpose()?;
        let basis = basis_bytes.map(|b| decode_basis(b, n)).transpose()?;
        let decompositions = decode_decomp(decomp_bytes.ok_or_else(|| missing("decomp"))?, n)?;
        let profile = decode_profile(profile_bytes.ok_or_else(|| missing("profile"))?, n)?;
        Ok(Snapshot {
            meta,
            tower_ids,
            labels,
            features,
            centroids,
            kinds,
            basis,
            decompositions,
            profile,
        })
    }
}

struct TableEntry {
    tag: [u8; 8],
    offset: u64,
    len: u64,
    checksum: u64,
}

fn is_known_tag(tag: &[u8; 8]) -> bool {
    matches!(
        *tag,
        TAG_META
            | TAG_TOWERS
            | TAG_FEAT
            | TAG_CENTROID
            | TAG_KINDS
            | TAG_BASIS
            | TAG_DECOMP
            | TAG_PROFILE
    )
}

/// Parses and fully validates the header: magic, version, section
/// count, table bounds, header checksum, payload contiguity, and
/// exact file length.
fn parse_header(bytes: &[u8]) -> Result<Vec<TableEntry>, ArtifactError> {
    if bytes.len() < 16 {
        return Err(ArtifactError::Truncated {
            needed: 16,
            got: bytes.len() as u64,
        });
    }
    if bytes[0..8] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(ArtifactError::UnsupportedVersion { found: version });
    }
    let n = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice"));
    if n == 0 || n > MAX_SECTIONS {
        return Err(ArtifactError::Corrupt {
            section: "table".into(),
            reason: format!("section count {n} outside 1..={MAX_SECTIONS}"),
        });
    }
    let n = n as usize;
    let header_len = 16 + 32 * n;
    let header_end = header_len + 8;
    if bytes.len() < header_end {
        return Err(ArtifactError::Truncated {
            needed: header_end as u64,
            got: bytes.len() as u64,
        });
    }
    let expected = u64::from_le_bytes(
        bytes[header_len..header_end]
            .try_into()
            .expect("8-byte slice"),
    );
    let found = fnv1a64(&bytes[..header_len]);
    if expected != found {
        return Err(ArtifactError::HeaderChecksum { expected, found });
    }
    let mut table = Vec::with_capacity(n);
    let mut cursor = header_end as u64;
    for i in 0..n {
        let base = 16 + 32 * i;
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&bytes[base..base + 8]);
        let offset = u64::from_le_bytes(bytes[base + 8..base + 16].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(bytes[base + 16..base + 24].try_into().expect("8 bytes"));
        let checksum = u64::from_le_bytes(bytes[base + 24..base + 32].try_into().expect("8 bytes"));
        if offset != cursor {
            return Err(ArtifactError::Corrupt {
                section: tag_str(&tag),
                reason: format!("offset {offset} breaks contiguity (expected {cursor})"),
            });
        }
        cursor = offset
            .checked_add(len)
            .ok_or_else(|| ArtifactError::Corrupt {
                section: tag_str(&tag),
                reason: "offset + len overflows".into(),
            })?;
        table.push(TableEntry {
            tag,
            offset,
            len,
            checksum,
        });
    }
    if cursor != bytes.len() as u64 {
        if cursor > bytes.len() as u64 {
            return Err(ArtifactError::Truncated {
                needed: cursor,
                got: bytes.len() as u64,
            });
        }
        return Err(ArtifactError::Corrupt {
            section: "table".into(),
            reason: format!(
                "{} trailing bytes after last section",
                bytes.len() as u64 - cursor
            ),
        });
    }
    Ok(table)
}

fn section_payload<'a>(bytes: &'a [u8], entry: &TableEntry) -> Result<&'a [u8], ArtifactError> {
    // Bounds were validated by `parse_header`'s contiguity walk.
    let payload = &bytes[entry.offset as usize..(entry.offset + entry.len) as usize];
    let found = fnv1a64(payload);
    if found != entry.checksum {
        return Err(ArtifactError::SectionChecksum {
            section: tag_str(&entry.tag),
            expected: entry.checksum,
            found,
        });
    }
    Ok(payload)
}

// ------------------------------------------------------------- file I/O

/// Writes a snapshot atomically: encode, write to a sibling temp
/// file, fsync, rename over the target.
///
/// # Errors
/// [`ArtifactError::Io`] on any filesystem failure.
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> Result<(), ArtifactError> {
    let bytes = snapshot.encode();
    let tmp = path.with_extension("artifact.tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
    file.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and fully verifies a snapshot file.
///
/// # Errors
/// [`ArtifactError::Io`] on filesystem failure, otherwise any decode
/// error from [`Snapshot::decode`].
pub fn read_snapshot(path: &Path) -> Result<Snapshot, ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    Snapshot::decode(&bytes)
}

/// Returns true when the bytes begin with the artifact magic — used
/// by loaders that accept either an artifact or a legacy text
/// checkpoint.
#[must_use]
pub fn sniff_magic(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && bytes[0..8] == MAGIC
}

// ----------------------------------------------------------------- fsck

/// Per-section verdict from [`fsck_artifact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionStatus {
    /// Checksum matches and (for known tags) the payload decodes.
    Ok,
    /// Tag unknown to this reader — checksum verified, content
    /// skipped. Readable, but a newer writer produced it.
    Unknown,
    /// Payload bytes do not match the table checksum.
    ChecksumMismatch {
        /// Checksum recorded in the table.
        expected: u64,
        /// Checksum recomputed over the payload.
        found: u64,
    },
}

/// One section row in a [`ArtifactFsck`] report.
#[derive(Debug, Clone)]
pub struct SectionFsck {
    /// Section tag (trailing padding stripped).
    pub tag: String,
    /// Payload length in bytes.
    pub bytes: u64,
    /// Verdict.
    pub status: SectionStatus,
}

/// The result of fsck'ing a snapshot whose header parses.
#[derive(Debug, Clone)]
pub struct ArtifactFsck {
    /// Format version from the header.
    pub version: u32,
    /// Study fingerprint from `meta` (0 when `meta` is unreadable).
    pub fingerprint: u64,
    /// Tower count (0 when unreadable).
    pub towers: usize,
    /// Pattern count from `meta` (0 when unreadable).
    pub k: usize,
    /// Per-section verdicts, in table order.
    pub sections: Vec<SectionFsck>,
    /// A semantic decode error hit after all checksums passed (e.g.
    /// an out-of-range label), if any.
    pub semantic: Option<String>,
}

impl ArtifactFsck {
    /// True when every section checksum matches and the snapshot
    /// decodes. Unknown sections do not make a file unhealthy — they
    /// make it *degraded* (see the doctor's health classification).
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.semantic.is_none() && self.sections.iter().all(|s| s.status == SectionStatus::Ok)
    }

    /// True when any section tag is unknown to this reader.
    #[must_use]
    pub fn has_unknown_sections(&self) -> bool {
        self.sections
            .iter()
            .any(|s| s.status == SectionStatus::Unknown)
    }
}

/// Structurally audits a snapshot file: header, every section
/// checksum (collecting *all* mismatches rather than stopping at the
/// first), then — only when all checksums pass — a full semantic
/// decode.
///
/// # Errors
/// [`ArtifactError::Io`] when the file cannot be read, or a header-
/// level error (`BadMagic`, `UnsupportedVersion`, `Truncated`,
/// `HeaderChecksum`, table corruption) when the section table itself
/// cannot be trusted. Section-level damage is reported in the
/// returned rows, not as an error.
pub fn fsck_artifact(path: &Path) -> Result<ArtifactFsck, ArtifactError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    let version = if bytes.len() >= 12 && bytes[0..8] == MAGIC {
        u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"))
    } else {
        0
    };
    let table = parse_header(&bytes)?;
    let mut sections = Vec::with_capacity(table.len());
    let mut all_ok = true;
    for entry in &table {
        let status = match section_payload(&bytes, entry) {
            Ok(_) if is_known_tag(&entry.tag) => SectionStatus::Ok,
            Ok(_) => SectionStatus::Unknown,
            Err(ArtifactError::SectionChecksum {
                expected, found, ..
            }) => {
                all_ok = false;
                SectionStatus::ChecksumMismatch { expected, found }
            }
            Err(_) => unreachable!("section_payload only fails with SectionChecksum"),
        };
        sections.push(SectionFsck {
            tag: tag_str(&entry.tag),
            bytes: entry.len,
            status,
        });
    }
    let (mut fingerprint, mut towers, mut k) = (0u64, 0usize, 0usize);
    let mut semantic = None;
    if all_ok {
        match Snapshot::decode(&bytes) {
            Ok(snap) => {
                fingerprint = snap.meta.fingerprint;
                towers = snap.n_towers();
                k = snap.meta.k;
            }
            Err(e) => semantic = Some(e.to_string()),
        }
    }
    Ok(ArtifactFsck {
        version,
        fingerprint,
        towers,
        k,
        sections,
        semantic,
    })
}

/// A small fully-populated snapshot for tests — every optional
/// section present, three towers, two clusters. Shared by this
/// crate's unit tests and downstream crates' doctor/query tests.
#[doc(hidden)]
pub fn sample_snapshot() -> Snapshot {
    let vectors: Vec<Vec<f64>> = (0..3)
        .map(|t| (0..8).map(|b| ((t * 8 + b) as f64 * 0.37).sin()).collect())
        .collect();
    Snapshot {
        meta: Meta {
            fingerprint: 0xdead_beef_cafe_f00d,
            window_start_s: 1000,
            bin_secs: 600,
            n_bins: 8,
            k: 2,
            threshold: 16.33,
            feature_space: "spectral".into(),
        },
        tower_ids: vec![11, 42, 99],
        labels: vec![0, 1, 0],
        features: (0..3)
            .map(|t| {
                let mut row = [0.0; 6];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = (t * 6 + j) as f64 * 0.25 - 1.0;
                }
                row
            })
            .collect(),
        centroids: vec![vec![0.5; 8], vec![-0.5; 8]],
        kinds: Some(vec!["Resident".into(), "Office".into()]),
        basis: Some(BasisSection {
            representatives: [0, 1, 2, 0],
            vertices: [
                [1.0, 0.1, 0.2],
                [0.3, 1.5, 0.0],
                [0.7, 0.7, 0.9],
                [0.2, 0.4, 1.8],
            ],
        }),
        decompositions: vec![DecompRow {
            vector_index: 1,
            coefficients: [0.25, 0.25, 0.25, 0.25],
            residual_sqr: 0.125,
            ntf_idf: [0.4, 0.3, 0.2, 0.1],
        }],
        profile: DayProfile::from_vectors(&vectors, 4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_identity() {
        let snap = sample_snapshot();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn roundtrip_without_optional_sections() {
        let mut snap = sample_snapshot();
        snap.kinds = None;
        snap.basis = None;
        snap.decompositions.clear();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(snap, decoded);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_snapshot().encode();
        bytes[0] ^= 0xff;
        // A magic flip trips BadMagic before the header checksum.
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample_snapshot().encode();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            Snapshot::decode(cut),
            Err(ArtifactError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_garbage_is_typed() {
        let mut bytes = sample_snapshot().encode();
        bytes.push(0);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(ArtifactError::Corrupt { .. })
        ));
    }

    #[test]
    fn day_profile_ignores_partial_trailing_day() {
        let v = vec![vec![1.0, 3.0, 1.0, 3.0, 100.0]]; // 2 full days of 2 bins + 1 stray
        let p = DayProfile::from_vectors(&v, 2);
        assert_eq!(p.mean[0], vec![1.0, 3.0]);
        assert_eq!(p.std[0], vec![0.0, 0.0]);
    }

    #[test]
    fn fsck_reports_each_damaged_section() {
        let snap = sample_snapshot();
        let mut bytes = snap.encode();
        let dir = std::env::temp_dir().join(format!("tl-artifact-fsck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.artifact");

        std::fs::write(&path, &bytes).unwrap();
        let clean = fsck_artifact(&path).unwrap();
        assert!(clean.healthy());
        assert_eq!(clean.towers, 3);
        assert_eq!(clean.fingerprint, snap.meta.fingerprint);

        let last = bytes.len() - 1; // inside the profile payload
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let damaged = fsck_artifact(&path).unwrap();
        assert!(!damaged.healthy());
        let bad: Vec<&str> = damaged
            .sections
            .iter()
            .filter(|s| matches!(s.status, SectionStatus::ChecksumMismatch { .. }))
            .map(|s| s.tag.as_str())
            .collect();
        assert_eq!(bad, vec!["profile"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
