//! The memory-resident query index and its batch engine.
//!
//! [`QueryIndex`] wraps a decoded [`Snapshot`] with an id→index map
//! and answers four request kinds:
//!
//! * `pattern <tower>` — the tower's cluster and region kind;
//! * `decompose <tower>` — its convex combination over the four pure
//!   patterns (stored rows are served verbatim; other towers are
//!   solved live against the frozen basis with the *same* active-set
//!   solver and options the batch study used, so the answers are
//!   bit-identical either way);
//! * `topk <tower> <k>` — the k nearest towers in the 6-dim spectral
//!   feature space, answered by a pruned descent of the exact-pruning
//!   [`SpatialIndex`] built at snapshot load (bit-identical to the
//!   matrix-free linear scan, which the tests keep as the oracle);
//! * `screen <tower> <day-file>` — z-score anomaly screening of a
//!   fresh day of traffic against the tower's stored expected
//!   profile.
//!
//! [`run_batch`] fans request lines across `towerlens-par` workers in
//! contiguous index chunks, so output order equals input order and
//! the bytes are identical for any `--threads`. Per-worker tallies
//! are merged in worker order and published to the `query.*` counters
//! exactly once, so counter values are also thread-count invariant.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use towerlens_cluster::index::{SearchStats, SpatialIndex};
use towerlens_cluster::source::TopK;
use towerlens_obs::LazyCounter;
use towerlens_opt::{simplex_least_squares, SimplexLsOptions, Solver};
use towerlens_par::{par_map_indexed_scratch, resolve_threads};

use crate::format::Snapshot;

static QUERY_REQUESTS: LazyCounter = LazyCounter::new("query.requests");
static QUERY_PATTERN: LazyCounter = LazyCounter::new("query.pattern");
static QUERY_DECOMPOSE: LazyCounter = LazyCounter::new("query.decompose");
static QUERY_TOPK: LazyCounter = LazyCounter::new("query.topk");
static QUERY_SCREEN: LazyCounter = LazyCounter::new("query.screen");
static QUERY_ERRORS: LazyCounter = LazyCounter::new("query.errors");
static QUERY_SHED: LazyCounter = LazyCounter::new("query.shed_total");
static QUERY_DEADLINE: LazyCounter = LazyCounter::new("query.deadline_exceeded_total");
static QUERY_FAULT_RETRIES: LazyCounter = LazyCounter::new("query.fault_retries_total");
static QUERY_TOPK_PRUNED: LazyCounter = LazyCounter::new("query.topk_pruned_total");

/// Per-bin |z| above this marks an exceedance; any exceedance marks
/// the day anomalous (the classic 3σ rule).
pub const SCREEN_Z_THRESHOLD: f64 = 3.0;
/// Floor on the profile σ so a perfectly flat historical bin cannot
/// divide by zero.
const SIGMA_FLOOR: f64 = 1e-9;

/// A borrowed `topk` answer: the rendered `(tower id, distance)`
/// neighbour slice plus the number of subtrees the descent pruned.
pub type TopkAnswer<'s> = (&'s [(u64, f64)], u64);

/// Per-worker scratch reused across a batch's requests: the top-k
/// accumulator and its staging buffers survive between requests, so
/// steady-state `topk` answering performs no per-request heap
/// allocation beyond the rendered answer string.
#[derive(Debug, Default)]
pub struct QueryScratch {
    top: TopK,
    sorted: Vec<(usize, f64)>,
    neighbours: Vec<(u64, f64)>,
}

/// The verdict of screening one day of traffic against a tower's
/// expected profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenVerdict {
    /// Bins in the screened day.
    pub bins: usize,
    /// Largest per-bin |z|.
    pub max_z: f64,
    /// Mean per-bin |z|.
    pub mean_z: f64,
    /// Bins with |z| above [`SCREEN_Z_THRESHOLD`].
    pub exceedances: usize,
    /// True when any bin exceeds the threshold.
    pub anomalous: bool,
}

/// A parsed query request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `pattern <tower>`
    Pattern(u64),
    /// `decompose <tower>`
    Decompose(u64),
    /// `topk <tower> <k>`
    Topk(u64, usize),
    /// `screen <tower> <day-file>`
    Screen(u64, String),
}

/// Parses one request line.
///
/// # Errors
/// A human-readable message naming what was malformed.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or_else(|| "empty request".to_string())?;
    let id = |w: Option<&str>| -> Result<u64, String> {
        let w = w.ok_or_else(|| format!("`{verb}` needs a tower id"))?;
        w.parse().map_err(|_| format!("bad tower id `{w}`"))
    };
    let req = match verb {
        "pattern" => Request::Pattern(id(words.next())?),
        "decompose" => Request::Decompose(id(words.next())?),
        "topk" => {
            let tower = id(words.next())?;
            let kw = words
                .next()
                .ok_or_else(|| "`topk` needs a count".to_string())?;
            let k: usize = kw.parse().map_err(|_| format!("bad topk count `{kw}`"))?;
            Request::Topk(tower, k)
        }
        "screen" => {
            let tower = id(words.next())?;
            let file = words
                .next()
                .ok_or_else(|| "`screen` needs a day file".to_string())?;
            Request::Screen(tower, file.to_string())
        }
        other => return Err(format!("unknown request `{other}`")),
    };
    if let Some(extra) = words.next() {
        return Err(format!("trailing argument `{extra}`"));
    }
    Ok(req)
}

// ---------------------------------------------------- virtual-cost model

/// Virtual-cost units charged for a live `decompose` solve: one unit
/// of lookup plus the 2⁴−1 = 15 candidate supports the active-set
/// solver enumerates over the four basis vertices. A constant because
/// [`simplex_least_squares`] enumerates every support unconditionally
/// — the solve's work does not depend on the input.
pub const DECOMPOSE_SOLVE_UNITS: u64 = 16;

/// The estimated virtual cost of one request, in deterministic work
/// units (towers scanned, profile bins compared, solver support
/// enumerations). The unit is *not* wall-clock time: the same request
/// against the same snapshot always costs the same number of units,
/// so admission and deadline decisions are byte-identical at any
/// `--threads`.
///
/// * `pattern` — 1 (one hash lookup);
/// * `decompose` — 1 for a stored study row, [`DECOMPOSE_SOLVE_UNITS`]
///   for a live solve;
/// * `topk` — one unit per tower in the snapshot. This is a
///   deterministic *upper bound*: the pruned index descent usually
///   touches far fewer towers, but admission and deadline decisions
///   must not depend on data layout or query locality, so the charge
///   stays at the worst case (and existing shed behaviour is
///   unchanged);
/// * `screen` — one unit per profile bin compared.
///
/// Malformed or unknown-tower requests are charged the flat lookup
/// cost of 1 so they surface as ordinary errors, never as shed.
#[must_use]
pub fn request_cost(index: &QueryIndex, request: &Request) -> u64 {
    match request {
        Request::Pattern(_) => 1,
        Request::Decompose(id) => {
            let stored = index
                .by_id
                .get(id)
                .is_some_and(|idx| index.decomp_by_index.contains_key(idx));
            if stored {
                1
            } else {
                DECOMPOSE_SOLVE_UNITS
            }
        }
        Request::Topk(..) => index.n_towers().max(1) as u64,
        Request::Screen(..) => index.snapshot.profile.bins_per_day.max(1) as u64,
    }
}

/// A seeded fault plan for the query path, parsed from the
/// [`QueryFault::ENV`] environment variable. Grammar:
/// `cost*<k>` multiplies every request's *consumed* cost (driving the
/// deadline clock without changing the admission estimate);
/// `transient:<n>` makes the first `n` requests of every worker chunk
/// fail transiently once, to be retried under the caller's
/// [`QueryPolicy::retries`]. Parts combine with `;`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryFault {
    /// Consumed-cost multiplier (`cost*<k>`, `1` = off).
    pub cost_multiplier: u64,
    /// Injected transient failures at the head of every worker chunk
    /// (`transient:<n>`, `0` = off).
    pub transient_per_chunk: u64,
}

impl Default for QueryFault {
    fn default() -> QueryFault {
        QueryFault {
            cost_multiplier: 1,
            transient_per_chunk: 0,
        }
    }
}

impl QueryFault {
    /// The environment variable the CLI reads the fault spec from.
    pub const ENV: &'static str = "TOWERLENS_FAULT_QUERY";

    /// Parses a fault spec such as `cost*20`, `transient:2`, or
    /// `cost*20;transient:2`.
    ///
    /// # Errors
    /// A message naming [`QueryFault::ENV`] and the malformed part.
    pub fn parse(spec: &str) -> Result<QueryFault, String> {
        let mut fault = QueryFault::default();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(k) = part.strip_prefix("cost*") {
                fault.cost_multiplier = k.parse().ok().filter(|&m| m >= 1).ok_or_else(|| {
                    format!("{}: bad cost multiplier `{k}` in `{spec}`", Self::ENV)
                })?;
            } else if let Some(n) = part.strip_prefix("transient:") {
                fault.transient_per_chunk = n
                    .parse()
                    .map_err(|_| format!("{}: bad transient count `{n}` in `{spec}`", Self::ENV))?;
            } else {
                return Err(format!(
                    "{}: unknown fault `{part}` in `{spec}` \
                     (expected `cost*<k>` or `transient:<n>`, `;`-separated)",
                    Self::ENV
                ));
            }
        }
        Ok(fault)
    }

    /// Reads and parses [`QueryFault::ENV`]; `Ok(None)` when unset.
    ///
    /// # Errors
    /// The parse error for a set-but-malformed spec.
    pub fn from_env() -> Result<Option<QueryFault>, String> {
        match std::env::var(Self::ENV) {
            Ok(spec) => QueryFault::parse(&spec).map(Some),
            Err(_) => Ok(None),
        }
    }
}

/// How a batch runs under pressure: worker count, admission budget,
/// deadline clock, and the seeded fault plan with its retry budget.
/// [`QueryPolicy::default`] is the fair-weather configuration every
/// pre-existing entry point keeps: no budget, no deadline, no faults.
#[derive(Clone, Default)]
pub struct QueryPolicy {
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Admission cap: a request whose *estimated* cost exceeds this
    /// is shed with a typed `overloaded` error line before any work
    /// is done (`None` = admit everything). A request whose cost
    /// exactly equals the budget is admitted.
    pub request_budget: Option<u64>,
    /// Deadline clock: a request whose *consumed* cost (estimate ×
    /// fault cost-multiplier) exceeds this is answered with a typed
    /// `deadline` error line (`None` = no deadline). Without a fault
    /// plan consumed equals estimated, so a budget-admitted request
    /// can only miss its deadline under injected cost inflation.
    pub deadline_units: Option<u64>,
    /// Transient-fault retries per request before giving up.
    pub retries: u32,
    /// Seeded fault plan (normally [`QueryFault::from_env`]).
    pub fault: Option<QueryFault>,
    /// Backoff between fault retries — the CLI wires the engine
    /// `RetryPolicy` delay schedule here; `None` retries immediately.
    pub delay: Option<Arc<dyn Fn(u32) -> Duration + Send + Sync>>,
}

impl std::fmt::Debug for QueryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPolicy")
            .field("threads", &self.threads)
            .field("request_budget", &self.request_budget)
            .field("deadline_units", &self.deadline_units)
            .field("retries", &self.retries)
            .field("fault", &self.fault)
            .field("delay", &self.delay.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// The memory-resident index over one snapshot.
#[derive(Debug)]
pub struct QueryIndex {
    snapshot: Snapshot,
    by_id: HashMap<u64, usize>,
    decomp_by_index: HashMap<usize, usize>,
    /// Exact-pruning spatial index over the 6-dim feature rows, built
    /// once per snapshot load — the `--watch` reloader constructs a
    /// fresh `QueryIndex` per generation, so the tree rebuilds on
    /// reload for free.
    tree: SpatialIndex,
    /// Basis vertices lifted to the solver's row format once, instead
    /// of re-collected on every live `decompose` solve.
    basis_vertices: Option<Vec<Vec<f64>>>,
}

impl QueryIndex {
    /// Builds the index: the id maps (one pass over the tower table)
    /// plus the spatial tree over the feature rows (O(n log n)).
    #[must_use]
    pub fn new(snapshot: Snapshot) -> QueryIndex {
        let by_id = snapshot
            .tower_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let decomp_by_index = snapshot
            .decompositions
            .iter()
            .enumerate()
            .map(|(row, d)| (d.vector_index, row))
            .collect();
        let tree = SpatialIndex::build(&snapshot.features[..]);
        let basis_vertices = snapshot
            .basis
            .as_ref()
            .map(|b| b.vertices.iter().map(|v| v.to_vec()).collect());
        QueryIndex {
            snapshot,
            by_id,
            decomp_by_index,
            tree,
            basis_vertices,
        }
    }

    /// The underlying snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Number of towers served.
    #[must_use]
    pub fn n_towers(&self) -> usize {
        self.snapshot.n_towers()
    }

    /// True when the snapshot holds no towers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n_towers() == 0
    }

    fn resolve(&self, id: u64) -> Result<usize, String> {
        self.by_id
            .get(&id)
            .copied()
            .ok_or_else(|| format!("unknown tower {id}"))
    }

    /// The tower's cluster label and (when the study labelled
    /// clusters) its region kind.
    ///
    /// # Errors
    /// Unknown tower id.
    pub fn pattern(&self, id: u64) -> Result<(u32, Option<&str>), String> {
        let idx = self.resolve(id)?;
        let label = self.snapshot.labels[idx];
        let kind = self
            .snapshot
            .kinds
            .as_ref()
            .and_then(|k| k.get(label as usize))
            .map(String::as_str);
        Ok((label, kind))
    }

    /// The tower's convex-combination decomposition over the four
    /// pure patterns: stored study rows verbatim, otherwise a live
    /// active-set solve against the frozen basis (same solver, same
    /// options, same inputs as the batch path — bit-identical).
    ///
    /// # Errors
    /// Unknown tower, a snapshot without a basis, or a solver
    /// failure.
    pub fn decompose(&self, id: u64) -> Result<([f64; 4], f64), String> {
        let idx = self.resolve(id)?;
        if let Some(&row) = self.decomp_by_index.get(&idx) {
            let d = &self.snapshot.decompositions[row];
            return Ok((d.coefficients, d.residual_sqr));
        }
        let vertices = self
            .basis_vertices
            .as_ref()
            .ok_or_else(|| "snapshot has no primary-component basis".to_string())?;
        let f = &self.snapshot.features[idx];
        // f6 order is [amp_week, phase_week, amp_day, phase_day,
        // amp_half, phase_half]; the decomposition space is f3 =
        // [amp_day, phase_day, amp_half].
        let target = [f[2], f[3], f[4]];
        let solution = simplex_least_squares(
            vertices,
            &target,
            SimplexLsOptions {
                solver: Solver::ActiveSet,
                ..SimplexLsOptions::default()
            },
        )
        .map_err(|e| format!("decompose solve failed: {e}"))?;
        let mut coefficients = [0.0f64; 4];
        coefficients.copy_from_slice(&solution.coefficients);
        Ok((coefficients, solution.residual_sqr))
    }

    /// The `k` nearest towers in spectral feature space, as
    /// `(tower id, distance)` ascending by `(distance, index)` — a
    /// pruned descent of the spatial tree, bit-identical to the linear
    /// scan over the same kernel.
    ///
    /// # Errors
    /// Unknown tower id.
    pub fn topk(&self, id: u64, k: usize) -> Result<Vec<(u64, f64)>, String> {
        let mut scratch = QueryScratch::default();
        self.topk_scratch(id, k, &mut scratch)
            .map(|(neighbours, _)| neighbours.to_vec())
    }

    /// [`QueryIndex::topk`] through caller-owned scratch buffers (the
    /// batch engine reuses one [`QueryScratch`] per worker, so
    /// steady-state requests allocate nothing). Returns the rendered
    /// neighbour slice and the number of subtrees the descent pruned.
    ///
    /// # Errors
    /// Unknown tower id.
    pub fn topk_scratch<'s>(
        &self,
        id: u64,
        k: usize,
        scratch: &'s mut QueryScratch,
    ) -> Result<TopkAnswer<'s>, String> {
        let idx = self.resolve(id)?;
        scratch.top.reset(k);
        scratch.sorted.clear();
        scratch.neighbours.clear();
        let mut stats = SearchStats::default();
        self.tree.top_k_into(
            &self.snapshot.features[idx],
            idx,
            &mut stats,
            &mut scratch.top,
        );
        scratch.top.sorted_into(&mut scratch.sorted);
        scratch.neighbours.extend(
            scratch
                .sorted
                .iter()
                .map(|&(j, d)| (self.snapshot.tower_ids[j], d)),
        );
        Ok((&scratch.neighbours, stats.pruned_subtrees))
    }

    /// Screens one day of raw traffic against the tower's expected
    /// profile: the day is z-scored by its own mean/σ (matching how
    /// the study normalised traffic), then each bin is compared to
    /// the stored per-bin mean/σ.
    ///
    /// # Errors
    /// Unknown tower, a bin-count mismatch against the profile, or a
    /// flat (zero-variance) day that cannot be z-scored.
    pub fn screen(&self, id: u64, day: &[f64]) -> Result<ScreenVerdict, String> {
        let idx = self.resolve(id)?;
        let bins = self.snapshot.profile.bins_per_day;
        if bins == 0 {
            return Err("snapshot profile has no bins".to_string());
        }
        if day.len() != bins {
            return Err(format!(
                "day has {} values, profile expects {bins}",
                day.len()
            ));
        }
        let mean = day.iter().sum::<f64>() / bins as f64;
        let var = day.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / bins as f64;
        let sd = var.sqrt();
        if sd <= 0.0 {
            return Err("day has zero variance, cannot z-score".to_string());
        }
        let prof_mean = &self.snapshot.profile.mean[idx];
        let prof_std = &self.snapshot.profile.std[idx];
        let mut max_z = 0.0f64;
        let mut sum_z = 0.0f64;
        let mut exceedances = 0usize;
        for b in 0..bins {
            let day_z = (day[b] - mean) / sd;
            let z = ((day_z - prof_mean[b]) / prof_std[b].max(SIGMA_FLOOR)).abs();
            max_z = max_z.max(z);
            sum_z += z;
            if z > SCREEN_Z_THRESHOLD {
                exceedances += 1;
            }
        }
        Ok(ScreenVerdict {
            bins,
            max_z,
            mean_z: sum_z / bins as f64,
            exceedances,
            anomalous: exceedances > 0,
        })
    }
}

// ------------------------------------------------------------ rendering

/// Renders a `pattern` answer. Shared with the golden tests so the
/// CLI and the reference derive the byte-identical line from the same
/// code.
#[must_use]
pub fn render_pattern(id: u64, cluster: u32, kind: Option<&str>) -> String {
    format!(
        "pattern {id} cluster={cluster} kind={}",
        kind.unwrap_or("-")
    )
}

/// Renders a `decompose` answer (coefficients in pure-pattern order).
#[must_use]
pub fn render_decompose(id: u64, coefficients: &[f64; 4], residual_sqr: f64) -> String {
    format!(
        "decompose {id} resident={:.6} transport={:.6} office={:.6} \
         entertainment={:.6} residual={residual_sqr:.6}",
        coefficients[0], coefficients[1], coefficients[2], coefficients[3]
    )
}

/// Renders a `topk` answer (`-` when no neighbours exist).
#[must_use]
pub fn render_topk(id: u64, neighbours: &[(u64, f64)]) -> String {
    let mut out = format!("topk {id}");
    if neighbours.is_empty() {
        out.push_str(" -");
        return out;
    }
    for (nid, d) in neighbours {
        out.push_str(&format!(" {nid}:{d:.6}"));
    }
    out
}

/// Renders a `screen` answer.
#[must_use]
pub fn render_screen(id: u64, verdict: &ScreenVerdict) -> String {
    format!(
        "screen {id} bins={} max_z={:.3} mean_z={:.3} exceed={} verdict={}",
        verdict.bins,
        verdict.max_z,
        verdict.mean_z,
        verdict.exceedances,
        if verdict.anomalous {
            "anomalous"
        } else {
            "normal"
        }
    )
}

// --------------------------------------------------------- batch engine

/// Exact per-kind request counts from one [`run_batch`] call, merged
/// across workers in worker order (thread-count invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchTally {
    /// All requests, well-formed or not.
    pub requests: u64,
    /// Answered `pattern` requests.
    pub pattern: u64,
    /// Answered `decompose` requests.
    pub decompose: u64,
    /// Answered `topk` requests.
    pub topk: u64,
    /// Answered `screen` requests.
    pub screen: u64,
    /// Requests that produced an `error:` line (parse failures,
    /// unknown towers, solver/IO failures, exhausted fault retries —
    /// *not* shed or deadline-exceeded requests, which have their own
    /// fields so `requests = pattern + decompose + topk + screen +
    /// errors + shed + deadline_exceeded` always holds).
    pub errors: u64,
    /// Requests shed by the admission budget (`overloaded` lines).
    pub shed: u64,
    /// Requests past the virtual-cost deadline (`deadline` lines).
    pub deadline_exceeded: u64,
    /// Injected transient faults ridden through via retry. Unlike
    /// every other field this one depends on worker-chunk geometry,
    /// so it is the only tally that may differ across `--threads`.
    pub fault_retries: u64,
    /// Subtrees the spatial index pruned while answering `topk`
    /// requests. Pruning is a pure function of each request against
    /// the snapshot, so — like every field except `fault_retries` —
    /// this is thread-count invariant.
    pub topk_pruned: u64,
}

const SLOT_REQUESTS: usize = 0;
const SLOT_PATTERN: usize = 1;
const SLOT_DECOMPOSE: usize = 2;
const SLOT_TOPK: usize = 3;
const SLOT_SCREEN: usize = 4;
const SLOT_ERRORS: usize = 5;
const SLOT_SHED: usize = 6;
const SLOT_DEADLINE: usize = 7;
const SLOT_FAULT_RETRIES: usize = 8;
const SLOT_TOPK_PRUNED: usize = 9;
const SLOTS: usize = 10;

/// Answers one parsed request, returning the rendered line and the
/// subtree count the spatial index pruned (nonzero only for `topk`).
fn answer(
    index: &QueryIndex,
    request: &Request,
    scratch: &mut QueryScratch,
) -> Result<(String, u64), String> {
    match request {
        Request::Pattern(id) => {
            let (cluster, kind) = index.pattern(*id)?;
            Ok((render_pattern(*id, cluster, kind), 0))
        }
        Request::Decompose(id) => {
            let (coefficients, residual_sqr) = index.decompose(*id)?;
            Ok((render_decompose(*id, &coefficients, residual_sqr), 0))
        }
        Request::Topk(id, k) => {
            let (neighbours, pruned) = index.topk_scratch(*id, *k, scratch)?;
            Ok((render_topk(*id, neighbours), pruned))
        }
        Request::Screen(id, file) => {
            let day = read_day_file(Path::new(file))?;
            Ok((render_screen(*id, &index.screen(*id, &day)?), 0))
        }
    }
}

/// Reads a whitespace/newline-separated day-of-traffic file.
///
/// # Errors
/// I/O failure or a value that does not parse as a float.
pub fn read_day_file(path: &Path) -> Result<Vec<f64>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("day file {}: {e}", path.display()))?;
    text.split_whitespace()
        .map(|w| {
            w.parse::<f64>()
                .map_err(|_| format!("day file {}: bad value `{w}`", path.display()))
        })
        .collect()
}

/// The full admission → deadline → fault → answer path for one
/// request. `chunk_pos` is the request's position inside its worker's
/// contiguous chunk — only the transient-fault injector looks at it,
/// so every *decision* (shed, deadline, answer bytes) is independent
/// of chunking and therefore of the thread count.
fn answer_counted(
    index: &QueryIndex,
    scratch: &mut QueryScratch,
    chunk_pos: usize,
    line: &str,
    policy: &QueryPolicy,
    tally: &mut [u64],
) -> Result<String, String> {
    tally[SLOT_REQUESTS] += 1;
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(message) => {
            tally[SLOT_ERRORS] += 1;
            return Err(message);
        }
    };
    let fault = policy.fault.unwrap_or_default();
    let cost = request_cost(index, &request);
    if let Some(budget) = policy.request_budget {
        if cost > budget {
            tally[SLOT_SHED] += 1;
            return Err(format!(
                "overloaded: request cost {cost} exceeds budget {budget}"
            ));
        }
    }
    let consumed = cost.saturating_mul(fault.cost_multiplier.max(1));
    if let Some(deadline) = policy.deadline_units {
        if consumed > deadline {
            tally[SLOT_DEADLINE] += 1;
            return Err(format!(
                "deadline: request consumed {consumed} units, deadline is {deadline}"
            ));
        }
    }
    if (chunk_pos as u64) < fault.transient_per_chunk {
        // One injected transient failure; the first retry rides
        // through, so the answer bytes match the fault-free run.
        if policy.retries == 0 {
            tally[SLOT_ERRORS] += 1;
            return Err("transient query fault injected (no retries left)".to_string());
        }
        tally[SLOT_FAULT_RETRIES] += 1;
        if let Some(delay) = &policy.delay {
            std::thread::sleep(delay(1));
        }
    }
    let slot = match request {
        Request::Pattern(_) => SLOT_PATTERN,
        Request::Decompose(_) => SLOT_DECOMPOSE,
        Request::Topk(..) => SLOT_TOPK,
        Request::Screen(..) => SLOT_SCREEN,
    };
    match answer(index, &request, scratch) {
        Ok((text, pruned)) => {
            tally[slot] += 1;
            tally[SLOT_TOPK_PRUNED] += pruned;
            Ok(text)
        }
        Err(message) => {
            tally[SLOT_ERRORS] += 1;
            Err(message)
        }
    }
}

fn publish(tally: &BatchTally) {
    QUERY_REQUESTS.add(tally.requests);
    QUERY_PATTERN.add(tally.pattern);
    QUERY_DECOMPOSE.add(tally.decompose);
    QUERY_TOPK.add(tally.topk);
    QUERY_SCREEN.add(tally.screen);
    QUERY_ERRORS.add(tally.errors);
    QUERY_SHED.add(tally.shed);
    QUERY_DEADLINE.add(tally.deadline_exceeded);
    QUERY_FAULT_RETRIES.add(tally.fault_retries);
    QUERY_TOPK_PRUNED.add(tally.topk_pruned);
}

/// Answers one request with the default (fair-weather) policy,
/// publishing its `query.*` counters. Used by the CLI's one-shot
/// mode.
///
/// # Errors
/// The request's error message (also counted under `query.errors`).
pub fn run_one(index: &QueryIndex, line: &str) -> Result<String, String> {
    run_one_with(index, line, &QueryPolicy::default())
}

/// [`run_one`] under an explicit [`QueryPolicy`]. The request is
/// treated as the head of a single-item chunk for fault injection.
///
/// # Errors
/// The request's error, shed, or deadline message.
pub fn run_one_with(
    index: &QueryIndex,
    line: &str,
    policy: &QueryPolicy,
) -> Result<String, String> {
    let mut slots = [0u64; SLOTS];
    let mut scratch = QueryScratch::default();
    let outcome = answer_counted(index, &mut scratch, 0, line, policy, &mut slots);
    publish(&tally_of(&slots));
    outcome
}

fn tally_of(slots: &[u64]) -> BatchTally {
    BatchTally {
        requests: slots[SLOT_REQUESTS],
        pattern: slots[SLOT_PATTERN],
        decompose: slots[SLOT_DECOMPOSE],
        topk: slots[SLOT_TOPK],
        screen: slots[SLOT_SCREEN],
        errors: slots[SLOT_ERRORS],
        shed: slots[SLOT_SHED],
        deadline_exceeded: slots[SLOT_DEADLINE],
        fault_retries: slots[SLOT_FAULT_RETRIES],
        topk_pruned: slots[SLOT_TOPK_PRUNED],
    }
}

/// Answers a batch of request lines across `threads` workers with the
/// default (fair-weather) policy (`0` = all available cores). Output
/// `lines[i]` answers input `lines[i]` — failed requests yield
/// `error: <message>` lines in place — and the bytes are identical
/// for any thread count. The merged tally is published to the
/// `query.*` counters exactly once.
#[must_use]
pub fn run_batch(
    index: &QueryIndex,
    lines: &[String],
    threads: usize,
) -> (Vec<String>, BatchTally) {
    run_batch_with(
        index,
        lines,
        &QueryPolicy {
            threads,
            ..QueryPolicy::default()
        },
    )
}

/// [`run_batch`] under an explicit [`QueryPolicy`]: admission budget,
/// virtual-cost deadline, and the seeded fault plan. Shed and
/// deadline decisions depend only on each request's cost against the
/// snapshot — never on chunking — so stdout and every tally except
/// `fault_retries` are byte-identical at any thread count.
#[must_use]
pub fn run_batch_with(
    index: &QueryIndex,
    lines: &[String],
    policy: &QueryPolicy,
) -> (Vec<String>, BatchTally) {
    // Mirror par_map_indexed_tally's chunk geometry so the fault
    // injector can tell where each worker's chunk starts.
    let workers = resolve_threads(policy.threads).min(lines.len().max(1));
    let chunk = if workers <= 1 {
        lines.len().max(1)
    } else {
        lines.len().div_ceil(workers)
    };
    // Each worker owns one QueryScratch for its whole chunk, so
    // steady-state topk answering is allocation-free per request.
    let (out, slots) = par_map_indexed_scratch(
        lines,
        policy.threads,
        SLOTS,
        QueryScratch::default,
        |scratch, i, line, tally| match answer_counted(
            index,
            scratch,
            i % chunk,
            line,
            policy,
            tally,
        ) {
            Ok(answer) => answer,
            Err(message) => format!("error: {message}"),
        },
    );
    let tally = tally_of(&slots);
    publish(&tally);
    (out, tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{BasisSection, DayProfile, DecompRow, Meta, Snapshot};

    fn snapshot(n: usize) -> Snapshot {
        let bins = 4;
        let vectors: Vec<Vec<f64>> = (0..n)
            .map(|t| {
                (0..bins * 2)
                    .map(|b| ((t * 7 + b) as f64 * 0.61).sin())
                    .collect()
            })
            .collect();
        Snapshot {
            meta: Meta {
                fingerprint: 7,
                window_start_s: 0,
                bin_secs: 600,
                n_bins: bins * 2,
                k: 2,
                threshold: 1.0,
                feature_space: "spectral".into(),
            },
            tower_ids: (0..n as u64).map(|i| i * 10).collect(),
            labels: (0..n).map(|i| (i % 2) as u32).collect(),
            features: (0..n)
                .map(|t| {
                    let mut row = [0.0; 6];
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = ((t * 6 + j) as f64 * 0.43).cos();
                    }
                    row
                })
                .collect(),
            centroids: vec![vec![0.0; bins * 2], vec![1.0; bins * 2]],
            kinds: Some(vec!["Resident".into(), "Office".into()]),
            basis: Some(BasisSection {
                representatives: [0, 1, 2 % n.max(1), 3 % n.max(1)],
                vertices: [
                    [1.0, 0.0, 0.0],
                    [0.0, 1.0, 0.0],
                    [0.0, 0.0, 1.0],
                    [0.5, 0.5, 0.5],
                ],
            }),
            decompositions: vec![DecompRow {
                vector_index: 0,
                coefficients: [0.7, 0.1, 0.1, 0.1],
                residual_sqr: 0.01,
                ntf_idf: [0.7, 0.1, 0.1, 0.1],
            }],
            profile: DayProfile::from_vectors(&vectors, bins),
        }
    }

    #[test]
    fn pattern_and_stored_decompose_answer_from_the_snapshot() {
        let index = QueryIndex::new(snapshot(6));
        assert_eq!(
            run_one(&index, "pattern 30").unwrap(),
            "pattern 30 cluster=1 kind=Office"
        );
        assert_eq!(
            run_one(&index, "decompose 0").unwrap(),
            render_decompose(0, &[0.7, 0.1, 0.1, 0.1], 0.01)
        );
    }

    #[test]
    fn live_decompose_matches_a_direct_solver_call() {
        let index = QueryIndex::new(snapshot(6));
        let (coefficients, residual) = index.decompose(10).unwrap();
        let basis = index.snapshot().basis.as_ref().unwrap();
        let vertices: Vec<Vec<f64>> = basis.vertices.iter().map(|v| v.to_vec()).collect();
        let f = &index.snapshot().features[1];
        let expect = simplex_least_squares(
            &vertices,
            &[f[2], f[3], f[4]],
            SimplexLsOptions {
                solver: Solver::ActiveSet,
                ..SimplexLsOptions::default()
            },
        )
        .unwrap();
        assert_eq!(coefficients.to_vec(), expect.coefficients);
        assert_eq!(residual.to_bits(), expect.residual_sqr.to_bits());
    }

    #[test]
    fn unknown_tower_and_bad_verbs_are_errors_not_panics() {
        let index = QueryIndex::new(snapshot(3));
        assert!(run_one(&index, "pattern 5")
            .unwrap_err()
            .contains("unknown tower"));
        assert!(run_one(&index, "warp 0")
            .unwrap_err()
            .contains("unknown request"));
        assert!(run_one(&index, "topk 0")
            .unwrap_err()
            .contains("needs a count"));
        assert!(run_one(&index, "").unwrap_err().contains("empty"));
    }

    #[test]
    fn batch_is_input_ordered_and_thread_invariant() {
        let index = QueryIndex::new(snapshot(8));
        let lines: Vec<String> = (0..64)
            .map(|i| match i % 3 {
                0 => format!("pattern {}", (i % 8) * 10),
                1 => format!("topk {} 3", (i % 8) * 10),
                _ => format!("decompose {}", (i % 8) * 10),
            })
            .collect();
        let (seq, seq_tally) = run_batch(&index, &lines, 1);
        for threads in [2, 3, 8] {
            let (par, par_tally) = run_batch(&index, &lines, threads);
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_tally, par_tally, "threads={threads}");
        }
        assert_eq!(seq_tally.requests, 64);
        assert_eq!(seq_tally.errors, 0);
    }

    #[test]
    fn batch_turns_failures_into_error_lines_in_place() {
        let index = QueryIndex::new(snapshot(3));
        let lines = vec!["pattern 0".to_string(), "pattern 999".to_string()];
        let (out, tally) = run_batch(&index, &lines, 1);
        assert!(out[0].starts_with("pattern 0 "));
        assert!(out[1].starts_with("error: unknown tower 999"));
        assert_eq!(tally.errors, 1);
        assert_eq!(tally.requests, 2);
    }

    #[test]
    fn request_costs_follow_the_virtual_cost_model() {
        let index = QueryIndex::new(snapshot(6));
        assert_eq!(request_cost(&index, &Request::Pattern(0)), 1);
        // Tower 0 has a stored decomposition row; tower 10 solves live.
        assert_eq!(request_cost(&index, &Request::Decompose(0)), 1);
        assert_eq!(
            request_cost(&index, &Request::Decompose(10)),
            DECOMPOSE_SOLVE_UNITS
        );
        // topk scans every tower; screen compares every profile bin.
        assert_eq!(request_cost(&index, &Request::Topk(0, 3)), 6);
        assert_eq!(
            request_cost(&index, &Request::Screen(0, "day.txt".into())),
            4
        );
    }

    #[test]
    fn budget_equal_to_cost_admits_and_one_below_sheds() {
        let index = QueryIndex::new(snapshot(6));
        let admit = QueryPolicy {
            request_budget: Some(6),
            ..QueryPolicy::default()
        };
        assert!(run_one_with(&index, "topk 0 2", &admit)
            .unwrap()
            .starts_with("topk 0 "));
        let shed = QueryPolicy {
            request_budget: Some(5),
            ..QueryPolicy::default()
        };
        let err = run_one_with(&index, "topk 0 2", &shed).unwrap_err();
        assert_eq!(err, "overloaded: request cost 6 exceeds budget 5");
    }

    #[test]
    fn shed_lines_stay_in_input_order_and_tallies_are_thread_invariant() {
        let index = QueryIndex::new(snapshot(8));
        let lines: Vec<String> = (0..64)
            .map(|i| match i % 4 {
                0 => format!("topk {} 3", (i % 8) * 10),
                1 => format!("decompose {}", if i % 8 == 5 { 10 } else { 0 }),
                _ => format!("pattern {}", (i % 8) * 10),
            })
            .collect();
        // Budget 3 sheds topk (cost 8) and live decompose (cost 16)
        // but admits pattern (1) and the stored row for tower 0 (1).
        let policy = |threads| QueryPolicy {
            threads,
            request_budget: Some(3),
            ..QueryPolicy::default()
        };
        let (seq, seq_tally) = run_batch_with(&index, &lines, &policy(1));
        for (i, line) in seq.iter().enumerate() {
            match i % 4 {
                0 => assert!(line.starts_with("error: overloaded: "), "line {i}: {line}"),
                1 if lines[i].ends_with(" 10") => {
                    assert!(line.starts_with("error: overloaded: "), "line {i}: {line}");
                }
                1 => assert!(line.starts_with("decompose 0 "), "line {i}: {line}"),
                _ => assert!(line.starts_with("pattern "), "line {i}: {line}"),
            }
        }
        // 16 topk + 8 live decompose shed; 8 stored decompose admitted.
        assert_eq!(seq_tally.shed, 24);
        assert_eq!(seq_tally.errors, 0);
        assert_eq!(
            seq_tally.requests,
            seq_tally.pattern
                + seq_tally.decompose
                + seq_tally.topk
                + seq_tally.screen
                + seq_tally.errors
                + seq_tally.shed
                + seq_tally.deadline_exceeded
        );
        for threads in [2, 3, 8] {
            let (par, par_tally) = run_batch_with(&index, &lines, &policy(threads));
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(seq_tally, par_tally, "threads={threads}");
        }
    }

    #[test]
    fn cost_inflation_trips_the_deadline_but_not_admission() {
        let index = QueryIndex::new(snapshot(6));
        // topk costs 6: admitted under budget 10, but a 20× fault
        // multiplier drives consumed cost to 120, past deadline 100.
        let policy = QueryPolicy {
            request_budget: Some(10),
            deadline_units: Some(100),
            fault: Some(QueryFault::parse("cost*20").unwrap()),
            ..QueryPolicy::default()
        };
        let err = run_one_with(&index, "topk 0 2", &policy).unwrap_err();
        assert_eq!(err, "deadline: request consumed 120 units, deadline is 100");
        // pattern consumes 20 units: under the deadline, answered.
        assert!(run_one_with(&index, "pattern 0", &policy)
            .unwrap()
            .starts_with("pattern 0 "));
    }

    #[test]
    fn transient_faults_ride_through_on_retry_and_fail_typed_without() {
        let index = QueryIndex::new(snapshot(8));
        let lines: Vec<String> = (0..32)
            .map(|i| format!("pattern {}", (i % 8) * 10))
            .collect();
        let (clean, _) = run_batch(&index, &lines, 2);
        let faulted = QueryPolicy {
            threads: 2,
            retries: 2,
            fault: Some(QueryFault::parse("transient:2").unwrap()),
            ..QueryPolicy::default()
        };
        let (got, tally) = run_batch_with(&index, &lines, &faulted);
        assert_eq!(clean, got);
        assert!(tally.fault_retries > 0);
        assert_eq!(tally.errors, 0);
        // Without retries the injected fault surfaces as a typed error.
        let hopeless = QueryPolicy {
            retries: 0,
            fault: Some(QueryFault::parse("transient:1").unwrap()),
            ..QueryPolicy::default()
        };
        let err = run_one_with(&index, "pattern 0", &hopeless).unwrap_err();
        assert!(err.contains("transient query fault injected"));
    }

    #[test]
    fn fault_spec_grammar_parses_and_rejects() {
        assert_eq!(
            QueryFault::parse("cost*20;transient:3").unwrap(),
            QueryFault {
                cost_multiplier: 20,
                transient_per_chunk: 3
            }
        );
        assert_eq!(QueryFault::parse("").unwrap(), QueryFault::default());
        assert!(QueryFault::parse("cost*0")
            .unwrap_err()
            .contains("TOWERLENS_FAULT_QUERY"));
        assert!(QueryFault::parse("latency:5")
            .unwrap_err()
            .contains("unknown fault"));
    }

    #[test]
    fn screen_flags_a_shifted_day_and_accepts_a_typical_one() {
        let n = 4;
        let bins = 4;
        let index = QueryIndex::new(snapshot(n));
        // A typical day: the tower's own profile mean re-scaled.
        let profile_mean = index.snapshot().profile.mean[0].clone();
        let typical: Vec<f64> = profile_mean.iter().map(|v| v * 5.0 + 100.0).collect();
        let verdict = index.screen(0, &typical);
        if let Ok(v) = verdict {
            assert_eq!(v.bins, bins);
        }
        // A day with one wild bin must raise max_z well above the
        // typical day's.
        let mut wild = typical.clone();
        wild[2] += 1e6;
        let wild_v = index.screen(0, &wild).unwrap();
        assert!(wild_v.max_z > 0.0);
        // Bin-count mismatch is a typed error.
        assert!(index
            .screen(0, &[1.0])
            .unwrap_err()
            .contains("profile expects"));
    }
}
