//! The generation store: hot-reloadable snapshot publishing with a
//! last-good fallback.
//!
//! A long-running `towerlens serve` publishes each fresh study
//! snapshot as an immutable `gen-%08d.artifact` file plus an atomic
//! `CURRENT` pointer file naming the newest generation — the same
//! temp + fsync + rename discipline the WAL uses, so a crash at any
//! instant leaves either the old pointer or the new one, never a torn
//! store. A long-running `towerlens query --watch` follows the
//! pointer: [`Watcher::reload`] fully decodes (and therefore
//! checksums) each new generation *before* an atomic in-memory swap,
//! and stays on the last-good generation — flipping a degraded health
//! flag rather than crashing — when the new one is corrupt or torn.
//!
//! Publish order (each step is crash-atomic on its own):
//!
//! 1. write `gen-N.artifact.tmp`, fsync;
//! 2. rename to `gen-N.artifact`, fsync the directory;
//! 3. write `CURRENT.tmp` naming `gen-N.artifact`, fsync;
//! 4. rename to `CURRENT`, fsync the directory.
//!
//! A reader that finds `CURRENT` naming a missing or corrupt file
//! (possible only under byte corruption, not under crashes) falls
//! back to the newest generation that fully decodes. Publishing is
//! idempotent: when `CURRENT` already names a generation whose bytes
//! equal the would-be snapshot, [`Publisher::publish`] is a no-op, so
//! a crashed-and-restarted publisher converges instead of minting
//! duplicate generations forever.
//!
//! `TOWERLENS_FAULT_PUBLISH=<tmp|gen|cur>:<n>` aborts the process at
//! the matching point of the `n`-th actual publish, for the chaos
//! suite that kills `serve` at every point inside a publish.

use std::io::Write;
use std::path::{Path, PathBuf};

use towerlens_obs::LazyCounter;

use crate::format::{ArtifactError, Snapshot};
use crate::query::QueryIndex;

static QUERY_RELOADS: LazyCounter = LazyCounter::new("query.reload_total");
static QUERY_RELOAD_REJECTED: LazyCounter = LazyCounter::new("query.reload_rejected_total");

/// Name of the pointer file naming the current generation.
pub const CURRENT_POINTER: &str = "CURRENT";

/// File name of generation `n` (`gen-00000001.artifact`).
#[must_use]
pub fn generation_name(n: u64) -> String {
    format!("gen-{n:08}.artifact")
}

/// Parses a generation file name back to its number; `None` for
/// anything that is not exactly `gen-<digits>.artifact`.
#[must_use]
pub fn parse_generation_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("gen-")?.strip_suffix(".artifact")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// All generation numbers present in `dir`, ascending.
///
/// # Errors
/// [`ArtifactError::Io`] when the directory cannot be listed.
pub fn list_generations(dir: &Path) -> Result<Vec<u64>, ArtifactError> {
    let mut generations = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        if let Some(n) = entry.file_name().to_str().and_then(parse_generation_name) {
            generations.push(n);
        }
    }
    generations.sort_unstable();
    Ok(generations)
}

/// Reads the `CURRENT` pointer; `Ok(None)` when it does not exist.
///
/// # Errors
/// [`ArtifactError::Io`] on any failure other than the pointer being
/// absent.
pub fn read_current(dir: &Path) -> Result<Option<String>, ArtifactError> {
    let path = dir.join(CURRENT_POINTER);
    match std::fs::read_to_string(&path) {
        Ok(text) => Ok(Some(text.trim().to_string())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err(&path, e)),
    }
}

// ------------------------------------------------------------ publisher

/// Where inside a publish the seeded kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishStage {
    /// After the generation temp file is written and fsynced, before
    /// its rename — a torn publish leaving only `gen-N.artifact.tmp`.
    AfterTmp,
    /// After the generation file is renamed into place, before the
    /// `CURRENT` pointer moves — a published-but-unreferenced
    /// generation.
    AfterGen,
    /// After `CURRENT.tmp` is written, before its rename — the
    /// pointer still names the previous generation.
    AfterCurrentTmp,
}

/// A seeded publish kill: abort the process at `stage` of the `n`-th
/// actual publish (1-based; idempotent no-op publishes don't count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishKill {
    /// Where inside the publish to abort.
    pub stage: PublishStage,
    /// Which publish of this process to abort on.
    pub nth: u64,
}

impl PublishKill {
    /// The environment variable the spec is read from.
    pub const ENV: &'static str = "TOWERLENS_FAULT_PUBLISH";

    /// Parses a spec such as `tmp:1`, `gen:2`, or `cur:1`.
    ///
    /// # Errors
    /// A message naming [`PublishKill::ENV`] and the malformed part.
    pub fn parse(spec: &str) -> Result<PublishKill, String> {
        let (word, nth) = spec
            .split_once(':')
            .ok_or_else(|| format!("{}: expected `<tmp|gen|cur>:<n>`, got `{spec}`", Self::ENV))?;
        let stage = match word {
            "tmp" => PublishStage::AfterTmp,
            "gen" => PublishStage::AfterGen,
            "cur" => PublishStage::AfterCurrentTmp,
            other => {
                return Err(format!(
                    "{}: unknown publish stage `{other}` in `{spec}` (expected tmp, gen, or cur)",
                    Self::ENV
                ))
            }
        };
        let nth: u64 = nth
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("{}: bad publish ordinal `{nth}` in `{spec}`", Self::ENV))?;
        Ok(PublishKill { stage, nth })
    }

    /// Reads and parses [`PublishKill::ENV`]; `Ok(None)` when unset.
    ///
    /// # Errors
    /// The parse error for a set-but-malformed spec.
    pub fn from_env() -> Result<Option<PublishKill>, String> {
        match std::env::var(Self::ENV) {
            Ok(spec) => PublishKill::parse(&spec).map(Some),
            Err(_) => Ok(None),
        }
    }
}

/// The producer half of the generation store. One per publishing
/// process; tracks how many real publishes it has performed so the
/// seeded kill can target the `n`-th.
#[derive(Debug)]
pub struct Publisher {
    dir: PathBuf,
    kill: Option<PublishKill>,
    published: u64,
}

impl Publisher {
    /// Opens (creating if needed) the generation store at `dir`.
    ///
    /// # Errors
    /// [`ArtifactError::Io`] when the directory cannot be created.
    pub fn open(dir: &Path, kill: Option<PublishKill>) -> Result<Publisher, ArtifactError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        Ok(Publisher {
            dir: dir.to_path_buf(),
            kill,
            published: 0,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Real (non-idempotent-no-op) publishes this process performed.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.published
    }

    fn maybe_abort(&self, stage: PublishStage) {
        if let Some(kill) = self.kill {
            if kill.stage == stage && kill.nth == self.published {
                eprintln!(
                    "publish: seeded kill at {stage:?} of publish {} — aborting",
                    self.published
                );
                std::process::abort();
            }
        }
    }

    /// Publishes a snapshot as the next generation and moves
    /// `CURRENT` to it, returning the generation number. Idempotent:
    /// when `CURRENT` already names a generation whose bytes equal
    /// this snapshot's encoding, nothing is written and the existing
    /// generation number is returned — so a publisher that crashed
    /// mid-publish and restarted converges instead of growing the
    /// store forever.
    ///
    /// # Errors
    /// [`ArtifactError::Io`] on any filesystem failure.
    pub fn publish(&mut self, snapshot: &Snapshot) -> Result<u64, ArtifactError> {
        let bytes = snapshot.encode();
        if let Ok(Some(name)) = read_current(&self.dir) {
            if let Some(n) = parse_generation_name(&name) {
                if let Ok(existing) = std::fs::read(self.dir.join(&name)) {
                    if existing == bytes {
                        return Ok(n);
                    }
                }
            }
        }
        self.published += 1;
        let generation = list_generations(&self.dir)?.last().copied().unwrap_or(0) + 1;
        let name = generation_name(generation);
        let target = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        write_fsynced(&tmp, &bytes)?;
        self.maybe_abort(PublishStage::AfterTmp);
        std::fs::rename(&tmp, &target).map_err(|e| io_err(&target, e))?;
        sync_dir(&self.dir);
        self.maybe_abort(PublishStage::AfterGen);
        let cur_tmp = self.dir.join(format!("{CURRENT_POINTER}.tmp"));
        write_fsynced(&cur_tmp, format!("{name}\n").as_bytes())?;
        self.maybe_abort(PublishStage::AfterCurrentTmp);
        let current = self.dir.join(CURRENT_POINTER);
        std::fs::rename(&cur_tmp, &current).map_err(|e| io_err(&current, e))?;
        sync_dir(&self.dir);
        Ok(generation)
    }
}

fn write_fsynced(path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
    let mut file = std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    file.write_all(bytes).map_err(|e| io_err(path, e))?;
    file.sync_all().map_err(|e| io_err(path, e))?;
    Ok(())
}

fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

fn io_err(path: &Path, source: std::io::Error) -> ArtifactError {
    ArtifactError::Io {
        path: path.display().to_string(),
        source,
    }
}

// ------------------------------------------------------------- resolver

/// The outcome of resolving a generation store to a servable
/// snapshot.
#[derive(Debug)]
pub struct Resolved {
    /// The generation being served.
    pub generation: u64,
    /// Its fully decoded (and therefore checksum-verified) snapshot.
    pub snapshot: Snapshot,
    /// True when this is *not* the generation `CURRENT` names — the
    /// pointer is missing, unparseable, or names a generation that
    /// failed to decode, and the store fell back to the newest good
    /// one.
    pub degraded: bool,
    /// Why the resolution is degraded, when it is.
    pub note: Option<String>,
}

/// Resolves a store directory to the generation `CURRENT` names,
/// falling back to the newest generation that fully decodes when the
/// pointed-to one is missing, torn, or corrupt. A generation is only
/// ever served after a full decode, which verifies every section
/// checksum — bytes from a generation that fails fsck are never
/// served.
///
/// # Errors
/// [`ArtifactError::Io`] when the directory cannot be read, or the
/// last decode error when no generation decodes at all.
pub fn resolve_latest(dir: &Path) -> Result<Resolved, ArtifactError> {
    let target = read_current(dir)?
        .as_deref()
        .and_then(parse_generation_name);
    let mut candidates: Vec<u64> = Vec::new();
    if let Some(n) = target {
        candidates.push(n);
    }
    let mut rest = list_generations(dir)?;
    rest.reverse();
    candidates.extend(rest.into_iter().filter(|&n| Some(n) != target));
    let mut note: Option<String> = None;
    let mut last_err: Option<ArtifactError> = None;
    for generation in candidates {
        match crate::format::read_snapshot(&dir.join(generation_name(generation))) {
            Ok(snapshot) => {
                let degraded = Some(generation) != target;
                return Ok(Resolved {
                    generation,
                    snapshot,
                    degraded,
                    note: if degraded {
                        Some(note.unwrap_or_else(|| {
                            format!("{CURRENT_POINTER} pointer missing or unparseable")
                        }))
                    } else {
                        None
                    },
                });
            }
            Err(e) => {
                if note.is_none() {
                    note = Some(format!("{}: {e}", generation_name(generation)));
                }
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io_err(
            &dir.join(CURRENT_POINTER),
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "generation store has no generations",
            ),
        )
    }))
}

// -------------------------------------------------------------- watcher

/// The consumer half of the generation store: a [`QueryIndex`] that
/// follows the `CURRENT` pointer. [`Watcher::reload`] swaps the
/// in-memory index atomically (from the caller's point of view: it
/// either fully swaps or fully keeps the old index) and never swaps
/// to a generation that fails its full decode — the last-good
/// generation keeps serving and the watcher reports itself degraded.
#[derive(Debug)]
pub struct Watcher {
    dir: PathBuf,
    index: QueryIndex,
    generation: u64,
    degraded: bool,
    reloads: u64,
    rejected: u64,
}

impl Watcher {
    /// Opens the store and loads its best generation.
    ///
    /// # Errors
    /// Any [`resolve_latest`] error (empty store, nothing decodes).
    pub fn open(dir: &Path) -> Result<Watcher, ArtifactError> {
        let resolved = resolve_latest(dir)?;
        Ok(Watcher {
            dir: dir.to_path_buf(),
            index: QueryIndex::new(resolved.snapshot),
            generation: resolved.generation,
            degraded: resolved.degraded,
            reloads: 0,
            rejected: 0,
        })
    }

    /// The live index.
    #[must_use]
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }

    /// The generation currently served.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when the watcher is not serving the generation `CURRENT`
    /// names (fallback after a corrupt or torn publish).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Re-resolves the store. Three outcomes, each a one-line
    /// human-readable report:
    ///
    /// * `CURRENT` still names the served generation — a no-op;
    /// * a new generation fully decodes — atomic swap, counted under
    ///   `query.reload_total`, and the degraded flag clears;
    /// * the new generation is corrupt, torn, or the store is
    ///   unreadable — the swap is rejected, counted under
    ///   `query.reload_rejected_total`, the degraded flag is set, and
    ///   the last-good index keeps serving.
    pub fn reload(&mut self) -> String {
        match resolve_latest(&self.dir) {
            Ok(resolved) => {
                // A degraded resolution means the generation CURRENT
                // names failed to decode and the store fell back —
                // that is a rejected reload, whatever the fallback
                // was, and the last-good index keeps serving.
                if resolved.degraded {
                    self.rejected += 1;
                    QUERY_RELOAD_REJECTED.inc();
                    self.degraded = true;
                    return format!(
                        "reload rejected: {} (serving gen={})",
                        resolved.note.unwrap_or_else(|| "degraded store".into()),
                        self.generation
                    );
                }
                if resolved.generation == self.generation {
                    // CURRENT cleanly names what we already serve.
                    self.degraded = false;
                    return format!("reload gen={} noop", self.generation);
                }
                let was = self.generation;
                self.index = QueryIndex::new(resolved.snapshot);
                self.generation = resolved.generation;
                self.degraded = false;
                self.reloads += 1;
                QUERY_RELOADS.inc();
                format!("reload gen={} ok (was gen={was})", self.generation)
            }
            Err(e) => {
                self.rejected += 1;
                QUERY_RELOAD_REJECTED.inc();
                self.degraded = true;
                format!("reload rejected: {e} (serving gen={})", self.generation)
            }
        }
    }

    /// One-line health report:
    /// `health gen=<n> degraded=<yes|no> reloads=<a> rejected=<b>`.
    #[must_use]
    pub fn health(&self) -> String {
        format!(
            "health gen={} degraded={} reloads={} rejected={}",
            self.generation,
            if self.degraded { "yes" } else { "no" },
            self.reloads,
            self.rejected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::sample_snapshot;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("towerlens-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn variant(fingerprint: u64) -> Snapshot {
        let mut snapshot = sample_snapshot();
        snapshot.meta.fingerprint = fingerprint;
        snapshot
    }

    #[test]
    fn generation_names_round_trip_and_reject_imposters() {
        assert_eq!(generation_name(3), "gen-00000003.artifact");
        assert_eq!(parse_generation_name("gen-00000003.artifact"), Some(3));
        assert_eq!(parse_generation_name("gen-00000003.artifact.tmp"), None);
        assert_eq!(parse_generation_name("gen-.artifact"), None);
        assert_eq!(parse_generation_name("gen-x3.artifact"), None);
        assert_eq!(parse_generation_name("study.artifact"), None);
    }

    #[test]
    fn kill_spec_grammar_parses_and_rejects() {
        assert_eq!(
            PublishKill::parse("tmp:1").unwrap(),
            PublishKill {
                stage: PublishStage::AfterTmp,
                nth: 1
            }
        );
        assert_eq!(
            PublishKill::parse("cur:3").unwrap().stage,
            PublishStage::AfterCurrentTmp
        );
        assert!(PublishKill::parse("gen:0")
            .unwrap_err()
            .contains("TOWERLENS_FAULT_PUBLISH"));
        assert!(PublishKill::parse("fsync:1")
            .unwrap_err()
            .contains("unknown publish stage"));
        assert!(PublishKill::parse("tmp").unwrap_err().contains("expected"));
    }

    #[test]
    fn publish_advances_generations_and_current_and_is_idempotent() {
        let dir = tmp("publish");
        let mut publisher = Publisher::open(&dir, None).unwrap();
        assert_eq!(publisher.publish(&variant(1)).unwrap(), 1);
        assert_eq!(publisher.publish(&variant(2)).unwrap(), 2);
        assert_eq!(
            read_current(&dir).unwrap().as_deref(),
            Some("gen-00000002.artifact")
        );
        // Same bytes again: no third generation.
        assert_eq!(publisher.publish(&variant(2)).unwrap(), 2);
        assert_eq!(list_generations(&dir).unwrap(), vec![1, 2]);
        let resolved = resolve_latest(&dir).unwrap();
        assert_eq!(resolved.generation, 2);
        assert!(!resolved.degraded);
        assert_eq!(resolved.snapshot.meta.fingerprint, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_current_generation_falls_back_to_last_good() {
        let dir = tmp("fallback");
        let mut publisher = Publisher::open(&dir, None).unwrap();
        publisher.publish(&variant(1)).unwrap();
        publisher.publish(&variant(2)).unwrap();
        // Flip one byte near the end of the pointed-to generation.
        let target = dir.join(generation_name(2));
        let mut bytes = std::fs::read(&target).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&target, bytes).unwrap();
        let resolved = resolve_latest(&dir).unwrap();
        assert_eq!(resolved.generation, 1);
        assert!(resolved.degraded);
        assert!(resolved.note.unwrap().contains("gen-00000002.artifact"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watcher_swaps_on_good_publishes_and_rejects_corrupt_ones() {
        let dir = tmp("watcher");
        let mut publisher = Publisher::open(&dir, None).unwrap();
        publisher.publish(&variant(1)).unwrap();
        let mut watcher = Watcher::open(&dir).unwrap();
        assert_eq!(watcher.generation(), 1);
        assert!(!watcher.degraded());
        assert_eq!(watcher.reload(), "reload gen=1 noop");
        // A good publish swaps.
        publisher.publish(&variant(2)).unwrap();
        assert_eq!(watcher.reload(), "reload gen=2 ok (was gen=1)");
        assert_eq!(watcher.index().snapshot().meta.fingerprint, 2);
        // A corrupt publish is rejected; last-good keeps serving.
        publisher.publish(&variant(3)).unwrap();
        let target = dir.join(generation_name(3));
        let mut bytes = std::fs::read(&target).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&target, bytes).unwrap();
        let report = watcher.reload();
        assert!(report.starts_with("reload rejected: "), "{report}");
        assert!(report.contains("serving gen=2"), "{report}");
        assert_eq!(watcher.index().snapshot().meta.fingerprint, 2);
        assert!(watcher.degraded());
        assert_eq!(
            watcher.health(),
            "health gen=2 degraded=yes reloads=1 rejected=1"
        );
        // Repairing the store (a fresh good publish) clears degraded.
        let repaired = variant(4);
        std::fs::write(&target, repaired.encode()).unwrap();
        assert_eq!(watcher.reload(), "reload gen=3 ok (was gen=2)");
        assert!(!watcher.degraded());
        assert_eq!(
            watcher.health(),
            "health gen=3 degraded=no reloads=2 rejected=1"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tmp_files_are_invisible_to_readers() {
        let dir = tmp("torn");
        let mut publisher = Publisher::open(&dir, None).unwrap();
        publisher.publish(&variant(1)).unwrap();
        // A torn publish: temp written, never renamed.
        std::fs::write(dir.join("gen-00000002.artifact.tmp"), b"half").unwrap();
        std::fs::write(dir.join("CURRENT.tmp"), b"gen-00000009.artifact\n").unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![1]);
        let resolved = resolve_latest(&dir).unwrap();
        assert_eq!(resolved.generation, 1);
        assert!(!resolved.degraded);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
