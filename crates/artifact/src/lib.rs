//! # towerlens-artifact
//!
//! The versioned study-artifact store and the memory-resident query
//! index over it — the read path of the paper's operator workflow.
//!
//! A batch study's engine checkpoints are resume blobs: text, keyed
//! to the stage graph, and only meaningful to the engine that wrote
//! them. This crate promotes the study's *results* to a typed,
//! versioned, independently loadable artifact:
//!
//! * [`format`] — a compact binary snapshot (magic + version +
//!   section table + FNV-1a section checksums) holding per-tower
//!   pattern labels, convex-combination decompositions, the frozen
//!   primary-component basis, the 6-dim spectral feature vectors,
//!   and per-tower expected day profiles. Any single flipped byte is
//!   caught by a checksum with a typed [`ArtifactError`] — decode
//!   never panics and never returns a silently wrong answer.
//! * [`query`] — [`QueryIndex`], the memory-resident index behind
//!   `towerlens query`: `pattern`, `decompose`, `topk` (matrix-free
//!   nearest-neighbour scan in spectral feature space), and `screen`
//!   (z-score anomaly screening of a fresh day), with a batch engine
//!   that fans requests over `towerlens-par` workers and renders
//!   input-order, thread-count-invariant output plus exact `query.*`
//!   counters.
//! * [`store`] — the generation store behind hot reload: `serve`
//!   publishes immutable `gen-N.artifact` files plus an atomic
//!   `CURRENT` pointer, and `query --watch` follows the pointer with
//!   a last-good fallback, never serving bytes that fail their
//!   checksums.
//!
//! The byte layout and compatibility policy are specified in
//! DESIGN.md §14; the overload and degraded-mode policy (admission
//! budgets, virtual-cost deadlines, generation publishing) in §15.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod query;
pub mod store;

pub use format::{
    fnv1a64, fsck_artifact, read_snapshot, sniff_magic, write_snapshot, ArtifactError,
    ArtifactFsck, BasisSection, DayProfile, DecompRow, Meta, SectionFsck, SectionStatus, Snapshot,
    MAGIC, VERSION,
};
pub use query::{
    parse_request, read_day_file, render_decompose, render_pattern, render_screen, render_topk,
    request_cost, run_batch, run_batch_with, run_one, run_one_with, BatchTally, QueryFault,
    QueryIndex, QueryPolicy, Request, ScreenVerdict, DECOMPOSE_SOLVE_UNITS,
};
pub use store::{
    generation_name, list_generations, parse_generation_name, read_current, resolve_latest,
    PublishKill, PublishStage, Publisher, Resolved, Watcher, CURRENT_POINTER,
};
