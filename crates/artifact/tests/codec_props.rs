//! Property tests for the artifact codec (ISSUE 8 satellite):
//!
//! 1. encode → decode is the identity for arbitrary snapshots, and
//!    encode is canonical (re-encoding the decoded value reproduces
//!    the bytes);
//! 2. flipping any single byte anywhere in the file is caught with a
//!    typed [`ArtifactError`] — never a panic, never a silently wrong
//!    answer. For flips inside a section payload the error is
//!    specifically the section checksum. (FNV-1a guarantees this
//!    deterministically for single-byte damage: the xor-then-multiply
//!    step is a bijection, so two bodies differing in one byte can
//!    never hash alike.)

use proptest::prelude::*;
use towerlens_artifact::{ArtifactError, BasisSection, DayProfile, DecompRow, Meta, Snapshot};

/// A tiny deterministic generator so a single drawn seed fans out
/// into a full snapshot (the shim's strategies draw scalars; the
/// structure comes from here).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn f64(&mut self) -> f64 {
        (self.next_u64() % 20_000) as f64 / 1_000.0 - 10.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

fn arbitrary_snapshot(seed: u64, n: usize, k: usize, bins_per_day: usize, days: usize) -> Snapshot {
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(1));
    let n_bins = bins_per_day * days;
    let vectors: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n_bins).map(|_| rng.f64()).collect())
        .collect();
    let with_kinds = rng.below(2) == 0;
    let with_basis = rng.below(2) == 0;
    let n_decomp = rng.below(n as u64 + 1) as usize;
    Snapshot {
        meta: Meta {
            fingerprint: rng.next_u64(),
            window_start_s: rng.below(1 << 40),
            bin_secs: 60 + rng.below(600),
            n_bins,
            k,
            threshold: rng.f64().abs(),
            feature_space: if rng.below(2) == 0 {
                "spectral".into()
            } else {
                "raw".into()
            },
        },
        tower_ids: (0..n as u64).map(|i| i * 7 + rng.below(5)).collect(),
        labels: (0..n).map(|_| rng.below(k as u64) as u32).collect(),
        features: (0..n)
            .map(|_| {
                let mut row = [0.0; 6];
                for slot in &mut row {
                    *slot = rng.f64();
                }
                row
            })
            .collect(),
        centroids: (0..k)
            .map(|_| (0..n_bins).map(|_| rng.f64()).collect())
            .collect(),
        kinds: with_kinds.then(|| (0..k).map(|i| format!("Kind{}", i % 5)).collect()),
        basis: with_basis.then(|| BasisSection {
            representatives: [
                rng.below(n as u64) as usize,
                rng.below(n as u64) as usize,
                rng.below(n as u64) as usize,
                rng.below(n as u64) as usize,
            ],
            vertices: [
                [rng.f64(), rng.f64(), rng.f64()],
                [rng.f64(), rng.f64(), rng.f64()],
                [rng.f64(), rng.f64(), rng.f64()],
                [rng.f64(), rng.f64(), rng.f64()],
            ],
        }),
        decompositions: (0..n_decomp)
            .map(|i| DecompRow {
                vector_index: i,
                coefficients: [rng.f64(), rng.f64(), rng.f64(), rng.f64()],
                residual_sqr: rng.f64().abs(),
                ntf_idf: [rng.f64(), rng.f64(), rng.f64(), rng.f64()],
            })
            .collect(),
        profile: DayProfile::from_vectors(&vectors, bins_per_day),
    }
}

/// Byte offset where section payloads start (right after the header
/// checksum), read back from the encoded header itself.
fn payload_start(bytes: &[u8]) -> usize {
    let n = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    16 + 32 * n + 8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_identity_and_encode_is_canonical(
        seed in 0u64..1_000_000,
        n in 1usize..=9,
        k in 1usize..=4,
        bins in 2usize..=6,
        days in 1usize..=3,
    ) {
        let snap = arbitrary_snapshot(seed, n, k, bins, days);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(&snap, &decoded);
        prop_assert_eq!(bytes, decoded.encode());
    }

    #[test]
    fn any_single_flipped_byte_is_a_typed_error(
        seed in 0u64..1_000_000,
        n in 1usize..=6,
        k in 1usize..=3,
        pos_frac in 0.0f64..1.0,
        xor in 1u64..=255,
    ) {
        let snap = arbitrary_snapshot(seed, n, k, 3, 2);
        let mut bytes = snap.encode();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= xor as u8;
        match Snapshot::decode(&bytes) {
            Ok(_) => {
                return Err(TestCaseError::fail(format!(
                    "flip at byte {pos} of {} decoded silently",
                    bytes.len()
                )));
            }
            Err(e) => {
                // Payload damage must be attributed to its section's
                // checksum, not merely fail somehow.
                if pos >= payload_start(&bytes) {
                    prop_assert!(
                        matches!(e, ArtifactError::SectionChecksum { .. }),
                        "payload flip at byte {} raised {:?}, not a section checksum",
                        pos,
                        e
                    );
                }
            }
        }
    }
}
