//! Error types for the clustering substrate.

/// Errors produced by clustering operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No data points were supplied.
    EmptyInput,
    /// Points have inconsistent dimensionality.
    DimensionMismatch {
        /// Dimensionality of the first point.
        expected: usize,
        /// Dimensionality of the offending point.
        actual: usize,
        /// Index of the offending point.
        index: usize,
    },
    /// A point contained NaN/∞.
    NonFinite {
        /// Index of the offending point.
        index: usize,
    },
    /// Requested more clusters than there are points.
    TooManyClusters {
        /// Requested cluster count.
        requested: usize,
        /// Available points.
        available: usize,
    },
    /// `k = 0` requested.
    ZeroClusters,
    /// A condensed distance buffer had the wrong length for its
    /// declared point count.
    CondensedLengthMismatch {
        /// Declared point count.
        n: usize,
        /// `n·(n−1)/2`, the length a condensed buffer over `n` points
        /// must have.
        expected: usize,
        /// Length of the buffer actually supplied.
        actual: usize,
    },
    /// An internal invariant failed (a bug; included so library users
    /// get an error, never a panic).
    Internal(&'static str),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::EmptyInput => write!(f, "no data points supplied"),
            ClusterError::DimensionMismatch {
                expected,
                actual,
                index,
            } => write!(
                f,
                "point {index} has dimension {actual}, expected {expected}"
            ),
            ClusterError::NonFinite { index } => {
                write!(f, "point {index} contains a non-finite coordinate")
            }
            ClusterError::TooManyClusters {
                requested,
                available,
            } => write!(f, "requested {requested} clusters from {available} points"),
            ClusterError::ZeroClusters => write!(f, "requested zero clusters"),
            ClusterError::CondensedLengthMismatch {
                n,
                expected,
                actual,
            } => write!(
                f,
                "condensed distance buffer for {n} points must hold {expected} entries, got {actual}"
            ),
            ClusterError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Validates a point set: non-empty, consistent dimension, finite.
pub(crate) fn validate_points(points: &[Vec<f64>]) -> Result<usize, ClusterError> {
    let first = points.first().ok_or(ClusterError::EmptyInput)?;
    let dim = first.len();
    for (index, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(ClusterError::DimensionMismatch {
                expected: dim,
                actual: p.len(),
                index,
            });
        }
        if p.iter().any(|v| !v.is_finite()) {
            return Err(ClusterError::NonFinite { index });
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_all_failure_modes() {
        assert_eq!(validate_points(&[]), Err(ClusterError::EmptyInput));
        assert_eq!(
            validate_points(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ClusterError::DimensionMismatch {
                expected: 1,
                actual: 2,
                index: 1
            })
        );
        assert_eq!(
            validate_points(&[vec![1.0], vec![f64::NAN]]),
            Err(ClusterError::NonFinite { index: 1 })
        );
        assert_eq!(validate_points(&[vec![1.0, 2.0], vec![3.0, 4.0]]), Ok(2));
    }

    #[test]
    fn display_mentions_indices() {
        let e = ClusterError::NonFinite { index: 42 };
        assert!(e.to_string().contains("42"));
    }
}
