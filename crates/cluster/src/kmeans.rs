//! K-means(++) baseline.
//!
//! The paper uses hierarchical clustering because the number of
//! patterns is unknown a priori; k-means is the natural baseline an
//! evaluation should compare against (and our benchmark ablation
//! does). Lloyd iterations with k-means++ seeding, deterministic given
//! the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dendrogram::Clustering;
use crate::distance::sq_euclidean;
use crate::error::{validate_points, ClusterError};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Flat assignment of points to clusters.
    pub clustering: Clustering,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared member→centroid distances (inertia).
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Whether the assignment reached a fixed point before
    /// `max_iters`.
    pub converged: bool,
}

/// Runs k-means++ / Lloyd.
///
/// * `k` — number of clusters (1 ≤ k ≤ n),
/// * `max_iters` — Lloyd iteration cap,
/// * `seed` — RNG seed for the ++ initialisation (runs are fully
///   deterministic given the same inputs and seed).
///
/// Empty clusters are re-seeded with the point farthest from its
/// centroid, so the result always has exactly `k` non-empty clusters
/// when `k ≤ n`.
///
/// # Errors
/// Input validation failures, [`ClusterError::ZeroClusters`], or
/// [`ClusterError::TooManyClusters`].
pub fn kmeans(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    seed: u64,
) -> Result<KmeansResult, ClusterError> {
    let dim = validate_points(points)?;
    let n = points.len();
    if k == 0 {
        return Err(ClusterError::ZeroClusters);
    }
    if k > n {
        return Err(ClusterError::TooManyClusters {
            requested: k,
            available: n,
        });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = plus_plus_init(points, k, &mut rng);
    let mut labels = vec![0usize; n];
    let mut converged = false;
    let mut iterations = 0;

    for _ in 0..max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = nearest(p, &centroids);
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            counts[l] += 1;
            for (s, v) in sums[l].iter_mut().zip(p) {
                *s += v;
            }
        }
        let mut reseeded: Vec<usize> = Vec::new();
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest
                // from its currently assigned centroid, skipping points
                // already used to re-seed another empty cluster this
                // round (otherwise two empty clusters would grab the
                // same point and stay duplicated).
                let far = points
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !reseeded.contains(i))
                    .map(|(i, p)| (i, sq_euclidean(p, &centroids[labels[i]])))
                    .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .expect("non-empty points");
                reseeded.push(far);
                centroids[c] = points[far].clone();
                changed = true;
            } else {
                for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cv = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&labels)
        .map(|(p, &l)| sq_euclidean(p, &centroids[l]))
        .sum();

    // Labels may not be consecutive if a cluster ended empty on the
    // final assignment; compact them.
    let clustering = compact(labels)?;
    Ok(KmeansResult {
        clustering,
        centroids,
        inertia,
        iterations,
        converged,
    })
}

/// k-means++ seeding: first centroid uniform, subsequent ones sampled
/// with probability proportional to squared distance to the nearest
/// chosen centroid.
fn plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| sq_euclidean(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick any.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.push(points[chosen].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_euclidean(p, centroids.last().expect("just pushed"));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[inline]
fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, cent) in centroids.iter().enumerate() {
        let d = sq_euclidean(p, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Compacts arbitrary labels into consecutive-from-zero form.
fn compact(labels: Vec<usize>) -> Result<Clustering, ClusterError> {
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    let compacted: Vec<usize> = labels
        .into_iter()
        .map(|l| {
            *map.entry(l).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        })
        .collect();
    Clustering::from_labels(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for center in [0.0, 50.0, 100.0] {
            for i in 0..7 {
                pts.push(vec![center + 0.5 * (i as f64 - 3.0), center * 0.1]);
            }
        }
        pts
    }

    #[test]
    fn recovers_blobs() {
        let r = kmeans(&blobs(), 3, 100, 7).unwrap();
        assert!(r.converged);
        assert_eq!(r.clustering.k, 3);
        let sizes = r.clustering.sizes();
        assert_eq!(sizes, vec![7, 7, 7].into_iter().collect::<Vec<_>>());
        // All points of one blob share a label.
        for blob in 0..3 {
            let l = r.clustering.labels[blob * 7];
            for i in 0..7 {
                assert_eq!(r.clustering.labels[blob * 7 + i], l);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kmeans(&blobs(), 3, 100, 42).unwrap();
        let b = kmeans(&blobs(), 3, 100, 42).unwrap();
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = blobs();
        let i2 = kmeans(&pts, 2, 100, 1).unwrap().inertia;
        let i3 = kmeans(&pts, 3, 100, 1).unwrap().inertia;
        let i6 = kmeans(&pts, 6, 100, 1).unwrap().inertia;
        assert!(i3 < i2);
        assert!(i6 <= i3);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![5.0]];
        let r = kmeans(&pts, 3, 100, 3).unwrap();
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let r = kmeans(&pts, 1, 10, 0).unwrap();
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_k_rejected() {
        let pts = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            kmeans(&pts, 0, 10, 0),
            Err(ClusterError::ZeroClusters)
        ));
        assert!(matches!(
            kmeans(&pts, 3, 10, 0),
            Err(ClusterError::TooManyClusters { .. })
        ));
    }

    #[test]
    fn duplicate_points_dont_crash_plus_plus() {
        let pts = vec![vec![1.0]; 10];
        let r = kmeans(&pts, 3, 10, 0).unwrap();
        assert!(r.inertia < 1e-12);
    }
}
