//! Comparing two clusterings: Rand index, adjusted Rand index, and
//! purity.
//!
//! The paper validates its clusters against POI ground truth
//! qualitatively; the reproduction can do better because the synthetic
//! city *has* labels. These indices quantify how close a discovered
//! partition is to the ground truth (or to another algorithm's output
//! in the ablations).

use crate::dendrogram::Clustering;
use crate::error::ClusterError;

/// Contingency table between two clusterings over the same points.
fn contingency(a: &Clustering, b: &Clustering) -> Result<Vec<Vec<usize>>, ClusterError> {
    if a.labels.len() != b.labels.len() {
        return Err(ClusterError::Internal(
            "clusterings cover different point counts",
        ));
    }
    let mut table = vec![vec![0usize; b.k]; a.k];
    for (&la, &lb) in a.labels.iter().zip(&b.labels) {
        table[la][lb] += 1;
    }
    Ok(table)
}

fn choose2(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Rand index ∈ [0, 1]: the fraction of point pairs on which the two
/// clusterings agree (same-cluster vs different-cluster).
///
/// # Errors
/// [`ClusterError::Internal`] if the clusterings cover different
/// numbers of points.
pub fn rand_index(a: &Clustering, b: &Clustering) -> Result<f64, ClusterError> {
    let table = contingency(a, b)?;
    let n = a.labels.len();
    if n < 2 {
        return Ok(1.0);
    }
    let sum_nij: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&v| choose2(v))
        .sum();
    let sum_ai: f64 = table.iter().map(|row| choose2(row.iter().sum())).sum();
    let sum_bj: f64 = (0..b.k)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum()))
        .sum();
    let total = choose2(n);
    // Agreements = pairs together in both + pairs apart in both.
    let agree = sum_nij + (total - sum_ai - sum_bj + sum_nij);
    Ok(agree / total)
}

/// Adjusted Rand index (Hubert & Arabie): chance-corrected agreement,
/// 1 for identical partitions, ≈0 for independent ones (can be
/// negative).
///
/// # Errors
/// As for [`rand_index`].
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> Result<f64, ClusterError> {
    let table = contingency(a, b)?;
    let n = a.labels.len();
    if n < 2 {
        return Ok(1.0);
    }
    let sum_nij: f64 = table
        .iter()
        .flat_map(|row| row.iter())
        .map(|&v| choose2(v))
        .sum();
    let sum_ai: f64 = table.iter().map(|row| choose2(row.iter().sum())).sum();
    let sum_bj: f64 = (0..b.k)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum()))
        .sum();
    let total = choose2(n);
    let expected = sum_ai * sum_bj / total;
    let max_index = (sum_ai + sum_bj) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate (e.g. both single-cluster): identical ⇒ 1.
        return Ok(if sum_nij == max_index { 1.0 } else { 0.0 });
    }
    Ok((sum_nij - expected) / (max_index - expected))
}

/// Purity of `a` with respect to reference `b`: each cluster of `a`
/// votes for its majority reference class; purity is the fraction of
/// points covered by those majorities.
///
/// # Errors
/// As for [`rand_index`].
pub fn purity(a: &Clustering, b: &Clustering) -> Result<f64, ClusterError> {
    let table = contingency(a, b)?;
    let n = a.labels.len();
    if n == 0 {
        return Ok(1.0);
    }
    let majority: usize = table
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    Ok(majority as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: Vec<usize>) -> Clustering {
        Clustering::from_labels(labels).unwrap()
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = c(vec![0, 0, 1, 1, 2]);
        assert_eq!(rand_index(&a, &a).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a).unwrap(), 1.0);
        assert_eq!(purity(&a, &a).unwrap(), 1.0);
    }

    #[test]
    fn permuted_labels_still_score_one() {
        let a = c(vec![0, 0, 1, 1, 2, 2]);
        let b = c([0, 0, 1, 1, 2, 2].iter().map(|&l| (l + 1) % 3).collect());
        assert_eq!(rand_index(&a, &b).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn disjoint_partitions_score_low() {
        // a puts everything together, b splits into singletons.
        let a = c(vec![0, 0, 0, 0]);
        let b = c(vec![0, 1, 2, 3]);
        let ri = rand_index(&a, &b).unwrap();
        assert!(ri < 0.2, "ri {ri}");
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari.abs() < 1e-9, "ari {ari}");
    }

    #[test]
    fn ari_is_chance_corrected() {
        // A random-ish split of two balanced clusters: RI is ~0.5 but
        // ARI ~0.
        let truth = c(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let random = c(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let ri = rand_index(&truth, &random).unwrap();
        let ari = adjusted_rand_index(&truth, &random).unwrap();
        assert!(ri > 0.3);
        assert!(ari < 0.1, "ari {ari}");
    }

    #[test]
    fn purity_is_directional() {
        // Singletons are perfectly pure against anything.
        let a = c(vec![0, 1, 2, 3]);
        let b = c(vec![0, 0, 1, 1]);
        assert_eq!(purity(&a, &b).unwrap(), 1.0);
        assert_eq!(purity(&b, &a).unwrap(), 0.5);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let truth = c(vec![0, 0, 0, 1, 1, 1]);
        let close = c(vec![0, 0, 1, 1, 1, 1]); // one point moved
        let ri = rand_index(&truth, &close).unwrap();
        let ari = adjusted_rand_index(&truth, &close).unwrap();
        assert!(ri > 0.6 && ri < 1.0, "ri {ri}");
        assert!(ari > 0.2 && ari < 1.0, "ari {ari}");
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = c(vec![0, 1]);
        let b = c(vec![0, 1, 0]);
        assert!(rand_index(&a, &b).is_err());
        assert!(adjusted_rand_index(&a, &b).is_err());
        assert!(purity(&a, &b).is_err());
    }

    #[test]
    fn single_point_partitions() {
        let a = c(vec![0]);
        assert_eq!(rand_index(&a, &a).unwrap(), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a).unwrap(), 1.0);
    }
}
