//! Exact-pruning spatial index over low-dimensional feature spaces.
//!
//! [`SpatialIndex`] is a static bounding-box k-d tree built once over a
//! point set (the 6-dim amplitude–phase spectral features at paper
//! scale). It answers nearest-neighbour and top-k queries by
//! branch-and-bound: a subtree is skipped only when a *provable* lower
//! bound on every distance inside it exceeds the current best — so the
//! result (indices, distances, tie order) is bit-identical to the
//! brute-force linear scan over the same kernel.
//!
//! The exactness argument (DESIGN.md §16, in brief): the per-dimension
//! box gap `max(0, blo−qhi, qlo−bhi)` is computed with the same
//! floating-point ops and termwise-dominated inputs as the kernel's
//! per-dimension difference, and the gaps are squared and summed in
//! the *identical lane structure* as [`sq_euclidean`]'s scalar
//! reference. IEEE-754 rounding is monotone, so every intermediate of
//! the bound is ≤ the corresponding intermediate of the kernel applied
//! to any point in the box — the computed bound never exceeds any
//! computed distance. Pruning is strict (`bound > best`); on equality
//! the subtree is descended, which preserves the lowest-index
//! tie-break of the linear scan.
//!
//! [`IndexedMetric`] wires the tree into the nn-chain engine as a
//! [`DistanceSource`]: leaf-level nearest-neighbour queries become
//! pruned descents, while Lance–Williams rows for merged clusters are
//! maintained exactly as [`OnDemandMetric`](crate::source::OnDemandMetric)
//! does (same writes, same reads), so dendrograms are bit-identical.
//! Merged clusters are tracked with axis-aligned bounding boxes (the
//! O(1) union of their members' boxes); for the linkages whose
//! cluster distance provably dominates the box gap (single, complete,
//! average — not Ward, whose recurrence subtracts), queries *from* a
//! merged cluster also prune through the tree, with a deflation guard
//! on the bound that covers the linkage recurrence's rounding (see
//! [`MERGED_DEFLATE`]).
//!
//! Note the information-theoretic floor this module does *not* (and
//! cannot) cross: every average-linkage merge height depends on all
//! leaf distances crossing that merge, so any exact algorithm must
//! evaluate all n(n−1)/2 leaf pairs — the Lance–Williams loop already
//! performs exactly that floor, once per pair. What the index removes
//! is the *other* half of the work: the nearest-neighbour rescans,
//! which dominate wall time and evaluations at scale.

use towerlens_obs::LazyCounter;

use crate::agglomerative::Linkage;
use crate::distance::{sq_euclidean, sq_euclidean6_batch, BATCH6};
use crate::source::{DistanceSource, LwRows, TopK};

/// Tree nodes touched by index queries, across all runs.
static INDEX_NODES_VISITED: LazyCounter = LazyCounter::new("cluster.index.nodes_visited");
/// Subtrees skipped because their lower bound exceeded the best
/// candidate, across all runs.
static INDEX_PRUNED: LazyCounter = LazyCounter::new("cluster.index.pruned_subtrees");
/// Leaf-distance evaluations performed by [`IndexedMetric`] (the
/// indexed counterpart of `cluster.distance.on_demand_evaluations`).
static INDEX_LEAF_EVALS: LazyCounter = LazyCounter::new("cluster.index.leaf_evaluations");

/// Points per k-d tree leaf bucket: small enough that a bucket scan is
/// a handful of kernel calls, large enough to amortise the descent
/// (and to fill the batched 6-dim kernel, [`BATCH6`] lanes at a time).
const LEAF_BUCKET: usize = 8;

/// Deflation factor applied to box lower bounds when the *query* side
/// is a merged cluster, i.e. when candidate values come from the
/// Lance–Williams recurrence instead of the kernel. Each recurrence
/// level of the average linkage performs ≤ 3 rounded ops on values
/// that are termwise ≥ the bound, so a cluster of depth `h` can sit
/// below the real bound by at most a relative `3·h·ε`. With ε = 2⁻⁵³
/// and h < 2²⁶/3 (far beyond any practical n), multiplying the bound
/// by `1 − 2⁻²⁶` provably re-establishes `bound ≤ value`. Single and
/// complete linkage (min/max, exact in floating point) need no slack
/// but share the same guard for simplicity.
const MERGED_DEFLATE: f64 = 1.0 - 1.0 / (1u64 << 26) as f64;

/// Sentinel for "no node" / "no candidate".
const NONE: u32 = u32::MAX;

/// Row-major access to point coordinates — the minimal surface the
/// index needs. Implemented for the pipeline's `[Vec<f64>]` feature
/// matrices and the artifact snapshot's `[[f64; 6]]` rows.
pub trait PointSet {
    /// Number of points.
    fn len(&self) -> usize;
    /// `true` when the set has no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Coordinates of point `i`.
    fn row(&self, i: usize) -> &[f64];
}

impl PointSet for [Vec<f64>] {
    fn len(&self) -> usize {
        <[Vec<f64>]>::len(self)
    }
    fn row(&self, i: usize) -> &[f64] {
        &self[i]
    }
}

impl PointSet for [[f64; 6]] {
    fn len(&self) -> usize {
        <[[f64; 6]]>::len(self)
    }
    fn row(&self, i: usize) -> &[f64] {
        &self[i]
    }
}

/// Query-side work counters, accumulated per search and flushed to the
/// `cluster.index.*` counters by the owning structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Tree nodes examined (root counts once per search).
    pub nodes_visited: u64,
    /// Subtrees skipped by the lower-bound test.
    pub pruned_subtrees: u64,
}

impl SearchStats {
    /// Adds another stats record into this one.
    pub fn absorb(&mut self, other: SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.pruned_subtrees += other.pruned_subtrees;
    }
}

#[derive(Debug, Clone)]
struct Node {
    /// Axis-aligned bounding box of the subtree's points.
    lo: Box<[f64]>,
    hi: Box<[f64]>,
    /// Child node ids; `NONE` marks a leaf.
    left: u32,
    right: u32,
    /// Leaf bucket range in `order` (leaves only).
    start: u32,
    end: u32,
}

/// A static bounding-box k-d tree with point deactivation.
///
/// Built once over a point set; points are removed (never added) as
/// cluster slots merge away, and empty subtrees are skipped in O(1)
/// via live counts. Queries take the candidate evaluator as a closure,
/// so the same tree serves kernel-valued leaf queries and
/// row-valued merged-cluster queries.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    dim: usize,
    nodes: Vec<Node>,
    /// Point ids in leaf-bucket-contiguous order.
    order: Vec<u32>,
    /// Leaf bucket coordinates, transposed per bucket for the batched
    /// kernel: for a bucket at `order[s..e]`, `coords[s*dim..e*dim]`
    /// holds dimension-major lanes (`d*width + lane`).
    coords: Vec<f64>,
    /// Untransposed point rows by id (generic-dimension query path).
    flat: Vec<f64>,
    /// Leaf node id holding each point.
    leaf_of: Vec<u32>,
    /// Parent node id per node (`NONE` at the root).
    parent: Vec<u32>,
    active: Vec<bool>,
    /// Active points per subtree.
    live: Vec<u32>,
}

impl SpatialIndex {
    /// Builds the tree over a point set. Deterministic: splits choose
    /// the widest axis and the exact median of `(coordinate, index)`,
    /// so the structure is a pure function of the input.
    pub fn build<P: PointSet + ?Sized>(points: &P) -> SpatialIndex {
        let n = points.len();
        let dim = if n == 0 { 0 } else { points.row(0).len() };
        let mut flat = Vec::with_capacity(n * dim);
        for i in 0..n {
            flat.extend_from_slice(points.row(i));
        }
        let mut index = SpatialIndex {
            dim,
            nodes: Vec::new(),
            order: Vec::with_capacity(n),
            coords: Vec::with_capacity(n * dim),
            flat,
            leaf_of: vec![NONE; n],
            parent: Vec::new(),
            active: vec![true; n],
            live: Vec::new(),
        };
        if n == 0 {
            return index;
        }
        let mut ids: Vec<u32> = (0..n as u32).collect();
        index.split(points, &mut ids, NONE);
        index
    }

    /// Recursively builds the subtree over `ids`, returning its node id.
    fn split<P: PointSet + ?Sized>(&mut self, points: &P, ids: &mut [u32], parent: u32) -> u32 {
        let node_id = self.nodes.len() as u32;
        let mut lo = vec![f64::INFINITY; self.dim].into_boxed_slice();
        let mut hi = vec![f64::NEG_INFINITY; self.dim].into_boxed_slice();
        for &p in ids.iter() {
            for (d, &c) in points.row(p as usize).iter().enumerate() {
                lo[d] = lo[d].min(c);
                hi[d] = hi[d].max(c);
            }
        }
        self.nodes.push(Node {
            lo,
            hi,
            left: NONE,
            right: NONE,
            start: 0,
            end: 0,
        });
        self.parent.push(parent);
        self.live.push(ids.len() as u32);
        if ids.len() <= LEAF_BUCKET {
            let start = self.order.len() as u32;
            for &p in ids.iter() {
                self.order.push(p);
                self.leaf_of[p as usize] = node_id;
            }
            let end = self.order.len() as u32;
            // Transposed bucket lanes for the batched kernel.
            let width = ids.len();
            let base = self.coords.len();
            self.coords.resize(base + width * self.dim, 0.0);
            for (lane, &p) in ids.iter().enumerate() {
                for (d, &c) in points.row(p as usize).iter().enumerate() {
                    self.coords[base + d * width + lane] = c;
                }
            }
            let node = &mut self.nodes[node_id as usize];
            node.start = start;
            node.end = end;
            return node_id;
        }
        // Widest axis, median split; ties in the sort break by point
        // index so the permutation is deterministic.
        let node = &self.nodes[node_id as usize];
        let axis = (0..self.dim)
            .max_by(|&a, &b| (node.hi[a] - node.lo[a]).total_cmp(&(node.hi[b] - node.lo[b])))
            .unwrap_or(0);
        ids.sort_unstable_by(|&a, &b| {
            points.row(a as usize)[axis]
                .total_cmp(&points.row(b as usize)[axis])
                .then(a.cmp(&b))
        });
        let mid = ids.len() / 2;
        let (left_ids, right_ids) = ids.split_at_mut(mid);
        let left = self.split(points, left_ids, node_id);
        let right = self.split(points, right_ids, node_id);
        let node = &mut self.nodes[node_id as usize];
        node.left = left;
        node.right = right;
        node_id
    }

    /// Number of points the tree was built over.
    #[must_use]
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// `true` when built over zero points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Active (not yet deactivated) points.
    #[must_use]
    pub fn live(&self) -> usize {
        if self.nodes.is_empty() {
            0
        } else {
            self.live[0] as usize
        }
    }

    /// Removes point `i` from all future query results. Idempotent.
    pub fn deactivate(&mut self, i: usize) {
        if !self.active[i] {
            return;
        }
        self.active[i] = false;
        let mut node = self.leaf_of[i];
        while node != NONE {
            self.live[node as usize] -= 1;
            node = self.parent[node as usize];
        }
    }

    /// The nearest active point to the query box `[qlo, qhi]`
    /// (a point query passes the same slice twice), excluding point
    /// `exclude`, as `(index, value)` minimising `(value, index)`
    /// lexicographically — exactly the candidate an ascending linear
    /// scan with `<` updates would keep.
    ///
    /// `value` produces the candidate's distance; `deflate` scales the
    /// box lower bound before the prune test (`1.0` when values come
    /// straight from the kernel, [`MERGED_DEFLATE`] when they come
    /// from a linkage recurrence, `0.0` to disable pruning).
    pub fn nearest(
        &self,
        qlo: &[f64],
        qhi: &[f64],
        deflate: f64,
        exclude: usize,
        stats: &mut SearchStats,
        value: &mut dyn FnMut(usize) -> f64,
    ) -> Option<(usize, f64)> {
        if self.nodes.is_empty() || self.live() == 0 {
            return None;
        }
        let mut best = (f64::INFINITY, NONE);
        self.nearest_in(0, qlo, qhi, deflate, exclude, stats, value, &mut best);
        (best.1 != NONE).then_some((best.1 as usize, best.0))
    }

    #[allow(clippy::too_many_arguments)]
    fn nearest_in(
        &self,
        node_id: u32,
        qlo: &[f64],
        qhi: &[f64],
        deflate: f64,
        exclude: usize,
        stats: &mut SearchStats,
        value: &mut dyn FnMut(usize) -> f64,
        best: &mut (f64, u32),
    ) {
        stats.nodes_visited += 1;
        let node = &self.nodes[node_id as usize];
        if node.left == NONE {
            for &p in &self.order[node.start as usize..node.end as usize] {
                if p as usize == exclude || !self.active[p as usize] {
                    continue;
                }
                let v = value(p as usize);
                if v < best.0 || (v == best.0 && p < best.1) {
                    *best = (v, p);
                }
            }
            return;
        }
        // Visit the nearer child first so `best` tightens before the
        // other side's prune test; result is order-independent because
        // the selection minimises (value, index) over all survivors.
        let children = [node.left, node.right];
        let bounds = children.map(|c| {
            let child = &self.nodes[c as usize];
            sq_box_gap(qlo, qhi, &child.lo, &child.hi).sqrt() * deflate
        });
        let nearer = usize::from(bounds[1] < bounds[0]);
        for side in [nearer, 1 - nearer] {
            let child = children[side];
            if self.live[child as usize] == 0 {
                continue;
            }
            if bounds[side] > best.0 {
                stats.pruned_subtrees += 1;
                continue;
            }
            self.nearest_in(child, qlo, qhi, deflate, exclude, stats, value, best);
        }
    }

    /// The `k` nearest active points to query point `q` (excluding
    /// `exclude`), pruned through the tree and evaluated with the
    /// batched 6-dim kernel where the dimension allows — bit-identical
    /// to [`crate::source::top_k_nearest`] over the same points.
    /// Returns `(index, distance)` ascending by `(distance, index)`.
    pub fn top_k(
        &self,
        q: &[f64],
        k: usize,
        exclude: usize,
        stats: &mut SearchStats,
    ) -> Vec<(usize, f64)> {
        let mut top = TopK::new(k);
        self.top_k_into(q, exclude, stats, &mut top);
        top.into_sorted()
    }

    /// [`SpatialIndex::top_k`] into a caller-owned accumulator (reset
    /// beforehand with [`TopK::reset`]); lets batch servers reuse
    /// scratch buffers across queries. The accumulator's retention
    /// bound is its `k`.
    pub fn top_k_into(&self, q: &[f64], exclude: usize, stats: &mut SearchStats, top: &mut TopK) {
        if top.capacity() == 0 || self.nodes.is_empty() || self.live() == 0 {
            return;
        }
        self.top_k_in(0, q, exclude, stats, top);
    }

    fn top_k_in(
        &self,
        node_id: u32,
        q: &[f64],
        exclude: usize,
        stats: &mut SearchStats,
        top: &mut TopK,
    ) {
        stats.nodes_visited += 1;
        let node = &self.nodes[node_id as usize];
        if node.left == NONE {
            self.scan_bucket(node, q, exclude, top);
            return;
        }
        let children = [node.left, node.right];
        let bounds = children.map(|c| {
            let child = &self.nodes[c as usize];
            sq_box_gap(q, q, &child.lo, &child.hi).sqrt()
        });
        let nearer = usize::from(bounds[1] < bounds[0]);
        for side in [nearer, 1 - nearer] {
            let child = children[side];
            if self.live[child as usize] == 0 {
                continue;
            }
            if let Some((worst, _)) = top.worst() {
                if bounds[side] > worst {
                    stats.pruned_subtrees += 1;
                    continue;
                }
            }
            self.top_k_in(child, q, exclude, stats, top);
        }
    }

    /// Evaluates one leaf bucket against a point query, offering every
    /// active candidate to the accumulator. Uses the transposed-lane
    /// batched kernel for 6-dim points; each lane reproduces the
    /// sequential scalar sum bit-for-bit.
    fn scan_bucket(&self, node: &Node, q: &[f64], exclude: usize, top: &mut TopK) {
        let (start, end) = (node.start as usize, node.end as usize);
        let bucket = &self.order[start..end];
        let width = end - start;
        if self.dim == 6 && width > 0 {
            let q6: &[f64; 6] = q.try_into().expect("6-dim query");
            let lanes = &self.coords[start * 6..end * 6];
            let mut offset = 0;
            while offset < width {
                let take = (width - offset).min(BATCH6);
                let sq = sq_euclidean6_batch(q6, lanes, width, offset, take);
                for (lane, &sqd) in sq.iter().enumerate().take(take) {
                    let p = bucket[offset + lane];
                    if p as usize == exclude || !self.active[p as usize] {
                        continue;
                    }
                    top.offer(p as usize, sqd.sqrt());
                }
                offset += take;
            }
            return;
        }
        for &p in bucket {
            if p as usize == exclude || !self.active[p as usize] {
                continue;
            }
            let d = sq_euclidean(q, self.row_of(p as usize)).sqrt();
            top.offer(p as usize, d);
        }
    }

    /// A point's coordinates (untransposed copy kept for the generic
    /// non-6-dim query path; 6 × 8 bytes per point, negligible next to
    /// the tree itself).
    fn row_of(&self, p: usize) -> &[f64] {
        &self.flat[p * self.dim..(p + 1) * self.dim]
    }
}

/// Lower bound on the squared distance between any point of box
/// `[qlo, qhi]` and any point of box `[blo, bhi]`, computed with the
/// exact lane structure of the scalar kernel so that every
/// intermediate is ≤ the kernel's intermediate for any realised pair
/// (IEEE-754 rounding is monotone; see the module docs).
fn sq_box_gap(qlo: &[f64], qhi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    let dim = qlo.len();
    let gap = |d: usize| -> f64 {
        let c = (blo[d] - qhi[d]).max(qlo[d] - bhi[d]).max(0.0);
        c * c
    };
    let m = dim - dim % 8;
    let mut lanes = [0.0f64; 8];
    let mut k = 0;
    while k < m {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += gap(k + l);
        }
        k += 8;
    }
    let mut tail = 0.0f64;
    while k < dim {
        tail += gap(k);
        k += 1;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// The indexed matrix-free distance source: leaf distances on demand
/// through the kernel, Lance–Williams rows for merged clusters exactly
/// as [`OnDemandMetric`](crate::source::OnDemandMetric) keeps them,
/// and nearest-neighbour queries answered through the [`SpatialIndex`]
/// instead of a linear scan. Bit-identical dendrograms; orders of
/// magnitude fewer scan evaluations.
#[derive(Debug)]
pub struct IndexedMetric<'a> {
    points: &'a [Vec<f64>],
    rows: LwRows,
    tree: SpatialIndex,
    /// Active merged slots, ascending. These are scanned linearly per
    /// query (they are few — live Lance–Williams rows) with their own
    /// box pre-check when the linkage allows it.
    merged: Vec<usize>,
    /// Bounding box per merged slot (`lo ++ hi`, `2·dim` values).
    boxes: Vec<Option<Box<[f64]>>>,
    /// Whether merged-cluster values provably dominate the box gap
    /// (true for single/complete/average; false for Ward, whose
    /// recurrence subtracts and can cancel below any a-priori bound).
    merged_prunable: bool,
    evaluations: u64,
    stats: SearchStats,
}

impl<'a> IndexedMetric<'a> {
    /// Builds the index over the point set. `linkage` gates whether
    /// queries from merged clusters may prune (see module docs).
    pub fn new(points: &'a [Vec<f64>], linkage: Linkage) -> IndexedMetric<'a> {
        let n = points.len();
        IndexedMetric {
            points,
            rows: LwRows::new(n),
            tree: SpatialIndex::build(points),
            merged: Vec::new(),
            boxes: vec![None; n],
            merged_prunable: !matches!(linkage, Linkage::Ward),
            evaluations: 0,
            stats: SearchStats::default(),
        }
    }

    /// Leaf-distance evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Query-side work counters accumulated so far.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Lance–Williams rows currently allocated (live merged clusters).
    pub fn live_rows(&self) -> usize {
        self.rows.live()
    }
}

impl DistanceSource for IndexedMetric<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn get(&mut self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        if let Some(v) = self.rows.read(i, j) {
            return v;
        }
        self.evaluations += 1;
        sq_euclidean(&self.points[i], &self.points[j]).sqrt()
    }

    fn set(&mut self, i: usize, j: usize, v: f64) {
        self.rows.set(i, j, v);
    }

    fn retire(&mut self, slot: usize) {
        self.rows.retire(slot);
        if self.boxes[slot].take().is_some() {
            if let Ok(at) = self.merged.binary_search(&slot) {
                self.merged.remove(at);
            }
        } else {
            self.tree.deactivate(slot);
        }
    }

    fn promote(&mut self, survivor: usize, absorbed: usize) {
        let dim = self.points.first().map_or(0, Vec::len);
        let mut joined = match self.boxes[survivor].take() {
            Some(b) => b,
            None => {
                // A leaf becomes an internal cluster: leave the tree,
                // seed the box from the point.
                self.tree.deactivate(survivor);
                if let Err(at) = self.merged.binary_search(&survivor) {
                    self.merged.insert(at, survivor);
                }
                let row = &self.points[survivor];
                let mut b = vec![0.0; 2 * dim].into_boxed_slice();
                b[..dim].copy_from_slice(row);
                b[dim..].copy_from_slice(row);
                b
            }
        };
        match &self.boxes[absorbed] {
            Some(other) => {
                for d in 0..dim {
                    joined[d] = joined[d].min(other[d]);
                    joined[dim + d] = joined[dim + d].max(other[dim + d]);
                }
            }
            None => {
                for (d, &c) in self.points[absorbed].iter().enumerate() {
                    joined[d] = joined[d].min(c);
                    joined[dim + d] = joined[dim + d].max(c);
                }
            }
        }
        self.boxes[survivor] = Some(joined);
    }

    fn nearest_active(
        &mut self,
        top: usize,
        active: &[bool],
        prev: Option<usize>,
    ) -> Option<(usize, f64)> {
        let dim = self.points.first().map_or(0, Vec::len);
        let IndexedMetric {
            points,
            rows,
            tree,
            merged,
            boxes,
            merged_prunable,
            evaluations,
            stats,
        } = self;
        let top_box = boxes[top].as_deref();
        let (qlo, qhi, deflate) = match top_box {
            Some(b) => (
                &b[..dim],
                &b[dim..],
                if *merged_prunable {
                    MERGED_DEFLATE
                } else {
                    0.0
                },
            ),
            None => (&points[top][..], &points[top][..], 1.0),
        };
        // Leaf candidates, pruned through the tree. Values: kernel
        // evaluations from a leaf query; Lance–Williams row reads from
        // a merged query (the row covers every active slot).
        let mut leaf_value = |k: usize| -> f64 {
            if top_box.is_some() {
                rows.read(top, k)
                    .expect("merged cluster has a row entry for every active slot")
            } else {
                *evaluations += 1;
                sq_euclidean(&points[top], &points[k]).sqrt()
            }
        };
        let mut best = tree
            .nearest(qlo, qhi, deflate, top, stats, &mut leaf_value)
            .map_or((f64::INFINITY, usize::MAX), |(k, v)| (v, k));
        // Merged candidates: a short ascending scan over live
        // Lance–Williams rows, with the same box pre-check when the
        // linkage admits one.
        for &k in merged.iter() {
            if k == top {
                continue;
            }
            debug_assert!(active[k], "merged list only holds active slots");
            if *merged_prunable {
                if let Some(b) = boxes[k].as_deref() {
                    let lb = sq_box_gap(qlo, qhi, &b[..dim], &b[dim..]).sqrt() * MERGED_DEFLATE;
                    if lb > best.0 {
                        stats.pruned_subtrees += 1;
                        continue;
                    }
                }
            }
            let v = rows
                .read(top, k)
                .expect("merged cluster has a row entry for every active slot");
            if v < best.0 || (v == best.0 && k < best.1) {
                best = (v, k);
            }
        }
        if best.1 == usize::MAX {
            return None;
        }
        // The linear scan prefers the previous chain element on exact
        // ties; reproduce that with one direct comparison.
        if let Some(p) = prev {
            let vp = match rows.read(top, p) {
                Some(v) => v,
                None => {
                    *evaluations += 1;
                    sq_euclidean(&points[top], &points[p]).sqrt()
                }
            };
            if vp == best.0 {
                return Some((p, vp));
            }
        }
        Some((best.1, best.0))
    }
}

impl Drop for IndexedMetric<'_> {
    fn drop(&mut self) {
        if self.evaluations > 0 {
            INDEX_LEAF_EVALS.add(self.evaluations);
        }
        if self.stats.nodes_visited > 0 {
            INDEX_NODES_VISITED.add(self.stats.nodes_visited);
        }
        if self.stats.pruned_subtrees > 0 {
            INDEX_PRUNED.add(self.stats.pruned_subtrees);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{top_k_nearest, FeatureView};

    fn mixture(n: usize, blobs: usize, dim: usize) -> Vec<Vec<f64>> {
        let mut s = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| {
                        let c = (((i % blobs) * dim + d) as f64 * 0.77).sin() * 8.0;
                        c + (rng() - 0.5) * 2.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn top_k_matches_brute_force_bit_for_bit() {
        let points = mixture(137, 7, 6);
        let tree = SpatialIndex::build(&points[..]);
        let mut stats = SearchStats::default();
        for q in 0..points.len() {
            for k in [1, 3, 8, 137, 200] {
                let fast = tree.top_k(&points[q], k, q, &mut stats);
                let brute = top_k_nearest(&points[..], q, k);
                assert_eq!(fast.len(), brute.len(), "q={q} k={k}");
                for (a, b) in fast.iter().zip(&brute) {
                    assert_eq!(a.0, b.0, "q={q} k={k}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "q={q} k={k}");
                }
            }
        }
        assert!(stats.pruned_subtrees > 0, "no pruning on clustered data");
    }

    #[test]
    fn nearest_matches_a_linear_scan_with_deactivation() {
        let points = mixture(90, 5, 6);
        let mut tree = SpatialIndex::build(&points[..]);
        let mut dead = vec![false; points.len()];
        // Deactivate a deterministic third of the points.
        for i in (0..points.len()).step_by(3) {
            tree.deactivate(i);
            dead[i] = true;
        }
        let view = &points[..];
        let mut stats = SearchStats::default();
        for (q, point) in points.iter().enumerate() {
            let mut value = |k: usize| view.distance(q, k);
            let got = tree.nearest(point, point, 1.0, q, &mut stats, &mut value);
            let mut best = (f64::INFINITY, usize::MAX);
            for (k, &gone) in dead.iter().enumerate() {
                if k == q || gone {
                    continue;
                }
                let d = view.distance(q, k);
                if d < best.0 {
                    best = (d, k);
                }
            }
            let (k, v) = got.expect("live candidates remain");
            assert_eq!(k, best.1, "q={q}");
            assert_eq!(v.to_bits(), best.0.to_bits(), "q={q}");
        }
    }

    #[test]
    fn duplicate_points_tie_to_the_lowest_index() {
        // Five coincident points plus one far away: nearest of any
        // coincident point must be the lowest-indexed other duplicate.
        let mut points = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; 5];
        points.push(vec![50.0; 6]);
        let tree = SpatialIndex::build(&points[..]);
        let view = &points[..];
        let mut stats = SearchStats::default();
        for (q, point) in points.iter().enumerate().take(5) {
            let mut value = |k: usize| view.distance(q, k);
            let (k, v) = tree
                .nearest(point, point, 1.0, q, &mut stats, &mut value)
                .unwrap();
            assert_eq!(k, usize::from(q == 0), "q={q}");
            assert_eq!(v, 0.0);
        }
        let top = tree.top_k(&points[0], 3, 0, &mut stats);
        assert_eq!(
            top.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn empty_and_singleton_trees_answer_gracefully() {
        let none: Vec<Vec<f64>> = Vec::new();
        let tree = SpatialIndex::build(&none[..]);
        let mut stats = SearchStats::default();
        assert!(tree
            .nearest(&[], &[], 1.0, 0, &mut stats, &mut |_| 0.0)
            .is_none());
        assert!(tree.top_k(&[], 3, 0, &mut stats).is_empty());

        let one = [vec![1.0; 6]];
        let tree = SpatialIndex::build(&one[..]);
        assert!(tree.top_k(&one[0], 3, 0, &mut stats).is_empty());
    }

    #[test]
    fn box_gap_never_exceeds_the_kernel() {
        // The exactness core: for random boxes and points inside them,
        // the computed bound must be ≤ the computed kernel distance.
        let points = mixture(64, 3, 6);
        let tree = SpatialIndex::build(&points[..]);
        for node in &tree.nodes {
            for &p in &tree.order[node.start as usize..node.end as usize] {
                for q in 0..points.len() {
                    let lb = sq_box_gap(&points[q], &points[q], &node.lo, &node.hi);
                    let d = sq_euclidean(&points[q], &points[p as usize]);
                    assert!(
                        lb.sqrt() <= d.sqrt(),
                        "bound {lb} exceeds kernel {d} (q={q}, p={p})"
                    );
                }
            }
        }
    }
}
