//! Agglomerative (bottom-up) hierarchical clustering.
//!
//! The paper's pattern identifier "first considers each input point as
//! a cluster and then bottom-up iteratively merges the nearest two
//! clusters", with Euclidean distance and **average linkage**. We
//! provide that plus the other classic linkages, via two engines:
//!
//! * [`Engine::Naive`] — textbook O(n³): repeatedly scan the distance
//!   matrix for the closest pair. Kept as the reference implementation.
//! * [`Engine::NnChain`] — nearest-neighbour chain, O(n²) time, which
//!   produces the *same dendrogram* for every reducible linkage (all
//!   four offered here are reducible). This is what the benchmarks run
//!   at scale.
//!
//! Both engines share the Lance–Williams cluster-distance update, so
//! agreement between them is a real cross-check of the bookkeeping,
//! not of a shared code path for neighbour selection.
//!
//! Neither engine knows where distances live: both are generic over
//! [`DistanceSource`], so the same code runs against the materialised
//! [`DistanceMatrix`] and the matrix-free
//! [`OnDemandMetric`](crate::source::OnDemandMetric) — and a golden
//! test pins the two sources to bit-identical dendrograms.

use towerlens_obs::LazyCounter;

use crate::dendrogram::{Dendrogram, Merge};
use crate::distance::DistanceMatrix;
use crate::error::{validate_points, ClusterError};
use crate::index::IndexedMetric;
use crate::source::{DistanceSource, OnDemandMetric};

/// Merge steps performed, across all clustering runs (n−1 per run).
static MERGES: LazyCounter = LazyCounter::new("cluster.agglomerative.merges");

/// How the distance between two clusters is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — the paper's
    /// "average-linkage distance".
    Average,
    /// Ward's minimum-variance criterion (on Euclidean distances).
    Ward,
}

impl Linkage {
    /// Lance–Williams update: the distance from cluster `k` to the
    /// merge of clusters `i` and `j`, given the three pairwise
    /// distances and the cluster sizes.
    ///
    /// For [`Linkage::Ward`] the recurrence operates on *squared*
    /// distances; callers of this function pass plain distances and we
    /// square/unsquare internally so every linkage exposes the same
    /// units (plain Euclidean) to the dendrogram.
    #[inline]
    fn update(self, dik: f64, djk: f64, dij: f64, ni: f64, nj: f64, nk: f64) -> f64 {
        match self {
            Linkage::Single => dik.min(djk),
            Linkage::Complete => dik.max(djk),
            Linkage::Average => (ni * dik + nj * djk) / (ni + nj),
            Linkage::Ward => {
                let s = ni + nj + nk;
                let d2 = ((ni + nk) * dik * dik + (nj + nk) * djk * djk - nk * dij * dij) / s;
                d2.max(0.0).sqrt()
            }
        }
    }
}

/// Which agglomeration algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// O(n³) closest-pair scan (reference).
    Naive,
    /// O(n²) nearest-neighbour chain.
    NnChain,
}

/// Runs agglomerative clustering over a precomputed distance matrix.
///
/// Consumes the matrix (both engines update it in place as clusters
/// merge). Returns the full merge history as a [`Dendrogram`]; cut it
/// with [`Dendrogram::cut_at`] / [`Dendrogram::cut_k`].
///
/// # Errors
/// [`ClusterError::EmptyInput`] for a zero-point matrix.
pub fn agglomerative(
    dist: DistanceMatrix,
    linkage: Linkage,
    engine: Engine,
) -> Result<Dendrogram, ClusterError> {
    agglomerative_source(dist, linkage, engine)
}

/// Runs agglomerative clustering over any [`DistanceSource`] — the
/// materialised matrix or a matrix-free metric. The engines perform
/// the same `get`/`set` sequence either way, so two sources that agree
/// on leaf distances produce bit-identical dendrograms.
///
/// # Errors
/// [`ClusterError::EmptyInput`] for a zero-point source.
pub fn agglomerative_source<S: DistanceSource>(
    mut source: S,
    linkage: Linkage,
    engine: Engine,
) -> Result<Dendrogram, ClusterError> {
    let n = source.len();
    if n == 0 {
        return Err(ClusterError::EmptyInput);
    }
    if n == 1 {
        return Dendrogram::new(1, Vec::new());
    }
    let merges = match engine {
        Engine::Naive => naive(&mut source, linkage),
        Engine::NnChain => nn_chain(&mut source, linkage),
    };
    MERGES.add(merges.len() as u64);
    Dendrogram::new(n, merges)
}

/// Matrix-free counterpart of [`agglomerative_points`]: clusters a
/// point set through an [`OnDemandMetric`], recomputing leaf distances
/// from the rows instead of materialising the O(n²) condensed matrix.
/// Bit-identical to the materialised path on the same points. Right
/// when leaf distances are cheap relative to memory — the 6-dim
/// spectral feature space at paper scale and beyond.
///
/// # Errors
/// Propagates point-set validation failures; see [`ClusterError`].
pub fn agglomerative_points_on_demand(
    points: &[Vec<f64>],
    linkage: Linkage,
    engine: Engine,
) -> Result<Dendrogram, ClusterError> {
    validate_points(points)?;
    agglomerative_source(OnDemandMetric::new(points), linkage, engine)
}

/// Indexed counterpart of [`agglomerative_points_on_demand`]: the same
/// matrix-free engines over an [`IndexedMetric`], whose exact-pruning
/// spatial index answers the nn-chain's nearest-neighbour queries by
/// branch-and-bound instead of a linear scan. Bit-identical
/// dendrograms (a golden test pins it); at paper scale and beyond the
/// scan evaluations collapse by orders of magnitude.
///
/// # Errors
/// Propagates point-set validation failures; see [`ClusterError`].
pub fn agglomerative_points_indexed(
    points: &[Vec<f64>],
    linkage: Linkage,
    engine: Engine,
) -> Result<Dendrogram, ClusterError> {
    validate_points(points)?;
    agglomerative_source(IndexedMetric::new(points, linkage), linkage, engine)
}

/// Convenience: build the distance matrix (with `threads` workers) and
/// cluster in one call.
///
/// ```
/// use towerlens_cluster::{agglomerative::agglomerative_points, Engine, Linkage};
///
/// let points = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let tree = agglomerative_points(&points, Linkage::Average, Engine::NnChain, 1)?;
/// let two = tree.cut_k(2)?;
/// assert_eq!(two.labels[0], two.labels[1]);
/// assert_ne!(two.labels[0], two.labels[2]);
/// # Ok::<(), towerlens_cluster::ClusterError>(())
/// ```
pub fn agglomerative_points(
    points: &[Vec<f64>],
    linkage: Linkage,
    engine: Engine,
    threads: usize,
) -> Result<Dendrogram, ClusterError> {
    let dist = DistanceMatrix::build(points, threads)?;
    agglomerative(dist, linkage, engine)
}

/// Shared merge bookkeeping: active-cluster set, sizes, and the
/// creation-order cluster ids the dendrogram expects.
struct MergeState {
    /// `active[slot]` is true while the cluster seated at `slot`
    /// (a row/col of the distance matrix) still exists.
    active: Vec<bool>,
    /// Current member count per slot.
    size: Vec<usize>,
    /// Creation-order cluster id seated at each slot.
    id: Vec<usize>,
    /// Next fresh cluster id.
    next_id: usize,
    merges: Vec<Merge>,
}

impl MergeState {
    fn new(n: usize) -> Self {
        MergeState {
            active: vec![true; n],
            size: vec![1; n],
            id: (0..n).collect(),
            next_id: n,
            merges: Vec::with_capacity(n.saturating_sub(1)),
        }
    }

    /// Merges slot `j` into slot `i` at the given linkage distance and
    /// updates row `i` of the source by Lance–Williams; slot `j` is
    /// retired so the source can reclaim its storage.
    fn merge<S: DistanceSource>(
        &mut self,
        dist: &mut S,
        linkage: Linkage,
        i: usize,
        j: usize,
        d: f64,
    ) {
        let n = dist.len();
        let (ni, nj) = (self.size[i] as f64, self.size[j] as f64);
        for k in 0..n {
            if k == i || k == j || !self.active[k] {
                continue;
            }
            let dik = dist.get(i, k);
            let djk = dist.get(j, k);
            let nk = self.size[k] as f64;
            dist.set(i, k, linkage.update(dik, djk, d, ni, nj, nk));
        }
        self.merges.push(Merge {
            a: self.id[i].min(self.id[j]),
            b: self.id[i].max(self.id[j]),
            distance: d,
            size: self.size[i] + self.size[j],
        });
        self.size[i] += self.size[j];
        self.active[j] = false;
        self.id[i] = self.next_id;
        self.next_id += 1;
        dist.promote(i, j);
        dist.retire(j);
    }
}

/// O(n³) reference: scan all active pairs for the minimum each round.
fn naive<S: DistanceSource>(dist: &mut S, linkage: Linkage) -> Vec<Merge> {
    let n = dist.len();
    let mut st = MergeState::new(n);
    for _ in 0..n - 1 {
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !st.active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !st.active[j] {
                    continue;
                }
                let d = dist.get(i, j);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d) = best;
        st.merge(dist, linkage, i, j, d);
    }
    st.merges
}

/// O(n²) nearest-neighbour chain.
///
/// Grows a chain `c₁ → c₂ → …` where each element is a nearest
/// neighbour of its predecessor; when two consecutive elements are
/// mutual nearest neighbours they are merged immediately. Valid for
/// reducible linkages (all four here), producing the same tree as the
/// naive engine up to tie order.
fn nn_chain<S: DistanceSource>(dist: &mut S, linkage: Linkage) -> Vec<Merge> {
    let n = dist.len();
    let mut st = MergeState::new(n);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 1 {
        if chain.is_empty() {
            // Seat the chain on the lowest-indexed active cluster.
            let start = (0..n).find(|&i| st.active[i]).expect("active cluster");
            chain.push(start);
        }
        loop {
            let top = *chain.last().expect("chain non-empty");
            // Nearest active neighbour of `top`, preferring the
            // previous chain element on ties (guarantees termination).
            // The source decides how: linear scan by default, pruned
            // index descent for spatial sources — same answer either
            // way (the `nearest_active` contract).
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            let (nearest, best) = dist
                .nearest_active(top, &st.active, prev)
                .expect("an active neighbour besides the chain top");
            if Some(nearest) == prev {
                // Mutual nearest neighbours: merge the top two.
                let j = chain.pop().expect("top");
                let i = chain.pop().expect("prev");
                // Keep the lower slot as the surviving row for
                // deterministic output.
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                st.merge(dist, linkage, lo, hi, best);
                remaining -= 1;
                // The merged cluster may invalidate chain tail
                // assumptions only if it was referenced; we popped both,
                // so the rest of the chain is still a valid NN chain.
                break;
            }
            chain.push(nearest);
        }
    }
    st.merges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;

    /// Three tight groups on a line: {0,1} near 0, {2,3} near 10,
    /// {4,5} near 30.
    fn grouped_points() -> Vec<Vec<f64>> {
        vec![
            vec![0.0],
            vec![0.5],
            vec![10.0],
            vec![10.4],
            vec![30.0],
            vec![30.3],
        ]
    }

    fn tree(points: &[Vec<f64>], linkage: Linkage, engine: Engine) -> Dendrogram {
        agglomerative_points(points, linkage, engine, 1).unwrap()
    }

    #[test]
    fn recovers_obvious_groups_all_linkages() {
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            for engine in [Engine::Naive, Engine::NnChain] {
                let d = tree(&grouped_points(), linkage, engine);
                let c = d.cut_k(3).unwrap();
                assert_eq!(c.labels[0], c.labels[1], "{linkage:?}/{engine:?}");
                assert_eq!(c.labels[2], c.labels[3], "{linkage:?}/{engine:?}");
                assert_eq!(c.labels[4], c.labels[5], "{linkage:?}/{engine:?}");
                assert_eq!(c.k, 3);
            }
        }
    }

    #[test]
    fn engines_agree_on_merge_heights() {
        // Random-ish points without ties: the two engines must produce
        // identical sorted height sequences.
        let points: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.7).sin() * 10.0, (t * 1.3).cos() * 7.0, t % 5.0]
            })
            .collect();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let a = tree(&points, linkage, Engine::Naive);
            let b = tree(&points, linkage, Engine::NnChain);
            for (x, y) in a.merges().iter().zip(b.merges()) {
                assert!(
                    (x.distance - y.distance).abs() < 1e-9,
                    "{linkage:?}: {} vs {}",
                    x.distance,
                    y.distance
                );
            }
        }
    }

    #[test]
    fn engines_agree_on_flat_cut() {
        let points: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let t = i as f64;
                vec![
                    (t * 0.9).sin() * 3.0 + (i % 3) as f64 * 20.0,
                    (t * 0.4).cos(),
                ]
            })
            .collect();
        let a = tree(&points, Linkage::Average, Engine::Naive)
            .cut_k(3)
            .unwrap();
        let b = tree(&points, Linkage::Average, Engine::NnChain)
            .cut_k(3)
            .unwrap();
        // Same partition (labels may permute): compare co-membership.
        for i in 0..points.len() {
            for j in 0..points.len() {
                assert_eq!(
                    a.labels[i] == a.labels[j],
                    b.labels[i] == b.labels[j],
                    "pair ({i},{j}) disagrees"
                );
            }
        }
    }

    #[test]
    fn single_linkage_first_merge_is_global_min_pair() {
        let points = grouped_points();
        let d = tree(&points, Linkage::Single, Engine::NnChain);
        let mut min_pair = f64::INFINITY;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                min_pair = min_pair.min(euclidean(&points[i], &points[j]));
            }
        }
        assert!((d.merges()[0].distance - min_pair).abs() < 1e-12);
    }

    #[test]
    fn average_linkage_heights_are_monotone() {
        let points: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64 * 2.17).sin() * 5.0, (i as f64 * 0.33).cos() * 5.0])
            .collect();
        let d = tree(&points, Linkage::Average, Engine::NnChain);
        let mut prev = 0.0;
        for m in d.merges() {
            assert!(m.distance >= prev - 1e-12);
            prev = m.distance;
        }
    }

    #[test]
    fn ward_merges_minimum_variance_pairs_first() {
        // Two pairs with equal gaps but different cluster spreads: Ward
        // prefers merging points before absorbing into bigger clusters.
        let points = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let d = tree(&points, Linkage::Ward, Engine::Naive);
        let c = d.cut_k(2).unwrap();
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[2], c.labels[3]);
    }

    #[test]
    fn singleton_input() {
        let d =
            agglomerative_points(&[vec![1.0, 2.0]], Linkage::Average, Engine::NnChain, 1).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.merges().is_empty());
        assert_eq!(d.cut_at(1.0).k, 1);
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(
            agglomerative_points(&[], Linkage::Average, Engine::Naive, 1),
            Err(ClusterError::EmptyInput)
        ));
    }

    #[test]
    fn duplicate_points_merge_at_zero() {
        let points = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        for engine in [Engine::Naive, Engine::NnChain] {
            let d = tree(&points, Linkage::Average, engine);
            assert_eq!(d.merges()[0].distance, 0.0);
        }
    }

    #[test]
    fn matrix_free_engines_are_bit_identical_to_the_materialised_path() {
        // The golden test the refactor hangs on: both engines, all four
        // linkages, merge-for-merge equality with distances compared at
        // the bit level. The on-demand source recomputes every leaf
        // distance from the rows; any drift from the materialised
        // matrix (kernel mismatch, stale Lance–Williams row, wrong
        // fallthrough) shows up here.
        let points: Vec<Vec<f64>> = (0..48)
            .map(|i| {
                let t = i as f64;
                vec![
                    (t * 0.7).sin() * 10.0,
                    (t * 1.3).cos() * 7.0,
                    (t * 0.29).sin() * 3.0 + (i % 4) as f64,
                ]
            })
            .collect();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            for engine in [Engine::Naive, Engine::NnChain] {
                let built = agglomerative_points(&points, linkage, engine, 1).unwrap();
                let lazy = agglomerative_points_on_demand(&points, linkage, engine).unwrap();
                assert_eq!(built.merges().len(), lazy.merges().len());
                for (step, (x, y)) in built.merges().iter().zip(lazy.merges()).enumerate() {
                    assert_eq!(x.a, y.a, "{linkage:?}/{engine:?} merge {step}");
                    assert_eq!(x.b, y.b, "{linkage:?}/{engine:?} merge {step}");
                    assert_eq!(x.size, y.size, "{linkage:?}/{engine:?} merge {step}");
                    assert_eq!(
                        x.distance.to_bits(),
                        y.distance.to_bits(),
                        "{linkage:?}/{engine:?} merge {step}: {} vs {}",
                        x.distance,
                        y.distance
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_engines_are_bit_identical_to_the_on_demand_path() {
        // The tentpole's golden test: the exact-pruning index must
        // change *nothing* about the output — merge partners, sizes,
        // and heights compared at the bit level against the on-demand
        // scan, for both engines and all four linkages (Ward exercises
        // the no-merged-prune fallback, average the deflated bound).
        let points: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let t = i as f64;
                (0..6)
                    .map(|d| {
                        ((i % 5) * 6 + d) as f64 * 1.3 + (t * 0.7 + d as f64 * 1.1).sin() * 2.0
                    })
                    .collect()
            })
            .collect();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            for engine in [Engine::Naive, Engine::NnChain] {
                let lazy = agglomerative_points_on_demand(&points, linkage, engine).unwrap();
                let fast = agglomerative_points_indexed(&points, linkage, engine).unwrap();
                assert_eq!(lazy.merges().len(), fast.merges().len());
                for (step, (x, y)) in lazy.merges().iter().zip(fast.merges()).enumerate() {
                    assert_eq!(x.a, y.a, "{linkage:?}/{engine:?} merge {step}");
                    assert_eq!(x.b, y.b, "{linkage:?}/{engine:?} merge {step}");
                    assert_eq!(x.size, y.size, "{linkage:?}/{engine:?} merge {step}");
                    assert_eq!(
                        x.distance.to_bits(),
                        y.distance.to_bits(),
                        "{linkage:?}/{engine:?} merge {step}: {} vs {}",
                        x.distance,
                        y.distance
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_nn_chain_prunes_scan_evaluations() {
        // The point of the index: at even modest n the nn-chain's scan
        // evaluations through the indexed source must undercut the
        // on-demand source's by a wide margin (the Lance–Williams loop
        // evaluates the same C(n,2) leaf pairs either way; the scans
        // are where the index wins).
        let points: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                (0..6)
                    .map(|d| ((i % 8) * 6 + d) as f64 * 2.0 + ((i * 6 + d) as f64 * 0.37).sin())
                    .collect()
            })
            .collect();
        let mut lazy = OnDemandMetric::new(&points[..]);
        let a = nn_chain(&mut lazy, Linkage::Average);
        let mut fast = IndexedMetric::new(&points, Linkage::Average);
        let b = nn_chain(&mut fast, Linkage::Average);
        assert_eq!(a.len(), b.len());
        // Both counters include the C(n,2) Lance–Williams floor (the
        // recurrence reads each leaf pair once regardless of source);
        // the index can only win back the scan share, so assert a
        // strict-but-modest drop here and leave the order-of-magnitude
        // claims to the measured bench workloads.
        assert!(
            fast.evaluations() < lazy.evaluations(),
            "index evals {} not under scan evals {}",
            fast.evaluations(),
            lazy.evaluations()
        );
        assert!(fast.stats().pruned_subtrees > 0);
    }

    #[test]
    fn on_demand_rows_are_freed_as_clusters_retire() {
        // Memory contract: after the final merge a single root cluster
        // survives, so at most one Lance–Williams row may remain live.
        let points: Vec<Vec<f64>> = (0..32).map(|i| vec![(i as f64 * 1.37).sin()]).collect();
        let mut metric = OnDemandMetric::new(&points[..]);
        let merges = nn_chain(&mut metric, Linkage::Average);
        assert_eq!(merges.len(), points.len() - 1);
        assert!(
            metric.live_rows() <= 1,
            "{} rows still live after full agglomeration",
            metric.live_rows()
        );
    }

    #[test]
    fn total_merge_count_is_n_minus_1() {
        let points: Vec<Vec<f64>> = (0..23).map(|i| vec![i as f64 * 1.1]).collect();
        let d = tree(&points, Linkage::Complete, Engine::NnChain);
        assert_eq!(d.merges().len(), 22);
        assert_eq!(d.cut_k(1).unwrap().k, 1);
    }
}
