//! # towerlens-cluster
//!
//! Unsupervised-learning substrate: the machinery behind the paper's
//! *pattern identifier* and *metric tuner* (§3.2).
//!
//! * [`mod@agglomerative`] — bottom-up hierarchical clustering with
//!   single/complete/average/Ward linkage. Two engines produce
//!   identical dendrograms: a naive O(n³) reference and an O(n²)
//!   nearest-neighbour-chain implementation (the one the benchmarks
//!   ablate).
//! * [`dendrogram`] — the merge tree; cut it at a distance threshold
//!   (the paper stops "when the distance between two clusters is above
//!   the threshold value", 16.33 in their data) or at a target cluster
//!   count.
//! * [`validity`] — Davies–Bouldin index (the paper's stop-condition
//!   tuner) and silhouette score as a second opinion.
//! * [`kmeans`] — a k-means(++) baseline for comparison benches.
//! * [`distance`] — Euclidean metrics (runtime-dispatched AVX kernel,
//!   bit-identical to its scalar reference) and a cache-tiled parallel
//!   pairwise-distance matrix builder (std scoped threads; no runtime
//!   dependency).
//! * [`index`] — an exact-pruning spatial index over low-dimensional
//!   feature spaces: a static bounding-box k-d tree whose
//!   nearest-neighbour and top-k answers are bit-identical to the
//!   linear scan, plus [`IndexedMetric`], the indexed
//!   [`DistanceSource`] the nn-chain engine runs over at scale.
//!
//! All APIs are fallible ([`ClusterError`]) rather than panicking, and
//! deterministic given their inputs (k-means takes an explicit seed).

// `deny`, not `forbid`: the one sanctioned exception is the AVX
// distance kernel in [`distance`], a leaf function pinned bit-for-bit
// to its safe scalar reference by test. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod compare;
pub mod dendrogram;
pub mod distance;
pub mod error;
pub mod index;
pub mod kmeans;
pub mod source;
pub mod validity;

pub use agglomerative::{
    agglomerative, agglomerative_points_indexed, agglomerative_points_on_demand,
    agglomerative_source, Engine, Linkage,
};
pub use compare::{adjusted_rand_index, purity, rand_index};
pub use dendrogram::{Clustering, Dendrogram, Merge};
pub use distance::DistanceMatrix;
pub use error::ClusterError;
pub use index::{IndexedMetric, PointSet, SearchStats, SpatialIndex};
pub use source::{top_k_nearest, DistanceSource, FeatureView, OnDemandMetric, TopK};
