//! The merge tree produced by agglomerative clustering, and flat
//! clusterings cut from it.

use serde::{Deserialize, Serialize};

use crate::distance::euclidean;
use crate::error::{validate_points, ClusterError};

/// One agglomerative merge step.
///
/// Cluster ids follow the scipy convention: the original points are
/// clusters `0..n`, and the merge recorded at position `i` of the merge
/// list creates cluster `n + i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Size of the newly formed cluster.
    pub size: usize,
}

/// A full agglomerative merge history over `n` points
/// (`n − 1` merges, non-decreasing in distance).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Assembles a dendrogram from a merge list produced in *creation
    /// order* (merge `i` creates cluster id `n + i`, referencing only
    /// earlier ids), re-sorting it by merge distance and rewriting the
    /// cluster ids to match the sorted order.
    ///
    /// The NN-chain engine emits merges out of height order; stable
    /// sorting plus an id rewrite yields the canonical form both
    /// engines share. The rewrite replays the sorted merges over a
    /// per-point cluster map, addressing each merge by one
    /// *representative point* of each side (recorded before sorting).
    /// The `(rep_a, rep_b)` edges of a merge history always form a
    /// spanning tree of the points, so the replay never tries to merge
    /// a cluster with itself regardless of tie order.
    pub(crate) fn new(n: usize, merges: Vec<Merge>) -> Result<Self, ClusterError> {
        if merges.len() + 1 != n && !(n == 0 && merges.is_empty()) {
            return Err(ClusterError::Internal("merge count must be n-1"));
        }
        // Representative point of every cluster id in creation order.
        let total = n + merges.len();
        let mut rep: Vec<usize> = vec![usize::MAX; total];
        for (i, r) in rep.iter_mut().enumerate().take(n) {
            *r = i;
        }
        let mut tagged: Vec<(Merge, usize, usize)> = Vec::with_capacity(merges.len());
        for (i, m) in merges.iter().enumerate() {
            let created = n + i;
            if m.a >= created || m.b >= created || rep[m.a] == usize::MAX || rep[m.b] == usize::MAX
            {
                return Err(ClusterError::Internal(
                    "merge references a not-yet-created cluster id",
                ));
            }
            rep[created] = rep[m.a];
            tagged.push((*m, rep[m.a], rep[m.b]));
        }
        tagged.sort_by(|x, y| {
            x.0.distance
                .partial_cmp(&y.0.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // Replay in sorted order, assigning fresh ids n, n+1, …
        let mut point_cluster: Vec<usize> = (0..n).collect();
        let mut new_merges = Vec::with_capacity(tagged.len());
        for (i, (m, ra, rb)) in tagged.into_iter().enumerate() {
            let na = point_cluster[ra];
            let nb = point_cluster[rb];
            debug_assert_ne!(na, nb, "replay merged a cluster with itself");
            let new_id = n + i;
            new_merges.push(Merge {
                a: na.min(nb),
                b: na.max(nb),
                distance: m.distance,
                size: m.size,
            });
            for pc in point_cluster.iter_mut() {
                if *pc == na || *pc == nb {
                    *pc = new_id;
                }
            }
        }
        Ok(Dendrogram {
            n,
            merges: new_merges,
        })
    }

    /// Rebuilds a dendrogram from merges already in canonical form —
    /// the exact list a previous [`Dendrogram::merges`] returned, as
    /// persisted by a checkpoint codec. Unlike the engine-facing
    /// constructor this does *not* re-sort or rewrite ids; it only
    /// validates that the list is canonical: `n − 1` merges,
    /// non-decreasing distances, each merge referencing ids created
    /// earlier, and every cluster id consumed at most once.
    ///
    /// # Errors
    /// [`ClusterError::Internal`] describing the first violation.
    pub fn from_sorted_merges(n: usize, merges: Vec<Merge>) -> Result<Self, ClusterError> {
        if merges.len() + 1 != n && !(n == 0 && merges.is_empty()) {
            return Err(ClusterError::Internal("merge count must be n-1"));
        }
        let total = n + merges.len();
        let mut consumed = vec![false; total];
        let mut prev = f64::NEG_INFINITY;
        for (i, m) in merges.iter().enumerate() {
            let created = n + i;
            if m.a >= created || m.b >= created || m.a == m.b {
                return Err(ClusterError::Internal(
                    "merge references a not-yet-created cluster id",
                ));
            }
            if consumed[m.a] || consumed[m.b] {
                return Err(ClusterError::Internal(
                    "merge consumes an already-merged cluster id",
                ));
            }
            consumed[m.a] = true;
            consumed[m.b] = true;
            if m.distance.is_nan() || m.distance < prev {
                return Err(ClusterError::Internal(
                    "merge distances must be non-decreasing",
                ));
            }
            prev = m.distance;
        }
        Ok(Dendrogram { n, merges })
    }

    /// Number of leaves (original points).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when built over zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merges, sorted by non-decreasing linkage distance.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree at a distance threshold: merges with
    /// `distance ≤ threshold` are applied (the paper's stop condition:
    /// clustering stops when the inter-cluster distance *exceeds* the
    /// threshold).
    pub fn cut_at(&self, threshold: f64) -> Clustering {
        let applied = self
            .merges
            .iter()
            .take_while(|m| m.distance <= threshold)
            .count();
        self.cut_after(applied)
    }

    /// Cuts the tree so exactly `k` clusters remain.
    ///
    /// # Errors
    /// [`ClusterError::ZeroClusters`] or
    /// [`ClusterError::TooManyClusters`] for invalid `k`.
    pub fn cut_k(&self, k: usize) -> Result<Clustering, ClusterError> {
        if k == 0 {
            return Err(ClusterError::ZeroClusters);
        }
        if k > self.n {
            return Err(ClusterError::TooManyClusters {
                requested: k,
                available: self.n,
            });
        }
        Ok(self.cut_after(self.n - k))
    }

    /// The smallest threshold that yields exactly `k` clusters, i.e.
    /// the distance of the last applied merge (0 if none). Useful for
    /// reporting "the threshold value" the way the paper quotes 16.33.
    pub fn threshold_for_k(&self, k: usize) -> Result<f64, ClusterError> {
        if k == 0 {
            return Err(ClusterError::ZeroClusters);
        }
        if k > self.n {
            return Err(ClusterError::TooManyClusters {
                requested: k,
                available: self.n,
            });
        }
        let applied = self.n - k;
        Ok(if applied == 0 {
            0.0
        } else {
            self.merges[applied - 1].distance
        })
    }

    /// Applies the first `count` merges and extracts the flat labels.
    fn cut_after(&self, count: usize) -> Clustering {
        let mut uf = UnionFind::new(self.n + count);
        for (i, m) in self.merges.iter().take(count).enumerate() {
            let created = self.n + i;
            uf.union(m.a, created);
            uf.union(m.b, created);
        }
        // Relabel roots to consecutive ids in order of first point.
        let mut labels = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut map = std::collections::HashMap::new();
        for (p, slot) in labels.iter_mut().enumerate() {
            let root = uf.find(p);
            *slot = *map.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
        }
        Clustering { labels, k: next }
    }
}

/// A flat assignment of points to `k` clusters, labelled `0..k` in
/// order of first appearance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    /// `labels[i]` is the cluster of point `i`.
    pub labels: Vec<usize>,
    /// Number of clusters.
    pub k: usize,
}

impl Clustering {
    /// Builds a clustering from raw labels, validating that they are
    /// consecutive from zero.
    pub fn from_labels(labels: Vec<usize>) -> Result<Self, ClusterError> {
        if labels.is_empty() {
            return Err(ClusterError::EmptyInput);
        }
        let k = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut seen = vec![false; k];
        for &l in &labels {
            seen[l] = true;
        }
        if seen.iter().any(|s| !s) {
            return Err(ClusterError::Internal("labels not consecutive from 0"));
        }
        Ok(Clustering { labels, k })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` for a clustering of zero points (cannot be constructed
    /// through the public API).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Member counts per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Member shares per cluster (fractions summing to 1).
    pub fn shares(&self) -> Vec<f64> {
        let n = self.labels.len() as f64;
        self.sizes().iter().map(|&s| s as f64 / n).collect()
    }

    /// Point indices belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Centroid of each cluster in the original feature space.
    ///
    /// # Errors
    /// Point-set validation failures, or
    /// [`ClusterError::Internal`] if `points.len()` doesn't match the
    /// label count.
    pub fn centroids(&self, points: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ClusterError> {
        let dim = validate_points(points)?;
        if points.len() != self.labels.len() {
            return Err(ClusterError::Internal("points/labels length mismatch"));
        }
        let mut centroids = vec![vec![0.0; dim]; self.k];
        let sizes = self.sizes();
        for (p, &l) in points.iter().zip(&self.labels) {
            for (c, v) in centroids[l].iter_mut().zip(p) {
                *c += v;
            }
        }
        for (c, &s) in centroids.iter_mut().zip(&sizes) {
            if s > 0 {
                for v in c.iter_mut() {
                    *v /= s as f64;
                }
            }
        }
        Ok(centroids)
    }

    /// For each cluster, the Euclidean distances of its members to the
    /// cluster centroid — the sample behind Fig 6(b)'s CDFs.
    pub fn member_centroid_distances(
        &self,
        points: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, ClusterError> {
        let centroids = self.centroids(points)?;
        let mut out = vec![Vec::new(); self.k];
        for (p, &l) in points.iter().zip(&self.labels) {
            out[l].push(euclidean(p, &centroids[l]));
        }
        Ok(out)
    }

    /// Relabels clusters so that label 0 is the largest cluster, 1 the
    /// next, etc. Deterministic tie-break by old label.
    pub fn sorted_by_size(&self) -> Clustering {
        let sizes = self.sizes();
        let mut order: Vec<usize> = (0..self.k).collect();
        order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
        let mut remap = vec![0usize; self.k];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        Clustering {
            labels: self.labels.iter().map(|&l| remap[l]).collect(),
            k: self.k,
        }
    }
}

/// Minimal union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dendrogram over 4 points: {0,1} at d=1, {2,3} at d=2, all at d=5.
    fn sample() -> Dendrogram {
        Dendrogram::new(
            4,
            vec![
                Merge {
                    a: 0,
                    b: 1,
                    distance: 1.0,
                    size: 2,
                },
                Merge {
                    a: 2,
                    b: 3,
                    distance: 2.0,
                    size: 2,
                },
                Merge {
                    a: 4,
                    b: 5,
                    distance: 5.0,
                    size: 4,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_sorted_merges_roundtrips_canonical_form() {
        let d = sample();
        let rebuilt = Dendrogram::from_sorted_merges(d.len(), d.merges().to_vec()).unwrap();
        assert_eq!(rebuilt.merges(), d.merges());
        for k in 1..=4 {
            assert_eq!(rebuilt.cut_k(k).unwrap(), d.cut_k(k).unwrap());
        }
    }

    #[test]
    fn from_sorted_merges_rejects_non_canonical_input() {
        let d = sample();
        // Wrong merge count.
        assert!(Dendrogram::from_sorted_merges(5, d.merges().to_vec()).is_err());
        // Decreasing distances.
        let mut merges = d.merges().to_vec();
        merges[2].distance = 0.5;
        assert!(Dendrogram::from_sorted_merges(4, merges).is_err());
        // Forward reference.
        let mut merges = d.merges().to_vec();
        merges[0].a = 6;
        assert!(Dendrogram::from_sorted_merges(4, merges).is_err());
        // Double consumption of a cluster id.
        let mut merges = d.merges().to_vec();
        merges[1].a = 0;
        assert!(Dendrogram::from_sorted_merges(4, merges).is_err());
    }

    #[test]
    fn cut_at_thresholds() {
        let d = sample();
        assert_eq!(d.cut_at(0.5).k, 4);
        assert_eq!(d.cut_at(1.0).k, 3);
        assert_eq!(d.cut_at(2.5).k, 2);
        assert_eq!(d.cut_at(10.0).k, 1);
    }

    #[test]
    fn cut_k_matches_structure() {
        let d = sample();
        let c2 = d.cut_k(2).unwrap();
        assert_eq!(c2.labels[0], c2.labels[1]);
        assert_eq!(c2.labels[2], c2.labels[3]);
        assert_ne!(c2.labels[0], c2.labels[2]);
        assert_eq!(d.cut_k(1).unwrap().k, 1);
        assert_eq!(d.cut_k(4).unwrap().k, 4);
        assert!(d.cut_k(0).is_err());
        assert!(d.cut_k(5).is_err());
    }

    #[test]
    fn threshold_for_k_reports_last_merge() {
        let d = sample();
        assert_eq!(d.threshold_for_k(4).unwrap(), 0.0);
        assert_eq!(d.threshold_for_k(3).unwrap(), 1.0);
        assert_eq!(d.threshold_for_k(2).unwrap(), 2.0);
        assert_eq!(d.threshold_for_k(1).unwrap(), 5.0);
    }

    #[test]
    fn unsorted_merge_input_is_canonicalized() {
        // Same tree as `sample` but with merges supplied out of order.
        let d = Dendrogram::new(
            4,
            vec![
                Merge {
                    a: 2,
                    b: 3,
                    distance: 2.0,
                    size: 2,
                },
                Merge {
                    a: 0,
                    b: 1,
                    distance: 1.0,
                    size: 2,
                },
                Merge {
                    a: 4,
                    b: 5,
                    distance: 5.0,
                    size: 4,
                },
            ],
        )
        .unwrap();
        assert!((d.merges()[0].distance - 1.0).abs() < 1e-12);
        let c2 = d.cut_k(2).unwrap();
        assert_eq!(c2.labels[0], c2.labels[1]);
        assert_eq!(c2.labels[2], c2.labels[3]);
        assert_ne!(c2.labels[0], c2.labels[2]);
    }

    #[test]
    fn clustering_sizes_shares_members() {
        let c = Clustering::from_labels(vec![0, 1, 0, 0, 1]).unwrap();
        assert_eq!(c.k, 2);
        assert_eq!(c.sizes(), vec![3, 2]);
        assert_eq!(c.shares(), vec![0.6, 0.4]);
        assert_eq!(c.members(1), vec![1, 4]);
    }

    #[test]
    fn from_labels_rejects_gaps() {
        assert!(Clustering::from_labels(vec![0, 2]).is_err());
        assert!(Clustering::from_labels(vec![]).is_err());
    }

    #[test]
    fn centroids_and_distances() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![10.0, 10.0]];
        let c = Clustering::from_labels(vec![0, 0, 1]).unwrap();
        let cents = c.centroids(&pts).unwrap();
        assert_eq!(cents[0], vec![1.0, 0.0]);
        assert_eq!(cents[1], vec![10.0, 10.0]);
        let d = c.member_centroid_distances(&pts).unwrap();
        assert_eq!(d[0], vec![1.0, 1.0]);
        assert_eq!(d[1], vec![0.0]);
    }

    #[test]
    fn sorted_by_size_relabels() {
        let c = Clustering::from_labels(vec![0, 1, 1, 1, 2, 2]).unwrap();
        let s = c.sorted_by_size();
        assert_eq!(s.labels, vec![2, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn merge_count_validated() {
        assert!(Dendrogram::new(3, vec![]).is_err());
    }
}
