//! Cluster-validity indices: the paper's *metric tuner*.
//!
//! The paper selects the number of patterns by minimising the
//! **Davies–Bouldin index** over candidate cuts of the dendrogram
//! (Fig 6(a)), because DBI "measures both the separation of clusters
//! and cohesion within clusters". We implement DBI exactly as the
//! paper states it, plus a silhouette score as an independent second
//! opinion, and the sweep helper that produces the DBI-vs-k curve.

use crate::dendrogram::{Clustering, Dendrogram};
use crate::distance::euclidean;
use crate::error::ClusterError;

/// Davies–Bouldin index of a flat clustering (lower is better).
///
/// ```text
/// DBI = (1/R) Σ_i max_{j≠i} (S_i + S_j) / M_ij
/// S_i  = average distance of members of cluster i to its centroid A_i
/// M_ij = ||A_i − A_j||₂
/// ```
///
/// Degenerate cases: with a single cluster the index is undefined and
/// we return an error; two clusters with identical centroids yield
/// `+∞`, which correctly makes such a cut maximally unattractive.
///
/// # Errors
/// Point-set validation failures, or [`ClusterError::TooManyClusters`]
/// semantics reversed — here, fewer than 2 clusters is reported as
/// [`ClusterError::ZeroClusters`].
pub fn davies_bouldin(points: &[Vec<f64>], clustering: &Clustering) -> Result<f64, ClusterError> {
    if clustering.k < 2 {
        return Err(ClusterError::ZeroClusters);
    }
    let centroids = clustering.centroids(points)?;
    let sizes = clustering.sizes();
    // S_i: mean member→centroid distance.
    let mut scatter = vec![0.0f64; clustering.k];
    for (p, &l) in points.iter().zip(&clustering.labels) {
        scatter[l] += euclidean(p, &centroids[l]);
    }
    for (s, &n) in scatter.iter_mut().zip(&sizes) {
        if n > 0 {
            *s /= n as f64;
        }
    }
    let r = clustering.k;
    let mut total = 0.0;
    for i in 0..r {
        let mut worst: f64 = 0.0;
        for j in 0..r {
            if i == j {
                continue;
            }
            let m = euclidean(&centroids[i], &centroids[j]);
            let ratio = if m == 0.0 {
                f64::INFINITY
            } else {
                (scatter[i] + scatter[j]) / m
            };
            worst = worst.max(ratio);
        }
        total += worst;
    }
    Ok(total / r as f64)
}

/// Mean silhouette coefficient of a flat clustering (higher is better,
/// range `[−1, 1]`). Points in singleton clusters contribute 0, the
/// standard convention.
///
/// # Errors
/// As for [`davies_bouldin`].
pub fn silhouette(points: &[Vec<f64>], clustering: &Clustering) -> Result<f64, ClusterError> {
    if clustering.k < 2 {
        return Err(ClusterError::ZeroClusters);
    }
    crate::error::validate_points(points)?;
    if points.len() != clustering.labels.len() {
        return Err(ClusterError::Internal("points/labels length mismatch"));
    }
    let sizes = clustering.sizes();
    let n = points.len();
    let mut total = 0.0;
    for i in 0..n {
        let li = clustering.labels[i];
        if sizes[li] <= 1 {
            continue; // silhouette of a singleton is 0
        }
        // Mean distance to own cluster (a) and nearest other (b).
        let mut sums = vec![0.0f64; clustering.k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[clustering.labels[j]] += euclidean(&points[i], &points[j]);
        }
        let a = sums[li] / (sizes[li] - 1) as f64;
        let b = (0..clustering.k)
            .filter(|&c| c != li && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    Ok(total / n as f64)
}

/// One row of a DBI sweep over dendrogram cuts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbiPoint {
    /// Number of clusters at this cut.
    pub k: usize,
    /// The linkage-distance threshold that yields this cut.
    pub threshold: f64,
    /// Davies–Bouldin index of the cut.
    pub dbi: f64,
}

/// Sweeps dendrogram cuts `k = k_min ..= k_max` and evaluates DBI at
/// each — the data behind Fig 6(a). Returns points in ascending `k`.
///
/// # Errors
/// Invalid range (`k_min < 2` or `k_max > n` or `k_min > k_max`) maps
/// to the corresponding [`ClusterError`]; evaluation errors propagate.
pub fn dbi_sweep(
    points: &[Vec<f64>],
    dendrogram: &Dendrogram,
    k_min: usize,
    k_max: usize,
) -> Result<Vec<DbiPoint>, ClusterError> {
    if k_min < 2 {
        return Err(ClusterError::ZeroClusters);
    }
    if k_max > dendrogram.len() || k_min > k_max {
        return Err(ClusterError::TooManyClusters {
            requested: k_max,
            available: dendrogram.len(),
        });
    }
    let mut out = Vec::with_capacity(k_max - k_min + 1);
    for k in k_min..=k_max {
        let clustering = dendrogram.cut_k(k)?;
        let dbi = davies_bouldin(points, &clustering)?;
        let threshold = dendrogram.threshold_for_k(k)?;
        out.push(DbiPoint { k, threshold, dbi });
    }
    Ok(out)
}

/// The sweep point with minimal DBI (ties: smallest `k`).
pub fn best_by_dbi(sweep: &[DbiPoint]) -> Option<DbiPoint> {
    sweep.iter().copied().min_by(|a, b| {
        a.dbi
            .partial_cmp(&b.dbi)
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative_points, Engine, Linkage};

    /// Three well-separated blobs of 5 points each on a line.
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (center, spread) in [(0.0, 0.3), (50.0, 0.4), (100.0, 0.2)] {
            for i in 0..5 {
                pts.push(vec![center + spread * (i as f64 - 2.0)]);
            }
        }
        pts
    }

    fn labels_for_k(k: usize) -> Clustering {
        let d = agglomerative_points(&blobs(), Linkage::Average, Engine::NnChain, 1).unwrap();
        d.cut_k(k).unwrap()
    }

    #[test]
    fn dbi_minimal_at_true_k() {
        let pts = blobs();
        let d = agglomerative_points(&pts, Linkage::Average, Engine::NnChain, 1).unwrap();
        let sweep = dbi_sweep(&pts, &d, 2, 8).unwrap();
        let best = best_by_dbi(&sweep).unwrap();
        assert_eq!(best.k, 3, "sweep: {sweep:?}");
    }

    #[test]
    fn dbi_of_good_split_beats_bad_split() {
        let pts = blobs();
        let good = labels_for_k(3);
        let bad = labels_for_k(2);
        let dbi_good = davies_bouldin(&pts, &good).unwrap();
        let dbi_bad = davies_bouldin(&pts, &bad).unwrap();
        assert!(dbi_good < dbi_bad);
    }

    #[test]
    fn dbi_rejects_single_cluster() {
        let pts = blobs();
        let c = Clustering::from_labels(vec![0; pts.len()]).unwrap();
        assert!(davies_bouldin(&pts, &c).is_err());
    }

    #[test]
    fn dbi_handles_coincident_centroids() {
        // Two clusters with the same centroid → infinite DBI.
        let pts = vec![vec![0.0], vec![2.0], vec![1.0], vec![1.0]];
        let c = Clustering::from_labels(vec![0, 0, 1, 1]).unwrap();
        let dbi = davies_bouldin(&pts, &c).unwrap();
        assert!(dbi.is_infinite());
    }

    #[test]
    fn silhouette_high_for_good_split() {
        let pts = blobs();
        let s = silhouette(&pts, &labels_for_k(3)).unwrap();
        assert!(s > 0.9, "got {s}");
    }

    #[test]
    fn silhouette_degrades_when_overclustering() {
        let pts = blobs();
        let s3 = silhouette(&pts, &labels_for_k(3)).unwrap();
        let s6 = silhouette(&pts, &labels_for_k(6)).unwrap();
        assert!(s3 > s6);
    }

    #[test]
    fn silhouette_singletons_contribute_zero() {
        let pts = vec![vec![0.0], vec![0.1], vec![100.0]];
        let c = Clustering::from_labels(vec![0, 0, 1]).unwrap();
        let s = silhouette(&pts, &c).unwrap();
        // Two near points score ≈1 each, singleton 0 ⇒ mean ≈ 2/3.
        assert!((s - 2.0 / 3.0).abs() < 0.01, "got {s}");
    }

    #[test]
    fn sweep_validates_range() {
        let pts = blobs();
        let d = agglomerative_points(&pts, Linkage::Average, Engine::NnChain, 1).unwrap();
        assert!(dbi_sweep(&pts, &d, 1, 5).is_err());
        assert!(dbi_sweep(&pts, &d, 2, 99).is_err());
        assert!(dbi_sweep(&pts, &d, 5, 3).is_err());
    }

    #[test]
    fn sweep_thresholds_decrease_with_k() {
        let pts = blobs();
        let d = agglomerative_points(&pts, Linkage::Average, Engine::NnChain, 1).unwrap();
        let sweep = dbi_sweep(&pts, &d, 2, 10).unwrap();
        for w in sweep.windows(2) {
            assert!(w[0].threshold >= w[1].threshold);
        }
    }
}

/// Calinski–Harabasz index (variance-ratio criterion): the ratio of
/// between-cluster to within-cluster dispersion, scaled by degrees of
/// freedom. Higher is better — an alternative metric-tuner objective
/// the ablation benchmarks compare against DBI.
///
/// # Errors
/// As for [`davies_bouldin`].
pub fn calinski_harabasz(
    points: &[Vec<f64>],
    clustering: &Clustering,
) -> Result<f64, ClusterError> {
    if clustering.k < 2 {
        return Err(ClusterError::ZeroClusters);
    }
    let n = points.len();
    if n <= clustering.k {
        return Err(ClusterError::TooManyClusters {
            requested: clustering.k,
            available: n,
        });
    }
    let centroids = clustering.centroids(points)?;
    let sizes = clustering.sizes();
    let dim = points[0].len();
    // Global centroid.
    let mut global = vec![0.0; dim];
    for p in points {
        for (g, v) in global.iter_mut().zip(p) {
            *g += v;
        }
    }
    for g in global.iter_mut() {
        *g /= n as f64;
    }
    // Between-group sum of squares.
    let mut bgss = 0.0;
    for (c, centroid) in centroids.iter().enumerate() {
        let d2: f64 = centroid
            .iter()
            .zip(&global)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        bgss += sizes[c] as f64 * d2;
    }
    // Within-group sum of squares.
    let mut wgss = 0.0;
    for (p, &l) in points.iter().zip(&clustering.labels) {
        wgss += p
            .iter()
            .zip(&centroids[l])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>();
    }
    if wgss <= 0.0 {
        return Ok(f64::INFINITY);
    }
    let k = clustering.k as f64;
    Ok((bgss / (k - 1.0)) / (wgss / (n as f64 - k)))
}

#[cfg(test)]
mod ch_tests {
    use super::*;
    use crate::agglomerative::{agglomerative_points, Engine, Linkage};

    /// Three irregular 2-D blobs (pseudo-random scatter, so
    /// sub-splitting a blob doesn't keep shrinking the within-variance
    /// the way a regular lattice would).
    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (b, center) in [(0u64, 0.0f64), (1, 50.0), (2, 100.0)] {
            for i in 0..8u64 {
                let jx = (((b * 8 + i) * 2_654_435_761) % 1_000) as f64 / 500.0 - 1.0;
                let jy = (((b * 8 + i) * 40_503) % 1_000) as f64 / 500.0 - 1.0;
                pts.push(vec![center + jx, jy]);
            }
        }
        pts
    }

    #[test]
    fn ch_maximal_at_true_k() {
        let pts = blobs();
        let d = agglomerative_points(&pts, Linkage::Average, Engine::NnChain, 1).unwrap();
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 2..=7 {
            let c = d.cut_k(k).unwrap();
            let ch = calinski_harabasz(&pts, &c).unwrap();
            if ch > best.1 {
                best = (k, ch);
            }
        }
        assert_eq!(best.0, 3, "CH curve peak at {}", best.0);
    }

    #[test]
    fn ch_rejects_degenerate_inputs() {
        let pts = blobs();
        let single = Clustering::from_labels(vec![0; pts.len()]).unwrap();
        assert!(calinski_harabasz(&pts, &single).is_err());
        let all = Clustering::from_labels((0..pts.len()).collect()).unwrap();
        assert!(calinski_harabasz(&pts, &all).is_err());
    }

    #[test]
    fn ch_infinite_for_zero_within_variance() {
        let pts = vec![vec![0.0], vec![0.0], vec![5.0], vec![5.0]];
        let c = Clustering::from_labels(vec![0, 0, 1, 1]).unwrap();
        assert!(calinski_harabasz(&pts, &c).unwrap().is_infinite());
    }
}
