//! Distance sources: where the agglomerative engines read cluster
//! distances from.
//!
//! Both engines in [`crate::agglomerative`] touch distances through
//! exactly three operations — `len`, `get`, `set` — plus a `retire`
//! notification when a cluster slot dies. [`DistanceSource`] names
//! that seam, with two implementations:
//!
//! * [`DistanceMatrix`] — the materialised condensed matrix: every
//!   pair precomputed, O(n²) memory. Right when leaf distances are
//!   expensive (the raw 4,032-dim traffic vectors) and will be read
//!   repeatedly.
//! * [`OnDemandMetric`] — matrix-free: leaf distances are recomputed
//!   from a row-major [`FeatureView`] on every read, and only the
//!   Lance–Williams rows of *merged* clusters are stored (allocated on
//!   first write, freed when the slot retires). No condensed buffer is
//!   ever materialised, so memory follows the number of live internal
//!   clusters instead of n²/2 — the enabler for clustering the paper's
//!   9,600 towers (and beyond) in the 6-dim spectral feature space,
//!   where a leaf distance costs six subtract-square-adds.
//!
//! The two sources are *bit-identical* under the same engine and
//! metric: leaf reads call the same [`euclidean`] kernel the matrix
//! builder uses (symmetric at the bit level — the squared differences
//! erase operand order), and merged-cluster reads return the exact
//! values the engine stored. A golden test in
//! [`crate::agglomerative`] pins this.

use towerlens_obs::LazyCounter;

use crate::distance::{euclidean, DistanceMatrix};

/// Leaf-distance evaluations performed by on-demand sources, across
/// all runs. Batched: one add per clustering run, flushed when the
/// metric drops, so the count is exact (and thread-invariant — the
/// engines are serial).
static ON_DEMAND_EVALUATIONS: LazyCounter =
    LazyCounter::new("cluster.distance.on_demand_evaluations");

/// What the agglomerative engines need from distance storage.
///
/// `get`/`set` address unordered pairs of *slots* (initially one point
/// per slot); the engines guarantee `i ≠ j` slots are only read while
/// both are active. `set` is only ever called by the Lance–Williams
/// update with the surviving merge slot as its first index.
pub trait DistanceSource {
    /// Number of slots (points) the source was built over.
    fn len(&self) -> usize;

    /// `true` when built over zero points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current distance between the clusters seated at `i` and `j`
    /// (0 when `i == j`).
    fn get(&mut self, i: usize, j: usize) -> f64;

    /// Overwrites the distance of a pair (Lance–Williams update; `i`
    /// is the surviving merge slot).
    fn set(&mut self, i: usize, j: usize, v: f64);

    /// The cluster seated at `slot` has been merged away; its
    /// distances will never be read again. Storage may reclaim.
    fn retire(&mut self, slot: usize) {
        let _ = slot;
    }

    /// Notification that `survivor` absorbed `absorbed` in a merge:
    /// `survivor` now seats an internal cluster. Called after the
    /// Lance–Williams updates and before `retire(absorbed)`. Sources
    /// with spatial acceleration structures use this to maintain
    /// cluster extents; the default does nothing.
    fn promote(&mut self, survivor: usize, absorbed: usize) {
        let _ = (survivor, absorbed);
    }

    /// The nearest active neighbour of `top` as `(slot, distance)`,
    /// or `None` when no other slot is active. On exact distance ties
    /// the result must prefer `prev` if it participates in the tie,
    /// and the lowest slot index otherwise — the contract the nn-chain
    /// engine's termination proof and deterministic output rest on.
    ///
    /// The default is the reference linear scan; indexed sources
    /// override it with a pruned search that returns the identical
    /// answer.
    fn nearest_active(
        &mut self,
        top: usize,
        active: &[bool],
        prev: Option<usize>,
    ) -> Option<(usize, f64)> {
        let mut nearest = usize::MAX;
        let mut best = f64::INFINITY;
        for (k, &alive) in active.iter().enumerate().take(self.len()) {
            if k == top || !alive {
                continue;
            }
            let d = self.get(top, k);
            if d < best || (d == best && Some(k) == prev) {
                best = d;
                nearest = k;
            }
        }
        (nearest != usize::MAX).then_some((nearest, best))
    }
}

impl DistanceSource for DistanceMatrix {
    fn len(&self) -> usize {
        DistanceMatrix::len(self)
    }
    fn get(&mut self, i: usize, j: usize) -> f64 {
        DistanceMatrix::get(self, i, j)
    }
    fn set(&mut self, i: usize, j: usize, v: f64) {
        DistanceMatrix::set(self, i, j, v);
    }
}

/// A row-major view of tower features: anything that can produce the
/// Euclidean distance between two of its rows on demand.
///
/// Implemented for `[Vec<f64>]` (the in-memory feature matrices the
/// pipeline produces) and, in `towerlens-pipeline`, for the f32
/// chunked `TowerMatrix` storage.
pub trait FeatureView {
    /// Number of rows (towers).
    fn len(&self) -> usize;

    /// `true` when the view has no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Euclidean distance between rows `i` and `j`.
    fn distance(&self, i: usize, j: usize) -> f64;
}

impl FeatureView for [Vec<f64>] {
    fn len(&self) -> usize {
        <[Vec<f64>]>::len(self)
    }
    fn distance(&self, i: usize, j: usize) -> f64 {
        euclidean(&self[i], &self[j])
    }
}

/// The `k` nearest neighbours of `query` in a [`FeatureView`],
/// computed by a single linear scan — no distance matrix is ever
/// materialised, so memory stays O(k) regardless of `view.len()`.
///
/// Returns `(index, distance)` pairs sorted ascending by
/// `(distance, index)`; ties therefore break to the lower index and
/// the result is fully deterministic. `query` itself is excluded.
/// Fewer than `k` pairs come back when the view is small.
pub fn top_k_nearest<V: FeatureView + ?Sized>(
    view: &V,
    query: usize,
    k: usize,
) -> Vec<(usize, f64)> {
    let n = view.len();
    if k == 0 || query >= n {
        return Vec::new();
    }
    let mut top = TopK::new(k);
    for j in 0..n {
        if j == query {
            continue;
        }
        top.offer(j, view.distance(query, j));
    }
    top.into_sorted()
}

/// A bounded max-heap keeping the `k` smallest `(distance, index)`
/// candidates seen so far, ordered lexicographically by
/// `(distance, index)` so ties are fully deterministic.
///
/// Replacing a full heap's root is O(log k) against the O(k) shift of
/// sorted insertion, and [`TopK::worst`] gives the pruning threshold
/// the spatial index's top-k descent needs in O(1). Offering every
/// candidate of a linear scan yields exactly the `k` smallest by
/// `(distance, index)` — the same set, in the same order, as the
/// sorted-buffer implementation this replaced.
#[derive(Debug, Clone, Default)]
pub struct TopK {
    k: usize,
    /// Max-heap: `heap[0]` is the worst (largest) retained candidate.
    heap: Vec<(f64, usize)>,
}

impl TopK {
    /// An empty accumulator retaining at most `k` candidates.
    #[must_use]
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: Vec::with_capacity(k.min(1 << 12)),
        }
    }

    /// `true` once `k` candidates are retained (the threshold in
    /// [`TopK::worst`] is now meaningful for pruning).
    #[must_use]
    pub fn full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The retention bound `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// The worst retained candidate as `(distance, index)`, only once
    /// the accumulator is full — a candidate set that isn't full yet
    /// admits everything, so there is no threshold to prune against.
    #[must_use]
    pub fn worst(&self) -> Option<(f64, usize)> {
        (self.k > 0 && self.full()).then(|| self.heap[0])
    }

    /// Offers a candidate; it is retained iff it is among the `k`
    /// smallest by `(distance, index)` seen so far.
    pub fn offer(&mut self, index: usize, distance: f64) {
        if self.k == 0 {
            return;
        }
        let entry = (distance, index);
        if self.heap.len() < self.k {
            self.heap.push(entry);
            self.sift_up(self.heap.len() - 1);
        } else if lex_less(entry, self.heap[0]) {
            self.heap[0] = entry;
            self.sift_down(0);
        }
    }

    /// Consumes the accumulator, returning `(index, distance)`
    /// ascending by `(distance, index)`.
    #[must_use]
    pub fn into_sorted(mut self) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.heap.len());
        self.sorted_into(&mut out);
        out
    }

    /// Empties the accumulator into `out` (appended, ascending by
    /// `(distance, index)`) and re-arms it for `reset`/reuse — the
    /// allocation-free counterpart of [`TopK::into_sorted`] for
    /// callers that keep scratch buffers across queries.
    pub fn sorted_into(&mut self, out: &mut Vec<(usize, f64)>) {
        self.heap
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out.extend(self.heap.drain(..).map(|(d, i)| (i, d)));
    }

    /// Clears retained candidates and sets a new retention bound,
    /// keeping the heap's allocation for reuse.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    fn sift_up(&mut self, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            if lex_less(self.heap[parent], self.heap[at]) {
                self.heap.swap(parent, at);
                at = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut at: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * at + 1, 2 * at + 2);
            let mut largest = at;
            if l < n && lex_less(self.heap[largest], self.heap[l]) {
                largest = l;
            }
            if r < n && lex_less(self.heap[largest], self.heap[r]) {
                largest = r;
            }
            if largest == at {
                break;
            }
            self.heap.swap(at, largest);
            at = largest;
        }
    }
}

/// Strict lexicographic `(distance, index)` order (total: distances
/// compare via `total_cmp`, though the kernels never produce NaN).
#[inline]
fn lex_less(a: (f64, usize), b: (f64, usize)) -> bool {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).is_lt()
}

/// The Lance–Williams row store shared by the matrix-free sources:
/// rows are allocated lazily at a merged slot's first `set` and freed
/// by `retire`; `NaN` marks entries whose value lives on the *other*
/// endpoint's row, or — for leaf pairs — is recomputed from the
/// metric. Peak memory is `(live internal clusters) × n` entries; an
/// agglomeration that pairs every point first peaks at n²/4 — half the
/// condensed matrix — while typical incremental merge orders stay far
/// below. Either way the O(n²) *leaf* triangle, which dominates at raw
/// dimensionality, is never stored.
#[derive(Debug)]
pub(crate) struct LwRows {
    rows: Vec<Option<Box<[f64]>>>,
}

impl LwRows {
    /// An empty store over `n` slots; no rows are allocated yet.
    pub(crate) fn new(n: usize) -> LwRows {
        LwRows {
            rows: vec![None; n],
        }
    }

    /// The stored cluster distance of the pair, if either endpoint's
    /// row holds one. A stored value wins over any leaf metric: once a
    /// slot holds a merged cluster, its distances are defined by the
    /// linkage recurrence, not the underlying points.
    #[inline]
    pub(crate) fn read(&self, i: usize, j: usize) -> Option<f64> {
        if let Some(row) = self.rows[i].as_deref() {
            let v = row[j];
            if !v.is_nan() {
                return Some(v);
            }
        }
        if let Some(row) = self.rows[j].as_deref() {
            let v = row[i];
            if !v.is_nan() {
                return Some(v);
            }
        }
        None
    }

    /// Stores a pair's distance, keeping every live copy coherent and
    /// allocating on the first index (the surviving merge slot) only
    /// when no row exists yet.
    pub(crate) fn set(&mut self, i: usize, j: usize, v: f64) {
        if i == j {
            return;
        }
        debug_assert!(!v.is_nan(), "cluster distances must be numbers");
        let mut stored = false;
        if let Some(row) = self.rows[i].as_deref_mut() {
            row[j] = v;
            stored = true;
        }
        if let Some(row) = self.rows[j].as_deref_mut() {
            row[i] = v;
            stored = true;
        }
        if !stored {
            let mut row = vec![f64::NAN; self.rows.len()].into_boxed_slice();
            row[j] = v;
            self.rows[i] = Some(row);
        }
    }

    /// Frees a retired slot's row.
    pub(crate) fn retire(&mut self, slot: usize) {
        self.rows[slot] = None;
    }

    /// Rows currently allocated (live merged clusters).
    pub(crate) fn live(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }
}

/// The matrix-free distance source: leaf distances computed on demand
/// from a [`FeatureView`], Lance–Williams rows ([`LwRows`]) stored
/// only for merged clusters.
#[derive(Debug)]
pub struct OnDemandMetric<'a, V: FeatureView + ?Sized> {
    view: &'a V,
    rows: LwRows,
    evaluations: u64,
}

impl<'a, V: FeatureView + ?Sized> OnDemandMetric<'a, V> {
    /// Wraps a feature view. No distances are computed yet.
    pub fn new(view: &'a V) -> Self {
        let n = view.len();
        OnDemandMetric {
            view,
            rows: LwRows::new(n),
            evaluations: 0,
        }
    }

    /// Leaf-distance evaluations performed so far (each `get` that
    /// reached the view, including repeats of the same pair).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Lance–Williams rows currently allocated (live merged clusters).
    pub fn live_rows(&self) -> usize {
        self.rows.live()
    }
}

impl<V: FeatureView + ?Sized> DistanceSource for OnDemandMetric<'_, V> {
    fn len(&self) -> usize {
        self.view.len()
    }

    fn get(&mut self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        if let Some(v) = self.rows.read(i, j) {
            return v;
        }
        self.evaluations += 1;
        self.view.distance(i, j)
    }

    fn set(&mut self, i: usize, j: usize, v: f64) {
        self.rows.set(i, j, v);
    }

    fn retire(&mut self, slot: usize) {
        self.rows.retire(slot);
    }
}

impl<V: FeatureView + ?Sized> Drop for OnDemandMetric<'_, V> {
    fn drop(&mut self) {
        if self.evaluations > 0 {
            ON_DEMAND_EVALUATIONS.add(self.evaluations);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;

    fn pts() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![6.0, 8.0],
            vec![-3.0, -4.0],
        ]
    }

    #[test]
    fn leaf_reads_match_the_materialised_matrix_bit_for_bit() {
        let points = pts();
        let mut built = DistanceMatrix::build(&points, 1).unwrap();
        let mut lazy = OnDemandMetric::new(&points[..]);
        for i in 0..points.len() {
            for j in 0..points.len() {
                assert_eq!(
                    DistanceSource::get(&mut lazy, i, j).to_bits(),
                    DistanceSource::get(&mut built, i, j).to_bits(),
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn counts_every_evaluation_including_repeats() {
        let points = pts();
        let mut lazy = OnDemandMetric::new(&points[..]);
        let _ = lazy.get(0, 1);
        let _ = lazy.get(1, 0);
        let _ = lazy.get(2, 2); // diagonal: no evaluation
        assert_eq!(lazy.evaluations(), 2);
    }

    #[test]
    fn set_values_win_over_the_view_and_retire_frees_rows() {
        let points = pts();
        let mut lazy = OnDemandMetric::new(&points[..]);
        lazy.set(0, 2, 42.0);
        assert_eq!(lazy.live_rows(), 1);
        assert_eq!(lazy.get(0, 2), 42.0);
        assert_eq!(lazy.get(2, 0), 42.0);
        // An unset pair on the same row still falls back to the view.
        assert_eq!(lazy.get(0, 1), 5.0);
        // Updates through the other endpoint stay coherent.
        lazy.set(2, 0, 7.0);
        assert_eq!(lazy.live_rows(), 1, "no second row for the same pair");
        assert_eq!(lazy.get(0, 2), 7.0);
        lazy.retire(0);
        assert_eq!(lazy.live_rows(), 0);
        // With the row gone the pair is a leaf pair again.
        assert_eq!(lazy.get(0, 2), 10.0);
    }

    #[test]
    fn top_k_matches_brute_force_reference() {
        // Deterministic pseudo-random points, then pin the scan
        // against the O(n²) sort-everything reference.
        let n = 37;
        let points: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..6)
                    .map(|d| (((i * 6 + d) as f64) * 0.7315).sin() * 3.0)
                    .collect()
            })
            .collect();
        let view = &points[..];
        for query in 0..n {
            for k in [0, 1, 3, n - 1, n + 5] {
                let fast = top_k_nearest(view, query, k);
                let mut brute: Vec<(usize, f64)> = (0..n)
                    .filter(|&j| j != query)
                    .map(|j| (j, view.distance(query, j)))
                    .collect();
                brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
                brute.truncate(k);
                assert_eq!(fast, brute, "query {query} k {k}");
            }
        }
    }

    #[test]
    fn top_k_breaks_distance_ties_to_the_lower_index() {
        // Four points equidistant from the origin point.
        let points = [
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
            vec![0.0, -1.0],
        ];
        let got = top_k_nearest(&points[..], 0, 2);
        assert_eq!(got, vec![(1, 1.0), (2, 1.0)]);
    }

    #[test]
    fn flushes_evaluations_to_the_registry_on_drop() {
        let read = || {
            towerlens_obs::global()
                .snapshot()
                .counters
                .get("cluster.distance.on_demand_evaluations")
                .copied()
                .unwrap_or(0)
        };
        let before = read();
        let points = pts();
        {
            let mut lazy = OnDemandMetric::new(&points[..]);
            let _ = lazy.get(0, 1);
            let _ = lazy.get(0, 2);
            let _ = lazy.get(0, 3);
        }
        // ≥: other tests in this binary may run on-demand metrics
        // concurrently; the flush itself is exact.
        assert!(read() >= before + 3, "counter did not flush on drop");
    }
}
