//! Euclidean distances and the pairwise distance matrix.
//!
//! The paper clusters 9,600 towers described by 4,032-dimensional
//! vectors with Euclidean distance. Building the pairwise matrix is the
//! dominant cost (O(n²·d)), so [`DistanceMatrix::build`] parallelises
//! over rows with `std::thread::scope` — no extra dependency, and the
//! result is bit-identical regardless of thread count because each
//! entry is computed independently.

use towerlens_obs::LazyCounter;

use crate::error::{validate_points, ClusterError};

/// Pairwise distance evaluations, across all matrix builds. Batched:
/// one add of n(n−1)/2 per build, not one per pair.
static EVALUATIONS: LazyCounter = LazyCounter::new("cluster.distance.evaluations");

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// A symmetric pairwise distance matrix stored as the strict upper
/// triangle (condensed form), halving memory for large n.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Condensed entries: row-major strict upper triangle,
    /// `data[idx(i, j)] = d(i, j)` for `i < j`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the Euclidean distance matrix of a point set, using up to
    /// `threads` worker threads (`0` means "use available parallelism").
    ///
    /// # Errors
    /// Propagates point-set validation failures; see
    /// [`ClusterError`].
    pub fn build(points: &[Vec<f64>], threads: usize) -> Result<Self, ClusterError> {
        validate_points(points)?;
        let n = points.len();
        let len = n * (n - 1) / 2;
        let mut data = vec![0.0f64; len];

        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };

        if threads <= 1 || n < 64 {
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    data[idx] = euclidean(&points[i], &points[j]);
                    idx += 1;
                }
            }
        } else {
            // Partition the condensed buffer into per-row slices; each
            // worker takes whole rows so writes never overlap.
            let mut slices: Vec<(usize, &mut [f64])> = Vec::with_capacity(n);
            let mut rest = data.as_mut_slice();
            for i in 0..n {
                let row_len = n - i - 1;
                let (row, tail) = rest.split_at_mut(row_len);
                slices.push((i, row));
                rest = tail;
            }
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slices = std::sync::Mutex::new(slices);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let item = {
                            let mut guard = slices.lock().expect("row queue poisoned");
                            guard.pop()
                        };
                        let Some((i, row)) = item else { break };
                        next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        for (off, cell) in row.iter_mut().enumerate() {
                            let j = i + 1 + off;
                            *cell = euclidean(&points[i], &points[j]);
                        }
                    });
                }
            });
        }

        EVALUATIONS.add(len as u64);
        Ok(DistanceMatrix { n, data })
    }

    /// Constructs a matrix directly from a condensed buffer
    /// (row-major strict upper triangle). Used by tests and by callers
    /// with a custom metric.
    ///
    /// # Errors
    /// [`ClusterError::Internal`] if the buffer length doesn't match
    /// `n·(n−1)/2`.
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Result<Self, ClusterError> {
        if data.len() != n * (n - 1) / 2 {
            return Err(ClusterError::Internal("condensed length mismatch"));
        }
        Ok(DistanceMatrix { n, data })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when built over zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Condensed index of the unordered pair `{i, j}`, `i ≠ j`.
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        // Start of row i in the condensed layout plus the offset.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between points `i` and `j` (0 when `i == j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.data[self.idx(i, j)]
        }
    }

    /// Overwrites the distance of a pair (used by linkage updates).
    #[inline]
    pub(crate) fn set(&mut self, i: usize, j: usize, v: f64) {
        if i != j {
            let k = self.idx(i, j);
            self.data[k] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![6.0, 8.0],
            vec![-3.0, -4.0],
        ]
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(sq_euclidean(&[1.0], &[4.0]), 9.0);
        assert_eq!(euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn matrix_matches_pairwise_distances() {
        let m = DistanceMatrix::build(&pts(), 1).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 2), 10.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 3), 5.0);
        assert_eq!(m.get(2, 3), 15.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Enough points to cross the parallel threshold.
        let points: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin(),
                    (i as f64 * 0.11).cos(),
                    i as f64 / 100.0,
                ]
            })
            .collect();
        let serial = DistanceMatrix::build(&points, 1).unwrap();
        let parallel = DistanceMatrix::build(&points, 4).unwrap();
        for i in 0..100 {
            for j in 0..100 {
                assert_eq!(serial.get(i, j), parallel.get(i, j));
            }
        }
    }

    #[test]
    fn build_validates_input() {
        assert!(matches!(
            DistanceMatrix::build(&[], 1),
            Err(ClusterError::EmptyInput)
        ));
        assert!(matches!(
            DistanceMatrix::build(&[vec![1.0], vec![1.0, 2.0]], 1),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_condensed_checks_length() {
        assert!(DistanceMatrix::from_condensed(3, vec![1.0, 2.0, 3.0]).is_ok());
        assert!(DistanceMatrix::from_condensed(3, vec![1.0]).is_err());
    }

    #[test]
    fn set_then_get_roundtrips() {
        let mut m = DistanceMatrix::build(&pts(), 1).unwrap();
        m.set(1, 3, 42.0);
        assert_eq!(m.get(3, 1), 42.0);
        m.set(2, 2, 7.0); // silently ignored: diagonal is fixed at 0
        assert_eq!(m.get(2, 2), 0.0);
    }
}
