//! Euclidean distances and the pairwise distance matrix.
//!
//! The paper clusters 9,600 towers described by 4,032-dimensional
//! vectors with Euclidean distance. Building the pairwise matrix is the
//! dominant cost (O(n²·d)) and is memory-bound when iterated row by
//! row (every row streams the whole point set through cache), so
//! [`DistanceMatrix::build`] works in row-tiles: within a tile of
//! [`TILE_ROWS`] rows the column loop is outermost, so each point is
//! streamed once per tile instead of once per row. Tiles parallelise
//! via [`towerlens_par::par_map_indexed`] — no extra dependency, and
//! the result is bit-identical regardless of thread count because
//! every cell is a pure function of its pair, assembled in tile order.

use towerlens_obs::LazyCounter;

use crate::error::{validate_points, ClusterError};

/// Pairwise distance evaluations, across all matrix builds. Batched:
/// one add of n(n−1)/2 per build, not one per pair.
static EVALUATIONS: LazyCounter = LazyCounter::new("cluster.distance.evaluations");

/// Squared Euclidean distance between two equal-length slices.
///
/// Accumulates eight independent lanes over the bulk of the vector so
/// the adds don't serialise on one dependency chain; the remainder
/// folds sequentially, so short inputs sum in the classic
/// left-to-right order. On x86-64 with AVX the same eight-lane
/// reduction runs on 256-bit vectors — the lane structure is
/// identical, so the scalar and AVX paths return bit-identical
/// results (no FMA: fusing would change the rounding).
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX availability was just checked.
            #[allow(unsafe_code)]
            return unsafe { sq_euclidean_avx(a, b) };
        }
    }
    sq_euclidean_scalar(a, b)
}

/// Portable eight-lane reference; the canonical reduction order.
fn sq_euclidean_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 8];
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (xa, xb) in (&mut ac).zip(&mut bc) {
        for l in 0..8 {
            let d = xa[l] - xb[l];
            lanes[l] += d * d;
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// The same eight-lane reduction on two 256-bit accumulators.
///
/// # Safety
/// Requires AVX; callers must check `is_x86_feature_detected!("avx")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(unsafe_code)]
unsafe fn sq_euclidean_avx(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let m = n - n % 8;
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut k = 0;
    while k < m {
        let d0 = _mm256_sub_pd(
            _mm256_loadu_pd(a.as_ptr().add(k)),
            _mm256_loadu_pd(b.as_ptr().add(k)),
        );
        let d1 = _mm256_sub_pd(
            _mm256_loadu_pd(a.as_ptr().add(k + 4)),
            _mm256_loadu_pd(b.as_ptr().add(k + 4)),
        );
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
        k += 8;
    }
    let mut lanes = [0.0f64; 8];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc0);
    _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1);
    let mut tail = 0.0f64;
    while k < n {
        let d = a[k] - b[k];
        tail += d * d;
        k += 1;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Candidates per [`sq_euclidean6_batch`] call — one AVX register of
/// f64 lanes.
pub const BATCH6: usize = 4;

/// Squared Euclidean distances between one 6-dim query and up to
/// [`BATCH6`] candidates stored in *transposed* (dimension-major)
/// lanes: `lanes[d * width + c]` is dimension `d` of candidate `c`,
/// and candidates `offset..offset + take` are evaluated.
///
/// At length 6 the canonical [`sq_euclidean`] reduction is a pure
/// sequential tail sum (no 8-lane chunk fires), so each output lane
/// here — scalar or AVX, where the four candidates ride the four
/// register lanes and every vector op is lanewise IEEE — reproduces
/// `sq_euclidean(q, candidate)` bit for bit. The transposed layout is
/// what makes the AVX loads contiguous; the spatial index stores its
/// leaf buckets this way.
#[inline]
pub fn sq_euclidean6_batch(
    q: &[f64; 6],
    lanes: &[f64],
    width: usize,
    offset: usize,
    take: usize,
) -> [f64; BATCH6] {
    debug_assert!(take <= BATCH6 && offset + take <= width);
    debug_assert_eq!(lanes.len(), 6 * width);
    #[cfg(target_arch = "x86_64")]
    {
        if take == BATCH6 && std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX availability was just checked, and the
            // debug-asserted preconditions make every strided load
            // in-bounds (`offset + 4 <= width` per dimension row).
            #[allow(unsafe_code)]
            return unsafe { sq_euclidean6_batch_avx(q, lanes, width, offset) };
        }
    }
    sq_euclidean6_batch_scalar(q, lanes, width, offset, take)
}

/// Portable reference for the batched 6-dim kernel: each lane is the
/// sequential left-to-right sum `sq_euclidean` produces at length 6.
fn sq_euclidean6_batch_scalar(
    q: &[f64; 6],
    lanes: &[f64],
    width: usize,
    offset: usize,
    take: usize,
) -> [f64; BATCH6] {
    let mut out = [0.0f64; BATCH6];
    for (c, acc) in out.iter_mut().enumerate().take(take) {
        let mut tail = 0.0f64;
        for (d, &qd) in q.iter().enumerate() {
            let diff = qd - lanes[d * width + offset + c];
            tail += diff * diff;
        }
        *acc = tail;
    }
    out
}

/// Four candidates across the four f64 lanes of one 256-bit register;
/// the six accumulating adds stay sequential per lane, so each lane is
/// bit-identical to the scalar reference (no FMA).
///
/// # Safety
/// Requires AVX; callers must check `is_x86_feature_detected!("avx")`
/// and guarantee `offset + 4 <= width` with `lanes.len() == 6 * width`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(unsafe_code)]
unsafe fn sq_euclidean6_batch_avx(
    q: &[f64; 6],
    lanes: &[f64],
    width: usize,
    offset: usize,
) -> [f64; BATCH6] {
    use std::arch::x86_64::*;
    let mut acc = _mm256_setzero_pd();
    for (d, &qd) in q.iter().enumerate() {
        let diff = _mm256_sub_pd(
            _mm256_set1_pd(qd),
            _mm256_loadu_pd(lanes.as_ptr().add(d * width + offset)),
        );
        acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    let mut out = [0.0f64; BATCH6];
    _mm256_storeu_pd(out.as_mut_ptr(), acc);
    out
}

/// Rows per build tile. 16 rows × 4,032 dims × 8 bytes ≈ 512 KiB of
/// resident tile data — small enough for L2, large enough that the
/// streamed column vector amortises over many rows.
const TILE_ROWS: usize = 16;

/// A symmetric pairwise distance matrix stored as the strict upper
/// triangle (condensed form), halving memory for large n.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Condensed entries: row-major strict upper triangle,
    /// `data[idx(i, j)] = d(i, j)` for `i < j`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the Euclidean distance matrix of a point set, using up to
    /// `threads` worker threads (`0` means "use available parallelism").
    ///
    /// # Errors
    /// Propagates point-set validation failures; see
    /// [`ClusterError`].
    pub fn build(points: &[Vec<f64>], threads: usize) -> Result<Self, ClusterError> {
        validate_points(points)?;
        let n = points.len();
        let len = n * (n - 1) / 2;

        // A tile owns rows i0..i1, whose condensed entries are one
        // contiguous run. The column loop is outermost so points[j]
        // stays hot across the tile's rows — at the paper's 4,032
        // dimensions this cuts memory traffic by ~TILE_ROWS× and is
        // worth ~1.7× wall time over the row-major sweep.
        let tiles: Vec<usize> = (0..n.saturating_sub(1)).step_by(TILE_ROWS).collect();
        // Below the threshold the spawn overhead dominates; force the
        // serial path (one worker runs inline).
        let workers = if n < 64 { 1 } else { threads };
        let parts = towerlens_par::par_map_indexed(&tiles, workers, |_, &i0| {
            let i1 = (i0 + TILE_ROWS).min(n);
            // Offset of each tile row's first cell within the part.
            let base: Vec<usize> = (i0..i1)
                .scan(0usize, |acc, i| {
                    let start = *acc;
                    *acc += n - 1 - i;
                    Some(start)
                })
                .collect();
            let cells: usize = (i0..i1).map(|i| n - 1 - i).sum();
            let mut part = vec![0.0f64; cells];
            for j in (i0 + 1)..n {
                for i in i0..i1.min(j) {
                    part[base[i - i0] + (j - i - 1)] = euclidean(&points[i], &points[j]);
                }
            }
            part
        });
        let mut data = Vec::with_capacity(len);
        for part in &parts {
            data.extend_from_slice(part);
        }
        debug_assert_eq!(data.len(), len);

        EVALUATIONS.add(len as u64);
        Ok(DistanceMatrix { n, data })
    }

    /// Constructs a matrix directly from a condensed buffer
    /// (row-major strict upper triangle). Used by tests and by callers
    /// with a custom metric.
    ///
    /// # Errors
    /// [`ClusterError::CondensedLengthMismatch`] if the buffer length
    /// doesn't match `n·(n−1)/2`; the error carries both lengths.
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Result<Self, ClusterError> {
        let expected = n * n.saturating_sub(1) / 2;
        if data.len() != expected {
            return Err(ClusterError::CondensedLengthMismatch {
                n,
                expected,
                actual: data.len(),
            });
        }
        Ok(DistanceMatrix { n, data })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when built over zero points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Condensed index of the unordered pair `{i, j}`, `i ≠ j`.
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        // Start of row i in the condensed layout plus the offset.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between points `i` and `j` (0 when `i == j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.data[self.idx(i, j)]
        }
    }

    /// Overwrites the distance of a pair (used by linkage updates).
    #[inline]
    pub(crate) fn set(&mut self, i: usize, j: usize, v: f64) {
        if i != j {
            let k = self.idx(i, j);
            self.data[k] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![6.0, 8.0],
            vec![-3.0, -4.0],
        ]
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(sq_euclidean(&[1.0], &[4.0]), 9.0);
        assert_eq!(euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn dispatched_kernel_is_bit_identical_to_the_scalar_reference() {
        // Awkward lengths straddle the 8-lane boundary; the dispatched
        // path (AVX where available) must reproduce the canonical
        // scalar reduction exactly, bit for bit.
        for len in [0usize, 1, 7, 8, 9, 16, 31, 4_032] {
            let a: Vec<f64> = (0..len).map(|k| (k as f64 * 0.37).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len).map(|k| (k as f64 * 0.53).cos() * 2.0).collect();
            assert_eq!(
                sq_euclidean(&a, &b).to_bits(),
                sq_euclidean_scalar(&a, &b).to_bits(),
                "len={len}"
            );
        }
    }

    #[test]
    fn batched_6dim_kernel_is_bit_identical_per_lane() {
        // Awkward widths/offsets exercise both the AVX full-batch path
        // and the scalar remainder; every lane must reproduce the
        // general kernel on the untransposed pair, bit for bit.
        for width in [1usize, 3, 4, 5, 8, 11] {
            let rows: Vec<[f64; 6]> = (0..width)
                .map(|c| std::array::from_fn(|d| ((c * 6 + d) as f64 * 0.61).sin() * 4.0))
                .collect();
            let mut lanes = vec![0.0f64; 6 * width];
            for (c, row) in rows.iter().enumerate() {
                for (d, &v) in row.iter().enumerate() {
                    lanes[d * width + c] = v;
                }
            }
            let q: [f64; 6] = std::array::from_fn(|d| (d as f64 * 0.83).cos() * 3.0);
            let mut offset = 0;
            while offset < width {
                let take = (width - offset).min(BATCH6);
                let got = sq_euclidean6_batch(&q, &lanes, width, offset, take);
                let scalar = sq_euclidean6_batch_scalar(&q, &lanes, width, offset, take);
                for c in 0..take {
                    let want = sq_euclidean(&q, &rows[offset + c]);
                    assert_eq!(
                        got[c].to_bits(),
                        want.to_bits(),
                        "width={width} offset={offset} lane={c}"
                    );
                    assert_eq!(got[c].to_bits(), scalar[c].to_bits());
                }
                offset += take;
            }
        }
    }

    #[test]
    fn matrix_matches_pairwise_distances() {
        let m = DistanceMatrix::build(&pts(), 1).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 2), 10.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 3), 5.0);
        assert_eq!(m.get(2, 3), 15.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Enough points to cross the parallel threshold.
        let points: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin(),
                    (i as f64 * 0.11).cos(),
                    i as f64 / 100.0,
                ]
            })
            .collect();
        let serial = DistanceMatrix::build(&points, 1).unwrap();
        let parallel = DistanceMatrix::build(&points, 4).unwrap();
        for i in 0..100 {
            for j in 0..100 {
                assert_eq!(serial.get(i, j), parallel.get(i, j));
            }
        }
    }

    #[test]
    fn build_is_bit_identical_for_any_thread_count() {
        // Awkward thread counts make block boundaries land mid-row,
        // exercising the flat-index → (i, j) locator.
        let points: Vec<Vec<f64>> = (0..71)
            .map(|i| vec![(i as f64 * 0.53).sin(), (i as f64 * 0.21).tan(), i as f64])
            .collect();
        let reference = DistanceMatrix::build(&points, 1).unwrap();
        for threads in [2usize, 3, 5, 8, 13, 64] {
            let m = DistanceMatrix::build(&points, threads).unwrap();
            assert_eq!(reference.data, m.data, "threads={threads}");
        }
    }

    #[test]
    fn build_validates_input() {
        assert!(matches!(
            DistanceMatrix::build(&[], 1),
            Err(ClusterError::EmptyInput)
        ));
        assert!(matches!(
            DistanceMatrix::build(&[vec![1.0], vec![1.0, 2.0]], 1),
            Err(ClusterError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_condensed_checks_length() {
        assert!(DistanceMatrix::from_condensed(3, vec![1.0, 2.0, 3.0]).is_ok());
        assert_eq!(
            DistanceMatrix::from_condensed(3, vec![1.0]).unwrap_err(),
            ClusterError::CondensedLengthMismatch {
                n: 3,
                expected: 3,
                actual: 1,
            }
        );
        let msg = DistanceMatrix::from_condensed(4, vec![0.0; 5])
            .unwrap_err()
            .to_string();
        assert!(msg.contains("6") && msg.contains("5"), "{msg}");
    }

    #[test]
    fn set_then_get_roundtrips() {
        let mut m = DistanceMatrix::build(&pts(), 1).unwrap();
        m.set(1, 3, 42.0);
        assert_eq!(m.get(3, 1), 42.0);
        m.set(2, 2, 7.0); // silently ignored: diagonal is fixed at 0
        assert_eq!(m.get(2, 2), 0.0);
    }
}
