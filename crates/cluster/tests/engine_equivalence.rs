//! Property test: the O(n³) naive engine and the O(n²)
//! nearest-neighbour-chain engine are interchangeable — for any
//! random distance matrix and any linkage, every dendrogram cut
//! yields the same labeling.

use proptest::prelude::*;
use towerlens_cluster::agglomerative::{agglomerative, Engine, Linkage};
use towerlens_cluster::distance::DistanceMatrix;

const LINKAGES: [Linkage; 4] = [
    Linkage::Single,
    Linkage::Complete,
    Linkage::Average,
    Linkage::Ward,
];

/// Largest point count exercised; the condensed pool below is sized
/// for it (n·(n−1)/2 = 66 at n = 12).
const MAX_N: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_cut_identically_for_all_linkages(
        vals in prop::collection::vec(0.01f64..100.0, MAX_N * (MAX_N - 1) / 2),
        n in 2usize..=MAX_N,
    ) {
        // Random strictly positive distances: ties have probability
        // zero, so the merge order is unique and the engines must
        // agree exactly, not just up to reordering.
        let condensed: Vec<f64> = vals[..n * (n - 1) / 2].to_vec();
        for linkage in LINKAGES {
            let naive = agglomerative(
                DistanceMatrix::from_condensed(n, condensed.clone()).unwrap(),
                linkage,
                Engine::Naive,
            )
            .unwrap();
            let chain = agglomerative(
                DistanceMatrix::from_condensed(n, condensed.clone()).unwrap(),
                linkage,
                Engine::NnChain,
            )
            .unwrap();
            for k in 1..=n {
                let a = naive.cut_k(k).unwrap();
                let b = chain.cut_k(k).unwrap();
                prop_assert_eq!(
                    &a.labels,
                    &b.labels,
                    "n={} k={} {:?}: naive {:?} vs nn-chain {:?}",
                    n,
                    k,
                    linkage,
                    a.labels,
                    b.labels
                );
            }
        }
    }
}
