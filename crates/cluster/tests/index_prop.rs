//! Property tests: the exact-pruning spatial index is **bit-identical**
//! to brute force.
//!
//! The index's contract is not "approximately nearest" — every query
//! must return the same neighbours at the same `f64` bit patterns as a
//! linear scan over the same kernel, with ties broken to the lower
//! index. These properties drive that claim through adversarial
//! inputs: random clouds, duplicate-heavy clouds (every distance tied
//! many ways), `k ≥ n`, all-equal point sets, and random deactivation
//! orders. A final property pins the indexed nn-chain dendrogram to
//! the on-demand path bit for bit across all four linkages.

use proptest::prelude::*;
use towerlens_cluster::distance::euclidean;
use towerlens_cluster::{
    agglomerative_points_indexed, agglomerative_points_on_demand, top_k_nearest, Engine, Linkage,
    SearchStats, SpatialIndex, TopK,
};

const LINKAGES: [Linkage; 4] = [
    Linkage::Single,
    Linkage::Complete,
    Linkage::Average,
    Linkage::Ward,
];

/// A point cloud with deliberate tie mass: every coordinate is drawn
/// from a small `palette` of values (via `picks` indices), so equal
/// points and equal distances are common rather than probability-zero.
fn tied_cloud(palette: &[f64], picks: Vec<Vec<usize>>) -> Vec<Vec<f64>> {
    picks
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|p| palette[p % palette.len()])
                .collect()
        })
        .collect()
}

/// A generic cloud: continuous coordinates, ties unlikely.
fn random_cloud(max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 6), 1..max_n)
}

/// Brute-force oracle over the same kernel and the same bounded-heap
/// tie-break as the index: a plain scan of the active points.
fn brute_top_k(points: &[Vec<f64>], active: &[bool], query: usize, k: usize) -> Vec<(usize, f64)> {
    let mut top = TopK::new(k);
    for (j, p) in points.iter().enumerate() {
        if j == query || !active[j] {
            continue;
        }
        top.offer(j, euclidean(&points[query], p));
    }
    top.into_sorted()
}

fn assert_bits(tree: &[(usize, f64)], brute: &[(usize, f64)]) -> Result<(), TestCaseError> {
    prop_assert_eq!(tree.len(), brute.len(), "answer lengths differ");
    for ((ti, td), (bi, bd)) in tree.iter().zip(brute) {
        prop_assert_eq!(ti, bi, "neighbour index diverged");
        prop_assert_eq!(td.to_bits(), bd.to_bits(), "distance bits diverged");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn top_k_is_bit_identical_to_a_linear_scan(
        points in random_cloud(48),
        k in 0usize..52,
    ) {
        let tree = SpatialIndex::build(&points[..]);
        let active = vec![true; points.len()];
        let mut stats = SearchStats::default();
        for q in 0..points.len() {
            let fast = tree.top_k(&points[q], k, q, &mut stats);
            // `top_k_nearest` is the library's own linear-scan oracle;
            // `brute_top_k` re-derives it independently. All three must
            // agree to the bit.
            assert_bits(&fast, &top_k_nearest(&points[..], q, k))?;
            assert_bits(&fast, &brute_top_k(&points, &active, q, k))?;
        }
    }

    #[test]
    fn duplicate_heavy_clouds_tie_to_the_lowest_index(
        palette in prop::collection::vec(-8.0f64..8.0, 1..4),
        picks in prop::collection::vec(prop::collection::vec(0usize..4, 6), 1..40),
        k in 1usize..44,
    ) {
        // Palette-valued coordinates make exact ties the common case;
        // both sides must break every one of them to the lower index.
        let points = tied_cloud(&palette, picks);
        let tree = SpatialIndex::build(&points[..]);
        let mut stats = SearchStats::default();
        for q in 0..points.len() {
            let fast = tree.top_k(&points[q], k, q, &mut stats);
            assert_bits(&fast, &top_k_nearest(&points[..], q, k))?;
        }
    }

    #[test]
    fn all_equal_points_answer_like_brute_force(
        value in -50.0f64..50.0,
        n in 1usize..30,
        k in 0usize..34,
    ) {
        // The degenerate cloud: every distance is exactly 0.0, so the
        // answer is purely the tie-break order.
        let points: Vec<Vec<f64>> = (0..n).map(|_| vec![value; 6]).collect();
        let tree = SpatialIndex::build(&points[..]);
        let mut stats = SearchStats::default();
        for q in 0..n {
            let fast = tree.top_k(&points[q], k, q, &mut stats);
            let slow = top_k_nearest(&points[..], q, k);
            assert_bits(&fast, &slow)?;
            prop_assert!(fast.iter().all(|&(_, d)| d == 0.0));
        }
    }

    #[test]
    fn deactivation_never_breaks_exactness(
        points in random_cloud(36),
        dead_picks in prop::collection::vec(0usize..36, 0..24),
        k in 1usize..12,
    ) {
        // Deactivate a random subset (the nn-chain's merge pattern),
        // then every surviving query must still match a scan over the
        // survivors only.
        let mut tree = SpatialIndex::build(&points[..]);
        let mut active = vec![true; points.len()];
        for d in dead_picks {
            let d = d % points.len();
            tree.deactivate(d);
            active[d] = false;
        }
        let mut stats = SearchStats::default();
        for q in 0..points.len() {
            if !active[q] {
                continue;
            }
            let fast = tree.top_k(&points[q], k, q, &mut stats);
            assert_bits(&fast, &brute_top_k(&points, &active, q, k))?;
        }
    }

    #[test]
    fn indexed_dendrogram_is_bit_identical_to_on_demand(
        points in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 6), 2..28),
    ) {
        for linkage in LINKAGES {
            let lazy = agglomerative_points_on_demand(&points, linkage, Engine::NnChain).unwrap();
            let fast = agglomerative_points_indexed(&points, linkage, Engine::NnChain).unwrap();
            prop_assert_eq!(lazy.merges().len(), fast.merges().len());
            for (a, b) in lazy.merges().iter().zip(fast.merges()) {
                prop_assert_eq!(a.a, b.a, "{:?}", linkage);
                prop_assert_eq!(a.b, b.b, "{:?}", linkage);
                prop_assert_eq!(a.size, b.size, "{:?}", linkage);
                prop_assert_eq!(
                    a.distance.to_bits(),
                    b.distance.to_bits(),
                    "{:?}: merge height bits diverged",
                    linkage
                );
            }
        }
    }
}
