//! The on-disk dataset format.
//!
//! A dataset directory holds four tab-separated files:
//!
//! | file | columns | meaning |
//! |---|---|---|
//! | `logs.tsv` | user, start_s, end_s, cell_id, bytes, address | connection records (the `towerlens-trace` line format) |
//! | `towers.tsv` | id, lon, lat, address | base stations |
//! | `pois.tsv` | lon, lat, kind | points of interest (`kind` ∈ resident/transport/office/entertainment) |
//! | `truth.tsv` | id, kind | *optional* ground-truth region per tower (synthetic data only) |
//!
//! All parsers collect per-line errors instead of failing wholesale,
//! like the log parser — operator exports contain garbage.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use towerlens_city::geo::GeoPoint;
use towerlens_city::poi::Poi;
use towerlens_city::zone::{PoiKind, RegionKind};

/// A parsed tower row.
#[derive(Debug, Clone, PartialEq)]
pub struct TowerRow {
    /// Tower id (must match `cell_id`s in the logs).
    pub id: usize,
    /// Position.
    pub position: GeoPoint,
    /// Street address.
    pub address: String,
}

/// I/O + parse errors for dataset files.
#[derive(Debug)]
pub enum FileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse (count reported; analysis proceeds with
    /// the good lines).
    Malformed {
        /// Which file.
        file: &'static str,
        /// Number of bad lines.
        lines: usize,
    },
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::Io(e) => write!(f, "io: {e}"),
            FileError::Malformed { file, lines } => {
                write!(f, "{file}: {lines} malformed lines")
            }
        }
    }
}

impl std::error::Error for FileError {}

impl From<std::io::Error> for FileError {
    fn from(e: std::io::Error) -> Self {
        FileError::Io(e)
    }
}

fn kind_name(kind: PoiKind) -> &'static str {
    match kind {
        PoiKind::Resident => "resident",
        PoiKind::Transport => "transport",
        PoiKind::Office => "office",
        PoiKind::Entertainment => "entertainment",
    }
}

fn parse_poi_kind(s: &str) -> Option<PoiKind> {
    match s.trim().to_ascii_lowercase().as_str() {
        "resident" => Some(PoiKind::Resident),
        "transport" => Some(PoiKind::Transport),
        "office" => Some(PoiKind::Office),
        "entertainment" | "entertain" => Some(PoiKind::Entertainment),
        _ => None,
    }
}

fn region_name(kind: RegionKind) -> &'static str {
    match kind {
        RegionKind::Resident => "resident",
        RegionKind::Transport => "transport",
        RegionKind::Office => "office",
        RegionKind::Entertainment => "entertainment",
        RegionKind::Comprehensive => "comprehensive",
    }
}

fn parse_region(s: &str) -> Option<RegionKind> {
    match s.trim().to_ascii_lowercase().as_str() {
        "resident" => Some(RegionKind::Resident),
        "transport" => Some(RegionKind::Transport),
        "office" => Some(RegionKind::Office),
        "entertainment" | "entertain" => Some(RegionKind::Entertainment),
        "comprehensive" => Some(RegionKind::Comprehensive),
        _ => None,
    }
}

/// Writes `towers.tsv`.
///
/// # Errors
/// I/O failures.
pub fn write_towers(path: &Path, towers: &[TowerRow]) -> Result<(), FileError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for t in towers {
        writeln!(
            w,
            "{}\t{:.6}\t{:.6}\t{}",
            t.id,
            t.position.lon,
            t.position.lat,
            t.address.replace('\t', " ")
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads `towers.tsv`, returning rows plus the count of bad lines.
///
/// # Errors
/// I/O failures.
pub fn read_towers(path: &Path) -> Result<(Vec<TowerRow>, usize), FileError> {
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut rows = Vec::new();
    let mut bad = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.splitn(4, '\t').collect();
        let parsed = (|| -> Option<TowerRow> {
            Some(TowerRow {
                id: fields.first()?.trim().parse().ok()?,
                position: GeoPoint::new(
                    fields.get(1)?.trim().parse().ok()?,
                    fields.get(2)?.trim().parse().ok()?,
                ),
                address: fields.get(3)?.to_string(),
            })
        })();
        match parsed {
            Some(r) => rows.push(r),
            None => bad += 1,
        }
    }
    Ok((rows, bad))
}

/// Writes `pois.tsv`.
///
/// # Errors
/// I/O failures.
pub fn write_pois(path: &Path, pois: &[Poi]) -> Result<(), FileError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for p in pois {
        writeln!(
            w,
            "{:.6}\t{:.6}\t{}",
            p.position.lon,
            p.position.lat,
            kind_name(p.kind)
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads `pois.tsv`.
///
/// # Errors
/// I/O failures.
pub fn read_pois(path: &Path) -> Result<(Vec<Poi>, usize), FileError> {
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut pois = Vec::new();
    let mut bad = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.splitn(3, '\t').collect();
        let parsed = (|| -> Option<Poi> {
            Some(Poi {
                position: GeoPoint::new(
                    fields.first()?.trim().parse().ok()?,
                    fields.get(1)?.trim().parse().ok()?,
                ),
                kind: parse_poi_kind(fields.get(2)?)?,
                zone_id: 0,
            })
        })();
        match parsed {
            Some(p) => pois.push(p),
            None => bad += 1,
        }
    }
    Ok((pois, bad))
}

/// Writes `truth.tsv` (tower id → ground-truth region).
///
/// # Errors
/// I/O failures.
pub fn write_truth(path: &Path, truth: &[(usize, RegionKind)]) -> Result<(), FileError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    for (id, kind) in truth {
        writeln!(w, "{id}\t{}", region_name(*kind))?;
    }
    w.flush()?;
    Ok(())
}

/// Reads `truth.tsv`.
///
/// # Errors
/// I/O failures.
pub fn read_truth(path: &Path) -> Result<(Vec<(usize, RegionKind)>, usize), FileError> {
    let reader = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut rows = Vec::new();
    let mut bad = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.splitn(2, '\t').collect();
        let parsed = (|| -> Option<(usize, RegionKind)> {
            Some((
                fields.first()?.trim().parse().ok()?,
                parse_region(fields.get(1)?)?,
            ))
        })();
        match parsed {
            Some(r) => rows.push(r),
            None => bad += 1,
        }
    }
    Ok((rows, bad))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("towerlens-cli-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn towers_roundtrip() {
        let rows = vec![
            TowerRow {
                id: 0,
                position: GeoPoint::new(121.47, 31.23),
                address: "BLK-121470-31230 Nanjing Rd".into(),
            },
            TowerRow {
                id: 1,
                position: GeoPoint::new(121.50, 31.25),
                address: "BLK-121500-31250 Century Ave".into(),
            },
        ];
        let path = tmp("towers_roundtrip.tsv");
        write_towers(&path, &rows).unwrap();
        let (back, bad) = read_towers(&path).unwrap();
        assert_eq!(bad, 0);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].id, 0);
        assert!((back[1].position.lat - 31.25).abs() < 1e-6);
        assert_eq!(back[0].address, rows[0].address);
    }

    #[test]
    fn pois_roundtrip_and_garbage() {
        let pois = vec![Poi {
            position: GeoPoint::new(121.4, 31.2),
            kind: PoiKind::Entertainment,
            zone_id: 7,
        }];
        let path = tmp("pois_roundtrip.tsv");
        write_pois(&path, &pois).unwrap();
        // Append garbage.
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("not\ta\tpoi\n121.0\t31.0\tcathedral\n");
        std::fs::write(&path, content).unwrap();
        let (back, bad) = read_pois(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].kind, PoiKind::Entertainment);
        assert_eq!(bad, 2);
    }

    #[test]
    fn truth_roundtrip() {
        let rows = vec![(0, RegionKind::Office), (5, RegionKind::Comprehensive)];
        let path = tmp("truth_roundtrip.tsv");
        write_truth(&path, &rows).unwrap();
        let (back, bad) = read_truth(&path).unwrap();
        assert_eq!(bad, 0);
        assert_eq!(back, rows);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in PoiKind::ALL {
            assert_eq!(parse_poi_kind(kind_name(kind)), Some(kind));
        }
        for kind in RegionKind::ALL {
            assert_eq!(parse_region(region_name(kind)), Some(kind));
        }
        assert_eq!(parse_poi_kind("castle"), None);
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_towers(Path::new("/nonexistent/towers.tsv")),
            Err(FileError::Io(_))
        ));
    }
}
