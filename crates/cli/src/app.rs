//! The binary's entry point as a library function: subcommand
//! dispatch, flag tables, and rendering.
//!
//! The binary is a one-line wrapper around [`run`], so exit codes,
//! degraded-run handling, and the `doctor` output are all testable
//! without spawning processes.
//!
//! Exit status: 0 success, 1 runtime failure *or degraded run* (an
//! optional stage failed and was pruned — the numbers that did come
//! out are trustworthy, but incomplete), 2 usage error.

use std::path::PathBuf;
use std::time::Duration;

use crate::args::{self, switch, value, FlagDef, Flags, Parsed, ParsedMixed};
use crate::commands::{
    analyze_instrumented_with, artifact_detail, artifact_health, checkpoint_detail,
    checkpoint_health, doctor_artifacts, doctor_checkpoints, doctor_exit, doctor_json,
    doctor_pointer, doctor_summary, generate_dataset, run_study_with, study_config, wal_detail,
    wal_health, AnalyzeOptions, DoctorVerdict, GenOptions, Health,
};
use towerlens_artifact::{QueryIndex, SectionStatus};
use towerlens_core::engine::CheckpointError;
use towerlens_core::{RunReport, Study, Supervisor};
use towerlens_pipeline::FeatureSpace;

/// Parses the shared `--feature-space` flag (default `auto`).
fn feature_space_from(flags: &Flags) -> Result<FeatureSpace, String> {
    match flags.get("feature-space") {
        None => Ok(FeatureSpace::Auto),
        Some(s) => s
            .parse::<FeatureSpace>()
            .map_err(|e| format!("--feature-space: {e}")),
    }
}

/// The multi-line usage text (also the `help` subcommand's output).
pub const USAGE: &str = "\
towerlens-cli — synthetic cellular-trace datasets and their analysis

usage:
  towerlens-cli gen     --out DIR [--seed N] [--towers N] [--agents N] [--days N]
      write a synthetic dataset (logs.tsv, towers.tsv, pois.tsv, truth.tsv)

  towerlens-cli analyze --dir DIR [--days N] [--threads N]
                        [--max-bad-fraction F] [--impute]
                        [--feature-space raw|spectral|auto]
                        [--snapshot PATH]
                        [--resume DIR] [--retries N] [--stage-timeout-ms MS]
                        [--timings] [--json]
                        [--metrics PATH] [--trace-events PATH]
      parse, clean, vectorize, cluster, and label a dataset directory

  towerlens-cli study   [--scale tiny|small|medium|paper] [--seed N]
                        [--threads N]
                        [--feature-space raw|spectral|auto]
                        [--snapshot PATH]
                        [--resume DIR] [--retries N] [--stage-timeout-ms MS]
                        [--timings] [--json]
                        [--metrics PATH] [--trace-events PATH]
      run the full in-process paper study through the stage engine

  towerlens-cli query   --snapshot PATH [--stdin] [--watch] [--threads N]
                        [--request-budget N] [--deadline-units N]
                        [--retries N] [--metrics PATH] [REQUEST...]
      answer lookups from a versioned study artifact (written by
      `analyze --snapshot` / `study --snapshot`), held memory-resident:
        pattern <tower>            cluster id and canonical kind
        decompose <tower>          convex share of the four primary
                                   components (stored row, or solved
                                   live against the frozen basis)
        topk <tower> <k>           k nearest towers in the 6-dim
                                   spectral feature space
        screen <tower> <day-file>  z-score a one-day series against
                                   the tower's stored daily profile
      one-shot: the request is the positional arguments; --stdin reads
      one request per line and answers in input order (bit-identical
      at any --threads), errors reported in place.
      --request-budget sheds requests whose virtual cost exceeds N
      with a typed `overloaded` line; --deadline-units answers
      requests whose consumed cost exceeds N with a typed `deadline`
      line (cost is counted in towers scanned / bins compared /
      solver support enumerations — deterministic, never wall-clock).
      --watch treats --snapshot as a generation-store directory
      (written by `serve --publish`): CURRENT is resolved with a
      last-good fallback and the control lines `reload` / `health`
      swap to fsck-clean new generations and report degraded state

  towerlens-cli serve   --source FILE --data DIR [--days N] [--shards N]
                        [--segment-records N] [--queue-cap N] [--retries N]
                        [--basis CKPT] [--flush-every N] [--progress-every N]
                        [--publish DIR] [--metrics PATH]
      crash-safe streaming ingestion: append every source line to a
      checksummed WAL under DIR/wal before acknowledging it, maintain
      per-tower sliding traffic state across supervised shards, snapshot
      at every segment boundary (DIR/snap), and print the batch-identical
      drain report; killed runs resume from snapshot + WAL tail with
      byte-identical final output. --basis classifies live towers against
      a frozen batch basis: either a versioned query artifact (from
      `--snapshot`) or a legacy cluster.ckpt checkpoint. --publish
      additionally publishes a query artifact at every snapshot
      boundary as DIR/gen-N.artifact plus an atomic CURRENT pointer,
      for `query --watch` hot reload

  towerlens-cli doctor  --dir DIR [--fingerprint HEX] [--json]
      fsck every checkpoint file in DIR (and DIR/snap), any WAL
      segments under DIR/wal, every *.artifact snapshot in DIR, and
      the CURRENT generation pointer if present: checksums, seals,
      sequence gaps, and section tables; with --fingerprint, also pin
      each checkpoint to that config fingerprint. Ends with a
      one-line `doctor: N healthy, N degraded, N corrupt` summary;
      --json dumps the verdict table as JSON instead of the tables.
      Degraded-but-readable states (stale checkpoints, torn WAL
      tails, unknown artifact sections) warn but exit 0; corruption
      exits 1

  towerlens-cli help
      print this message

fault tolerance:
  --max-bad-fraction F  tolerate up to this fraction of malformed or
                        unknown-cell records (quarantined per category)
                        before failing closed; default 0.05
  --impute              detect per-tower outage windows (runs of zero
                        bins) and impute them from the daily/weekly
                        periodicity instead of dropping the tower

supervision:
  --retries N            retry transient failures (checkpoint I/O errors,
                         stage errors marked transient) up to N times per
                         stage with deterministic seeded backoff; default
                         0 (fail on first error)
  --stage-timeout-ms MS  per-stage wall-time budget enforced by a
                         watchdog; an overrunning optional stage degrades,
                         a required one fails the run; default 0 (off)

common flags:
  --feature-space S  representation the cluster stage sees: `raw`
                 (full traffic vectors, the paper's setting), `spectral`
                 (6-dim principal frequency components, matrix-free
                 distances — the paper-scale path), or `auto` (default:
                 spectral at 2048+ towers, raw below)
  --threads N    worker threads for the parallel stages (0 = all cores);
                 every value produces bit-identical output and counters
  --resume DIR   reuse (and write) stage checkpoints under DIR; a
                 second run reloads the expensive stages bit-identically
                 (damaged checkpoints are detected and recomputed)
  --timings      print the per-stage wave/status/wall-time table plus
                 the nonzero hot-path counters from the metrics registry
  --json         print the per-stage report as JSON instead of the
                 human summary

observability:
  --metrics PATH       dump the metrics registry (counters, gauges,
                       histograms; timers as observation counts) as
                       stable sorted JSON — byte-identical across
                       identical seeded runs
  --trace-events PATH  dump the structured span log (one event per
                       engine stage: name, wave, status, start/end
                       offsets in µs, cardinality cards) as JSON

exit status: 0 success, 1 runtime failure or degraded run, 2 usage error";

/// Prints a usage error and returns exit code 2.
fn usage_error(message: &str) -> i32 {
    eprintln!("{message}");
    2
}

/// Builds the stage supervisor from the shared `--retries` /
/// `--stage-timeout-ms` flags (0 = off, for both — the default
/// supervisor reproduces the unsupervised engine exactly).
fn supervisor_from(flags: &Flags) -> Result<Supervisor, String> {
    let retries = flags.num("retries", 0)?;
    let retries =
        u32::try_from(retries).map_err(|_| format!("--retries {retries} is too large"))?;
    let timeout_ms = flags.num("stage-timeout-ms", 0)?;
    Ok(Supervisor::new(
        retries,
        (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms)),
    ))
}

/// Parses a subcommand's flags; prints help or a one-line error.
fn parse_or_exit(command: &str, raw: &[String], defs: &[FlagDef]) -> Result<Flags, i32> {
    match args::parse(command, raw, defs) {
        Ok(Parsed::Flags(flags)) => Ok(flags),
        Ok(Parsed::Help) => {
            println!("{USAGE}");
            Err(0)
        }
        Err(e) => Err(usage_error(&e)),
    }
}

/// Emits the per-stage report and converts a degraded run into a
/// non-zero exit: the status table is printed whenever something
/// failed, `--timings` or not, so the failure is never silent.
/// `--timings` additionally prints the nonzero counters from the
/// metrics registry, which every engine run feeds — so the timing
/// view and `--metrics` share one source of truth.
fn emit_report(command: &str, report: &RunReport, timings: bool, json: bool) -> i32 {
    let degraded = report.degraded();
    if timings || degraded {
        print!("{}", report.render_table());
    }
    if timings {
        let snapshot = towerlens_obs::global().snapshot();
        let live: Vec<_> = snapshot.counters.iter().filter(|(_, &v)| v > 0).collect();
        if !live.is_empty() {
            println!("counters:");
            for (name, value) in live {
                println!("  {name} = {value}");
            }
        }
    }
    if json {
        println!("{}", report.to_json());
    }
    if degraded {
        eprintln!("{command} degraded: an optional stage failed and its dependents were pruned");
        1
    } else {
        0
    }
}

/// Writes the `--metrics` registry dump and/or the `--trace-events`
/// span log, when requested. Returns a non-zero exit code on write
/// failure so a broken observability sink is never silent.
fn emit_observability(flags: &Flags, report: &RunReport) -> Option<i32> {
    if let Some(path) = flags.get("metrics") {
        let json = towerlens_obs::global().snapshot().to_json();
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("failed to write --metrics {path}: {e}");
            return Some(1);
        }
    }
    if let Some(path) = flags.get("trace-events") {
        let json = towerlens_obs::spans_to_json(&report.spans());
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("failed to write --trace-events {path}: {e}");
            return Some(1);
        }
    }
    None
}

/// Answers the buffered data segment through the batch engine and
/// appends the answers, clearing the segment. Watch mode splits the
/// input at `reload`/`health` control lines, so output stays 1:1
/// with input and thread-count invariant within each segment.
fn flush_segment(
    index: &towerlens_artifact::QueryIndex,
    policy: &towerlens_artifact::QueryPolicy,
    segment: &mut Vec<String>,
    answers: &mut Vec<String>,
) {
    if segment.is_empty() {
        return;
    }
    let (batch, _tally) = towerlens_artifact::run_batch_with(index, segment, policy);
    answers.extend(batch);
    segment.clear();
}

/// Prints answer lines as one stdout write.
fn print_lines(lines: &[String]) {
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    print!("{out}");
}

/// Runs the CLI against already-split arguments (no program name) and
/// returns the process exit code.
pub fn run(argv: &[String]) -> i32 {
    let Some(command) = argv.first() else {
        return usage_error("missing command (try `towerlens-cli help`)");
    };
    // Each invocation observes only its own work: zero the process-wide
    // registry so `--metrics` is a per-run dump (and deterministic for
    // identical seeded runs), while registrations and handles survive.
    towerlens_obs::global().reset();
    let rest = &argv[1..];
    match command.as_str() {
        "gen" => {
            const DEFS: &[FlagDef] = &[
                value("out"),
                value("seed"),
                value("towers"),
                value("agents"),
                value("days"),
            ];
            let flags = match parse_or_exit("gen", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let parsed = (|| -> Result<(String, GenOptions), String> {
                let out = flags.require("gen", "out")?.to_string();
                Ok((
                    out,
                    GenOptions {
                        seed: flags.num("seed", 42)?,
                        towers: flags.num("towers", 120)? as usize,
                        agents: flags.num("agents", 800)? as usize,
                        days: flags.num("days", 14)? as usize,
                    },
                ))
            })();
            let (out, options) = match parsed {
                Ok(p) => p,
                Err(e) => return usage_error(&e),
            };
            match generate_dataset(&PathBuf::from(&out), &options) {
                Ok(n) => {
                    println!(
                        "wrote {n} records for {} towers / {} agents / {} days to {out}",
                        options.towers, options.agents, options.days
                    );
                    0
                }
                Err(e) => {
                    eprintln!("gen failed: {e}");
                    1
                }
            }
        }
        "analyze" => {
            const DEFS: &[FlagDef] = &[
                value("dir"),
                value("days"),
                value("threads"),
                value("max-bad-fraction"),
                switch("impute"),
                value("feature-space"),
                value("snapshot"),
                value("resume"),
                value("retries"),
                value("stage-timeout-ms"),
                switch("timings"),
                switch("json"),
                value("metrics"),
                value("trace-events"),
            ];
            let flags = match parse_or_exit("analyze", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let parsed = (|| -> Result<(String, AnalyzeOptions), String> {
                let dir = flags.require("analyze", "dir")?.to_string();
                let defaults = AnalyzeOptions::default();
                Ok((
                    dir,
                    AnalyzeOptions {
                        days: flags.num("days", 14)? as usize,
                        threads: flags.num("threads", 0)? as usize,
                        max_bad_fraction: flags
                            .fraction("max-bad-fraction", defaults.max_bad_fraction)?,
                        impute: flags.has("impute"),
                        feature_space: feature_space_from(&flags)?,
                        snapshot: flags.get("snapshot").map(PathBuf::from),
                    },
                ))
            })();
            let (dir, options) = match parsed {
                Ok(p) => p,
                Err(e) => return usage_error(&e),
            };
            let resume = flags.get("resume").map(PathBuf::from);
            let supervisor = match supervisor_from(&flags) {
                Ok(s) => s,
                Err(e) => return usage_error(&e),
            };
            match analyze_instrumented_with(
                &PathBuf::from(&dir),
                &options,
                resume.as_deref(),
                &supervisor,
            ) {
                Ok((s, report)) => {
                    if !flags.has("json") {
                        println!(
                            "{} records ({} after cleaning); {} patterns:",
                            s.records, s.kept, s.k
                        );
                        match &s.labels {
                            Some(labels) => {
                                for (c, (kind, share)) in labels.iter().zip(&s.shares).enumerate() {
                                    println!("  cluster {c}: {kind:<13} {:5.1}%", share * 100.0);
                                }
                            }
                            None => println!("  (geographic labelling unavailable)"),
                        }
                        if let Some(ari) = s.ari_vs_truth {
                            println!("adjusted Rand index vs truth.tsv: {ari:.3}");
                        }
                        if let Some(path) = &options.snapshot {
                            println!("wrote query artifact to {}", path.display());
                        }
                    }
                    if let Some(code) = emit_observability(&flags, &report) {
                        return code;
                    }
                    emit_report("analyze", &report, flags.has("timings"), flags.has("json"))
                }
                Err(e) => {
                    eprintln!("analyze failed: {e}");
                    1
                }
            }
        }
        "study" => {
            const DEFS: &[FlagDef] = &[
                value("scale"),
                value("seed"),
                value("threads"),
                value("feature-space"),
                value("snapshot"),
                value("resume"),
                value("retries"),
                value("stage-timeout-ms"),
                switch("timings"),
                switch("json"),
                value("metrics"),
                value("trace-events"),
            ];
            let flags = match parse_or_exit("study", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let scale = flags.get("scale").unwrap_or("tiny").to_string();
            let seed = match flags.num("seed", 42) {
                Ok(s) => s,
                Err(e) => return usage_error(&e),
            };
            let threads = match flags.num("threads", 0) {
                Ok(t) => t as usize,
                Err(e) => return usage_error(&e),
            };
            let feature_space = match feature_space_from(&flags) {
                Ok(s) => s,
                Err(e) => return usage_error(&e),
            };
            let mut config = match study_config(&scale, seed) {
                Ok(c) => c.with_threads(threads),
                Err(e) => return usage_error(&e),
            };
            config.identifier.feature_space = feature_space;
            let resume = flags.get("resume").map(PathBuf::from);
            let supervisor = match supervisor_from(&flags) {
                Ok(s) => s,
                Err(e) => return usage_error(&e),
            };
            // The artifact's fingerprint is the checkpoint fingerprint
            // of this configuration, so `doctor --fingerprint` and
            // `serve --basis` pin queries to the run that wrote them.
            let fingerprint = Study::new(config.clone()).checkpoint_fingerprint();
            let snapshot_path = flags.get("snapshot").map(PathBuf::from);
            match run_study_with(config, resume.as_deref(), &supervisor) {
                Ok((report, run_report)) => {
                    if !flags.has("json") {
                        println!(
                            "study {scale} seed {seed}: {} towers, {} analysed, {} patterns",
                            report.raw.len(),
                            report.vectors.len(),
                            report.patterns.k
                        );
                        let shares = report.patterns.clustering.shares();
                        match &report.geo {
                            Some(geo) => {
                                for (c, (kind, share)) in geo.labels.iter().zip(&shares).enumerate()
                                {
                                    println!("  cluster {c}: {kind:<13} {:5.1}%", share * 100.0);
                                }
                                println!(
                                    "ground-truth agreement: {:.3}",
                                    geo.ground_truth_agreement
                                );
                            }
                            None => println!("  (geographic labelling unavailable)"),
                        }
                    }
                    if let Some(path) = &snapshot_path {
                        let written = report
                            .to_snapshot(fingerprint, feature_space)
                            .map_err(|e| e.to_string())
                            .and_then(|snap| {
                                towerlens_artifact::write_snapshot(path, &snap)
                                    .map_err(|e| e.to_string())
                            });
                        match written {
                            Ok(()) => {
                                if !flags.has("json") {
                                    println!("wrote query artifact to {}", path.display());
                                }
                            }
                            Err(e) => {
                                eprintln!("study --snapshot failed: {e}");
                                return 1;
                            }
                        }
                    }
                    if let Some(code) = emit_observability(&flags, &run_report) {
                        return code;
                    }
                    emit_report(
                        "study",
                        &run_report,
                        flags.has("timings"),
                        flags.has("json"),
                    )
                }
                Err(e) => {
                    eprintln!("study failed: {e}");
                    1
                }
            }
        }
        "query" => {
            const DEFS: &[FlagDef] = &[
                value("snapshot"),
                switch("stdin"),
                switch("watch"),
                value("threads"),
                value("request-budget"),
                value("deadline-units"),
                value("retries"),
                value("metrics"),
            ];
            let (flags, positionals) = match args::parse_mixed("query", rest, DEFS) {
                Ok(ParsedMixed::Flags(flags, positionals)) => (flags, positionals),
                Ok(ParsedMixed::Help) => {
                    println!("{USAGE}");
                    return 0;
                }
                Err(e) => return usage_error(&e),
            };
            let snapshot_path = match flags.require("query", "snapshot") {
                Ok(p) => PathBuf::from(p),
                Err(e) => return usage_error(&e),
            };
            let threads = match flags.num("threads", 0) {
                Ok(t) => t as usize,
                Err(e) => return usage_error(&e),
            };
            // Budget/deadline are cost caps: 0 would shed everything,
            // so it is rejected at flag parse like every other
            // degenerate knob.
            let limit_flag = |name: &str| -> Result<Option<u64>, String> {
                let Some(raw) = flags.get(name) else {
                    return Ok(None);
                };
                let v: u64 = raw
                    .parse()
                    .map_err(|_| format!("--{name} expects a number, got `{raw}`"))?;
                if v == 0 {
                    return Err(format!("--{name} must be at least 1 cost unit"));
                }
                Ok(Some(v))
            };
            let request_budget = match limit_flag("request-budget") {
                Ok(v) => v,
                Err(e) => return usage_error(&e),
            };
            let deadline_units = match limit_flag("deadline-units") {
                Ok(v) => v,
                Err(e) => return usage_error(&e),
            };
            let retries = match flags.num("retries", 0) {
                Ok(r) => r as u32,
                Err(e) => return usage_error(&e),
            };
            let fault = match towerlens_artifact::QueryFault::from_env() {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("query failed: {e}");
                    return 1;
                }
            };
            let retry_policy = towerlens_core::engine::RetryPolicy::new(retries);
            let policy = towerlens_artifact::QueryPolicy {
                threads,
                request_budget,
                deadline_units,
                retries,
                fault,
                delay: Some(std::sync::Arc::new(move |attempt| {
                    retry_policy.delay("query-batch", attempt)
                })),
            };
            let watch = flags.has("watch");
            let stdin_mode = flags.has("stdin");
            if stdin_mode && !positionals.is_empty() {
                return usage_error("`query --stdin` takes no positional request");
            }
            if !stdin_mode && positionals.is_empty() {
                return usage_error(
                    "`query` needs a request (pattern|decompose|topk|screen) or --stdin",
                );
            }
            let dump_metrics = |flags: &Flags| -> Option<i32> {
                let path = flags.get("metrics")?;
                let json = towerlens_obs::global().snapshot().to_json();
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("failed to write --metrics {path}: {e}");
                    return Some(1);
                }
                None
            };
            let read_stdin = || -> Result<Vec<String>, i32> {
                use std::io::BufRead;
                std::io::stdin()
                    .lock()
                    .lines()
                    .collect::<Result<_, _>>()
                    .map_err(|e| {
                        eprintln!("query failed reading stdin: {e}");
                        1
                    })
            };
            if watch {
                // --snapshot names a generation store directory; the
                // watcher resolves CURRENT with last-good fallback and
                // handles `reload`/`health` control lines in stream
                // order between data batches.
                let mut watcher = match towerlens_artifact::Watcher::open(&snapshot_path) {
                    Ok(w) => w,
                    Err(e) => {
                        eprintln!("query failed: {e}");
                        return 1;
                    }
                };
                if stdin_mode {
                    let lines = match read_stdin() {
                        Ok(lines) => lines,
                        Err(code) => return code,
                    };
                    let mut answers: Vec<String> = Vec::with_capacity(lines.len());
                    let mut segment: Vec<String> = Vec::new();
                    for line in &lines {
                        match line.trim() {
                            "reload" => {
                                flush_segment(watcher.index(), &policy, &mut segment, &mut answers);
                                let report = watcher.reload();
                                answers.push(report);
                            }
                            "health" => {
                                flush_segment(watcher.index(), &policy, &mut segment, &mut answers);
                                answers.push(watcher.health());
                            }
                            _ => segment.push(line.clone()),
                        }
                    }
                    flush_segment(watcher.index(), &policy, &mut segment, &mut answers);
                    print_lines(&answers);
                    dump_metrics(&flags).unwrap_or(0)
                } else {
                    let line = positionals.join(" ");
                    let outcome = match line.as_str() {
                        "health" => Ok(watcher.health()),
                        "reload" => Ok(watcher.reload()),
                        _ => towerlens_artifact::run_one_with(watcher.index(), &line, &policy),
                    };
                    match outcome {
                        Ok(answer) => {
                            println!("{answer}");
                            dump_metrics(&flags).unwrap_or(0)
                        }
                        Err(e) => {
                            eprintln!("query failed: {e}");
                            dump_metrics(&flags).unwrap_or(1)
                        }
                    }
                }
            } else {
                // The snapshot is loaded once and held memory-resident;
                // every lookup after this line is pure in-memory work.
                let index = match towerlens_artifact::read_snapshot(&snapshot_path) {
                    Ok(snap) => QueryIndex::new(snap),
                    Err(e) => {
                        eprintln!("query failed: {e}");
                        return 1;
                    }
                };
                if stdin_mode {
                    let lines = match read_stdin() {
                        Ok(lines) => lines,
                        Err(code) => return code,
                    };
                    let (answers, _tally) =
                        towerlens_artifact::run_batch_with(&index, &lines, &policy);
                    print_lines(&answers);
                    // Batch mode reports per-line errors (including shed
                    // and deadline lines) in place and exits 0 — a
                    // screening pipeline keeps flowing.
                    dump_metrics(&flags).unwrap_or(0)
                } else {
                    let line = positionals.join(" ");
                    match towerlens_artifact::run_one_with(&index, &line, &policy) {
                        Ok(answer) => {
                            println!("{answer}");
                            dump_metrics(&flags).unwrap_or(0)
                        }
                        Err(e) => {
                            eprintln!("query failed: {e}");
                            dump_metrics(&flags).unwrap_or(1)
                        }
                    }
                }
            }
        }
        "serve" => {
            const DEFS: &[FlagDef] = &[
                value("source"),
                value("data"),
                value("days"),
                value("shards"),
                value("segment-records"),
                value("queue-cap"),
                value("retries"),
                value("basis"),
                value("flush-every"),
                value("progress-every"),
                value("publish"),
                value("metrics"),
            ];
            let flags = match parse_or_exit("serve", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let parsed = (|| -> Result<towerlens_serve::ServeConfig, String> {
                let defaults = towerlens_serve::ServeConfig::default();
                let retries = flags.num("retries", u64::from(defaults.retries))?;
                Ok(towerlens_serve::ServeConfig {
                    source: PathBuf::from(flags.require("serve", "source")?),
                    data_dir: PathBuf::from(flags.require("serve", "data")?),
                    days: flags.num("days", defaults.days as u64)? as usize,
                    shards: flags.num("shards", defaults.shards as u64)? as usize,
                    segment_records: flags.num("segment-records", defaults.segment_records)?,
                    queue_cap: flags.num("queue-cap", defaults.queue_cap as u64)? as usize,
                    retries: u32::try_from(retries)
                        .map_err(|_| format!("--retries {retries} is too large"))?,
                    basis: flags.get("basis").map(PathBuf::from),
                    flush_every: flags.num("flush-every", defaults.flush_every)?,
                    progress_every: flags.num("progress-every", defaults.progress_every)?,
                    publish: flags.get("publish").map(PathBuf::from),
                })
            })();
            let config = match parsed {
                Ok(c) => c,
                Err(e) => return usage_error(&e),
            };
            match towerlens_serve::serve(&config) {
                Ok(report) => {
                    print!("{}", report.render());
                    if let Some(path) = flags.get("metrics") {
                        let json = towerlens_obs::global().snapshot().to_json();
                        if let Err(e) = std::fs::write(path, json + "\n") {
                            eprintln!("failed to write --metrics {path}: {e}");
                            return 1;
                        }
                    }
                    0
                }
                Err(e) => {
                    eprintln!("serve failed: {e}");
                    1
                }
            }
        }
        "doctor" => {
            const DEFS: &[FlagDef] = &[value("dir"), value("fingerprint"), switch("json")];
            let flags = match parse_or_exit("doctor", rest, DEFS) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let dir = match flags.require("doctor", "dir") {
                Ok(d) => PathBuf::from(d),
                Err(e) => return usage_error(&e),
            };
            let expected = match flags.get("fingerprint") {
                None => None,
                Some(hex) => {
                    let digits = hex.strip_prefix("0x").unwrap_or(hex);
                    match u64::from_str_radix(digits, 16) {
                        Ok(fp) => Some(fp),
                        Err(_) => {
                            return usage_error(&format!(
                                "--fingerprint expects a hex fingerprint, got `{hex}`"
                            ))
                        }
                    }
                }
            };
            let rows = match doctor_checkpoints(&dir, expected) {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("doctor failed: {e}");
                    return 1;
                }
            };
            let wal_dir = dir.join(towerlens_serve::WAL_DIR);
            let wal_rows = if wal_dir.is_dir() {
                match towerlens_serve::fsck_wal(&wal_dir) {
                    Ok(rows) => rows,
                    Err(e) => {
                        eprintln!("doctor failed: {e}");
                        return 1;
                    }
                }
            } else {
                Vec::new()
            };
            let artifact_rows = match doctor_artifacts(&dir) {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("doctor failed: {e}");
                    return 1;
                }
            };
            let json = flags.has("json");
            let pointer = doctor_pointer(&dir, &artifact_rows);
            if rows.is_empty() && wal_rows.is_empty() && artifact_rows.is_empty() {
                if json {
                    println!("{}", doctor_json(&dir, &[]));
                } else {
                    println!(
                        "no checkpoint files (*.ckpt), WAL segments, or artifacts in {}",
                        dir.display()
                    );
                }
                return 0;
            }
            // Every inspected file contributes one three-way verdict;
            // the exit code is 1 iff anything is corrupt (degraded
            // states — stale, torn tail, unknown sections — warn only).
            let mut verdicts: Vec<DoctorVerdict> = Vec::new();
            for (name, verdict) in &rows {
                verdicts.push((
                    "checkpoint",
                    name.clone(),
                    checkpoint_health(verdict),
                    checkpoint_detail(verdict),
                ));
            }
            for row in &wal_rows {
                verdicts.push(("wal", row.file.clone(), wal_health(row), wal_detail(row)));
            }
            for (name, verdict) in &artifact_rows {
                verdicts.push((
                    "artifact",
                    name.clone(),
                    artifact_health(verdict),
                    artifact_detail(verdict),
                ));
            }
            verdicts.extend(pointer);
            let healths: Vec<Health> = verdicts.iter().map(|v| v.2).collect();
            if json {
                println!("{}", doctor_json(&dir, &verdicts));
                return doctor_exit(&healths);
            }
            if !rows.is_empty() {
                // Per-stage health table: one row per checkpoint file,
                // the same fixed-width idiom as the `--timings` stage
                // table.
                let file_w = rows
                    .iter()
                    .map(|(name, _)| name.len())
                    .chain(["file".len()])
                    .max()
                    .unwrap_or(4);
                println!(
                    "{:<file_w$}  {:<10}  status  {:>16}  {:>5}  {:>5}  detail",
                    "file", "stage", "fingerprint", "cards", "lines"
                );
                let (mut ok, mut stale, mut bad) = (0usize, 0usize, 0usize);
                for (name, verdict) in &rows {
                    match verdict {
                        Ok(info) => {
                            ok += 1;
                            println!(
                                "{name:<file_w$}  {:<10}  ok      {:>16}  {:>5}  {:>5}",
                                info.stage,
                                format!("{:016x}", info.fingerprint),
                                info.cards.len(),
                                info.body_lines
                            );
                        }
                        // Stale ≠ damaged: the file is internally
                        // consistent but belongs to another config.
                        Err(e @ CheckpointError::FingerprintMismatch { stage, found, .. }) => {
                            stale += 1;
                            println!(
                                "{name:<file_w$}  {:<10}  STALE   {:>16}  {:>5}  {:>5}  {e}",
                                stage,
                                format!("{found:016x}"),
                                "-",
                                "-"
                            );
                        }
                        Err(e) => {
                            bad += 1;
                            println!(
                                "{name:<file_w$}  {:<10}  BAD     {:>16}  {:>5}  {:>5}  {e}",
                                "-", "-", "-", "-"
                            );
                        }
                    }
                }
                println!(
                    "{} checkpoint(s): {ok} ok, {stale} stale, {bad} damaged",
                    rows.len()
                );
            }
            let mut wal_bad = 0usize;
            if !wal_rows.is_empty() {
                // WAL segment health: entry checksums, seal footers,
                // and cross-segment sequence continuity.
                let file_w = wal_rows
                    .iter()
                    .map(|row| row.file.len())
                    .chain(["file".len()])
                    .max()
                    .unwrap_or(4);
                println!(
                    "{:<file_w$}  {:>7}  {:>21}  sealed  status  detail",
                    "file", "entries", "seqs"
                );
                for row in &wal_rows {
                    let seqs = match (row.first_seq, row.last_seq) {
                        (Some(a), Some(b)) => format!("{a}..{b}"),
                        _ => "-".to_string(),
                    };
                    let sealed = if row.sealed { "yes" } else { "no" };
                    match &row.error {
                        None => {
                            let note = if row.torn_tail {
                                "  torn tail dropped"
                            } else {
                                ""
                            };
                            println!(
                                "{:<file_w$}  {:>7}  {seqs:>21}  {sealed:<6}  ok    {note}",
                                row.file, row.entries
                            );
                        }
                        Some(e) => {
                            wal_bad += 1;
                            println!(
                                "{:<file_w$}  {:>7}  {seqs:>21}  {sealed:<6}  BAD     {e}",
                                row.file, row.entries
                            );
                        }
                    }
                }
                println!(
                    "{} wal segment(s): {} ok, {} damaged",
                    wal_rows.len(),
                    wal_rows.len() - wal_bad,
                    wal_bad
                );
            }
            if !artifact_rows.is_empty() {
                // Artifact health: the section table, per-section
                // checksums, and (when those pass) a full semantic
                // decode.
                let file_w = artifact_rows
                    .iter()
                    .map(|(name, _)| name.len())
                    .chain(["file".len()])
                    .max()
                    .unwrap_or(4);
                println!(
                    "{:<file_w$}  {:>3}  {:>6}  {:>8}  status  detail",
                    "file", "ver", "towers", "sections"
                );
                let (mut ok, mut warn, mut bad) = (0usize, 0usize, 0usize);
                for (name, verdict) in &artifact_rows {
                    let health = artifact_health(verdict);
                    match verdict {
                        Ok(fsck) => {
                            let detail = if !fsck.healthy() {
                                let mut parts: Vec<String> = fsck
                                    .sections
                                    .iter()
                                    .filter_map(|s| match &s.status {
                                        SectionStatus::ChecksumMismatch { .. } => {
                                            Some(format!("section `{}` checksum", s.tag))
                                        }
                                        _ => None,
                                    })
                                    .collect();
                                if let Some(semantic) = &fsck.semantic {
                                    parts.push(semantic.clone());
                                }
                                parts.join("; ")
                            } else if fsck.has_unknown_sections() {
                                "unknown section(s) tolerated".to_string()
                            } else {
                                String::new()
                            };
                            let status = match health {
                                Health::Healthy => {
                                    ok += 1;
                                    "ok    "
                                }
                                Health::Degraded => {
                                    warn += 1;
                                    "warn  "
                                }
                                Health::Corrupt => {
                                    bad += 1;
                                    "BAD   "
                                }
                            };
                            println!(
                                "{name:<file_w$}  {:>3}  {:>6}  {:>8}  {status}  {detail}",
                                fsck.version,
                                fsck.towers,
                                fsck.sections.len()
                            );
                        }
                        Err(e) => {
                            bad += 1;
                            println!(
                                "{name:<file_w$}  {:>3}  {:>6}  {:>8}  BAD     {e}",
                                "-", "-", "-"
                            );
                        }
                    }
                }
                println!(
                    "{} artifact(s): {ok} ok, {warn} degraded, {bad} damaged",
                    artifact_rows.len()
                );
            }
            if let Some((_, file, health, detail)) = verdicts.iter().find(|v| v.0 == "pointer") {
                println!("{file}: {} {detail}", health.label());
            }
            println!("{}", doctor_summary(&healths));
            doctor_exit(&healths)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            0
        }
        other => usage_error(&format!(
            "unknown command `{other}` (try `towerlens-cli help`)"
        )),
    }
}
