//! # towerlens-cli
//!
//! File-based operation: everything the in-process pipeline does, but
//! over tab-separated trace files on disk — the workflow an operator
//! would actually run against exported logs.
//!
//! * [`files`] — the on-disk dataset format (`logs.tsv`,
//!   `towers.tsv`, `pois.tsv`, `truth.tsv`) with writers and parsers,
//! * [`commands`] — the `gen` and `analyze` subcommands as library
//!   functions (the binary is a thin wrapper, so everything is
//!   testable without spawning processes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod files;

pub use commands::{analyze, generate_dataset, AnalyzeOptions, AnalyzeSummary, GenOptions};
