//! # towerlens-cli
//!
//! File-based operation: everything the in-process pipeline does, but
//! over tab-separated trace files on disk — the workflow an operator
//! would actually run against exported logs.
//!
//! * [`files`] — the on-disk dataset format (`logs.tsv`,
//!   `towers.tsv`, `pois.tsv`, `truth.tsv`) with writers and parsers,
//! * [`args`] — uniform flag parsing (one-line errors, exit code 2),
//! * [`commands`] — the `gen`, `analyze`, `study`, and `doctor`
//!   subcommands as library functions (the binary is a thin wrapper,
//!   so everything is testable without spawning processes). `analyze`
//!   runs as a stage graph on [`towerlens_core::engine`], so it
//!   supports `--resume`, `--timings`, and `--json`,
//! * [`app`] — subcommand dispatch and rendering: the whole binary
//!   behind one `run(argv) -> exit code` function.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod args;
pub mod commands;
pub mod files;

pub use commands::{
    analyze, analyze_instrumented, doctor_checkpoints, generate_dataset, run_study, study_config,
    AnalyzeOptions, AnalyzeSummary, GenOptions,
};
